"""Persistent construction-time baseline: ``BENCH_construction.json``.

This runner pins the performance trajectory of label construction from
the CSR rewrite onward.  For every workload it measures

* ``sketch_build_s`` — end-to-end :class:`SketchConnectivityScheme`
  construction through the vectorized CSR engine (the production path);
* ``sketch_build_seed_s`` — the same construction through
  ``engine="reference"``, the sequential pure-Python seed path kept in
  tree for exactly this comparison (both engines produce bit-identical
  labels, see ``tests/test_csr_equivalence.py``);
* ``speedup`` — their ratio;
* decode latency and label sizes, so size/stretch regressions surface
  alongside time regressions;
* ``distance_build_s`` — :class:`DistanceLabelScheme` construction on
  the smaller workloads (per-scale balls batched through the CSR SSSP
  kernel);
* ``phase_s`` — a per-phase wall-clock split of the measured build
  (graph generation, CSR snapshot, sketch construction, query decode),
  so a regression points at its layer instead of one opaque total;
* ``peak_rss_mb`` — the ``resource.getrusage`` high-water RSS after the
  workload.  The kernel never lowers this number, so per-row values are
  cumulative across the sweep: the *first* workload's row is the clean
  reading, later rows only show growth.

The full run also records one ``ball_sssp`` entry: truncated-ball
construction on a high-diameter ring of cliques (n>=10^4, hop diameter
~830) through the frontier delta-stepping kernel versus the sequential
reference Dijkstra — the speedup that retired the per-source heap
fallback in ``sparse_cover``.

Timings are best-of-``--repeats`` (default 3) to damp scheduler noise.

Usage::

    python -m benchmarks.baseline                 # full set -> BENCH_construction.json
    python -m benchmarks.baseline --smoke         # tiny sizes, print only
    python -m benchmarks.baseline --check         # compare smoke sizes against the
                                                  # committed JSON; exit 1 if any
                                                  # construction regressed > 2x

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, sample_queries, workload_graph
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_construction.json"

#: (name, family, n, smoke) — smoke workloads are the tiny sizes the
#: regression check re-runs.  The headline workload for the CSR-vs-seed
#: speedup, ``random-2048`` (the largest bench_scaling size), runs first
#: so its timing is not polluted by earlier workloads' live memory.
WORKLOADS = [
    ("random-2048", "random", 2048, False),
    ("random-128", "random", 128, True),
    ("grid-256", "grid", 256, True),
    ("random-512", "random", 512, True),
    ("weighted-1024", "weighted", 1024, False),
    ("ring_of_cliques-1026", "ring_of_cliques", 1026, False),
]

#: workloads small enough to time the full distance-label stack on.
DISTANCE_MAX_N = 256

#: --check fails when a smoke construction's cost *relative to the seed
#: path measured in the same run* worsens by more than this factor
#: against the committed ratio (machine-speed independent).
REGRESSION_FACTOR = 2.0


def _best(fn, repeats: int) -> float:
    gc.collect()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best-of timings for two builders, repeats interleaved A/B/A/B.

    Interleaving spreads slow machine windows (noisy neighbours, memory
    pressure) across both measurements instead of letting one engine
    absorb a bad stretch, which matters for the speedup ratio.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def measure_workload(name: str, family: str, n: int, repeats: int = 3) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    t0 = time.perf_counter()
    graph = workload_graph(family, n, seed=1)
    graph_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    graph.as_csr()  # shared snapshot; both engines see a built graph
    csr_s = time.perf_counter() - t0
    build_s, seed_s = _best_pair(
        lambda: SketchConnectivityScheme(graph, seed=2),
        lambda: SketchConnectivityScheme(graph, seed=2, engine="reference"),
        repeats,
    )
    scheme = SketchConnectivityScheme(graph, seed=2)
    queries = sample_queries(graph, 10, 4, seed=3)
    t0 = time.perf_counter()
    for s, t, faults in queries:
        scheme.query(s, t, faults)
    query_s = time.perf_counter() - t0
    query_ms = query_s / max(1, len(queries)) * 1000.0
    row = {
        "family": family,
        "n": n,
        "m": graph.m,
        "sketch_build_s": round(build_s, 4),
        "sketch_build_seed_s": round(seed_s, 4),
        "speedup": round(seed_s / build_s, 2) if build_s > 0 else float("inf"),
        "sketch_query_ms": round(query_ms, 3),
        "vertex_label_bits": scheme.max_vertex_label_bits(),
        "edge_label_bits": scheme.max_edge_label_bits(),
        "phase_s": {
            "graph": round(graph_s, 4),
            "csr": round(csr_s, 4),
            "sketch": round(build_s, 4),
            "query": round(query_s, 4),
        },
        # Cumulative process high-water RSS (see module docstring).
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
    }
    if n <= DISTANCE_MAX_N:
        row["distance_build_s"] = round(
            _best(
                lambda: DistanceLabelScheme(
                    graph, 2, 2, seed=3, base_scheme="cycle_space"
                ),
                max(1, repeats - 1),
            ),
            4,
        )
    # The scheme's object graph is cyclic (labels reference the shared
    # context); collect it now so its tens of MB don't stay live into
    # the next workload's timing.
    del scheme
    gc.collect()
    return row


def measure_ball_sssp(
    num_cliques: int = 1667, clique_size: int = 6, radius: float = 350.0,
    repeats: int = 3,
) -> dict:
    """Truncated-ball construction: frontier kernel vs reference Dijkstra.

    A ring of cliques is the high-diameter adversary for ball
    construction: hop diameter ~``num_cliques/2`` means every ball is a
    long arc and per-source heap Dijkstra pays its full sequential cost,
    while the clique degree keeps the per-vertex edge work (where the
    batched kernel amortizes and the heap cannot) realistic for the
    cover workloads.  Measurement protocol, tuned on the authoring
    machine: the timed region excludes garbage collection (millions of
    live dict entries make collections dominate otherwise) and a warmup
    call grows the heap to its steady-state size first (the initial
    multi-GB allocation otherwise charges ~5s of page faults to
    whichever engine runs first); both engines then take best-of-
    ``repeats``.
    """
    from repro.graph.csr import truncated_balls
    from repro.graph.generators import ring_of_cliques

    g = ring_of_cliques(num_cliques, clique_size)
    n = g.n
    csr = g.as_csr()
    sources = list(range(n))

    def timed(engine: str) -> float:
        best = float("inf")
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            res = truncated_balls(csr, sources, radius, engine=engine)
            best = min(best, time.perf_counter() - t0)
            gc.enable()
            del res
            gc.collect()
        return best

    truncated_balls(csr, sources, radius, engine="frontier")  # heap warmup
    gc.collect()
    frontier_s = timed("frontier")
    reference_s = timed("reference")
    return {
        "family": f"ring_of_cliques-{num_cliques}x{clique_size}",
        "n": n,
        "radius": radius,
        "frontier_s": round(frontier_s, 3),
        "reference_s": round(reference_s, 3),
        "speedup": round(reference_s / frontier_s, 2)
        if frontier_s > 0
        else math.inf,
    }


def run(workloads, repeats: int = 3, rounds: int = 1) -> dict:
    """Measure all workloads; with ``rounds > 1`` the whole sweep is
    repeated and each workload keeps its best (minimum) timings.

    Rounds are spaced minutes apart by the sweep itself, which rides out
    the multi-minute noisy-neighbour windows a single best-of-N loop
    cannot escape.
    """
    results = {}
    for round_idx in range(max(1, rounds)):
        if rounds > 1:
            print(f"  -- round {round_idx + 1}/{rounds}")
        for name, family, n, _smoke in workloads:
            row = measure_workload(name, family, n, repeats)
            prev = results.get(name)
            if prev is not None:
                for key in ("sketch_build_s", "sketch_build_seed_s",
                            "sketch_query_ms", "distance_build_s"):
                    if key in row:
                        row[key] = min(row[key], prev[key])
                row["speedup"] = (
                    round(row["sketch_build_seed_s"] / row["sketch_build_s"], 2)
                    if row["sketch_build_s"] > 0
                    else float("inf")
                )
            results[name] = row
            print(
                f"  {name}: csr {row['sketch_build_s']*1000:.0f}ms  "
                f"seed {row['sketch_build_seed_s']*1000:.0f}ms  "
                f"speedup {row['speedup']:.1f}x",
                flush=True,
            )
    payload = {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[3]],
        "workloads": results,
    }
    if any(not w[3] for w in workloads):  # full runs only — it takes ~2 min
        print(
            "  ball_sssp: frontier vs reference on ring_of_cliques-1667x6 ...",
            flush=True,
        )
        ball = measure_ball_sssp(repeats=repeats)
        print(
            f"  ball_sssp: frontier {ball['frontier_s']:.2f}s  "
            f"reference {ball['reference_s']:.2f}s  "
            f"speedup {ball['speedup']:.2f}x",
            flush=True,
        )
        payload["ball_sssp"] = ball
    return payload


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    The gate is machine-normalized: the retained seed path is measured
    alongside the CSR path, and a workload regresses when its *relative*
    cost ``csr / seed`` worsens by more than :data:`REGRESSION_FACTOR`
    against the committed ratio.  Absolute milliseconds from the
    authoring machine would false-fail every slower CI runner (and let
    real regressions hide on faster ones); the seed path, being part of
    the same process and workload, is the machine-speed yardstick.
    """
    problems = []
    smoke_names = committed.get("smoke_workloads", [])
    by_name = {w[0]: w for w in WORKLOADS}
    for name in smoke_names:
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, _ = by_name[name]
        graph = workload_graph(family, n, seed=1)
        graph.as_csr()
        now_csr, now_seed = _best_pair(
            lambda: SketchConnectivityScheme(graph, seed=2),
            lambda: SketchConnectivityScheme(graph, seed=2, engine="reference"),
            repeats,
        )
        now_rel = now_csr / now_seed
        committed_rel = recorded["sketch_build_s"] / recorded["sketch_build_seed_s"]
        regressed = now_rel > committed_rel * REGRESSION_FACTOR
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: now {now_csr*1000:.0f}ms ({now_rel:.2f}x of seed)  "
            f"committed {recorded['sketch_build_s']*1000:.0f}ms "
            f"({committed_rel:.2f}x of seed)  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: construction now {now_rel:.2f}x of the seed path > "
                f"{REGRESSION_FACTOR}x committed ratio {committed_rel:.2f}"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="repeat the whole sweep this many times, keeping per-workload minima",
    )
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — "
                "run `python -m benchmarks.baseline` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("construction regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no construction regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[3]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats, rounds=args.rounds)
    rows = [
        (
            name,
            r["n"],
            r["m"],
            f"{r['sketch_build_s']*1000:.0f}",
            f"{r['sketch_build_seed_s']*1000:.0f}",
            f"{r['speedup']:.1f}x",
            f"{r['sketch_query_ms']:.1f}",
            r["vertex_label_bits"],
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Label construction baseline (CSR engine vs seed path)",
        ["workload", "n", "m", "csr ms", "seed ms", "speedup", "query ms", "vbits"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
