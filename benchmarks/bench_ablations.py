"""Ablations of the reproduction's tunable design choices.

1. **Number of sketch units L** (Section 3.2.1 chooses L = Θ(log n)):
   with too few units the Borůvka simulation runs out of fresh
   randomness before all components merge and the decoder reports
   false disconnections.  The ablation sweeps L and measures the
   false-disconnection rate.

2. **Fresh sketch copies f' = f+1** (Section 5.2): the routing loop
   must decode each retry with an independent sketch copy because the
   discovered-fault set is correlated with the sketch randomness.
   The ablation compares the faithful router against a `reuse_copy`
   variant that always decodes with copy 0.

3. **Γ replication factor** (Claim 5.6): tables shrink as the Γ block
   machinery activates; the ablation reports hub-table bits in simple
   vs balanced mode across hub degrees.

Run ``python -m benchmarks.bench_ablations`` for the tables.
"""

from __future__ import annotations

import random

from benchmarks.common import print_table, sample_queries, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph.graph import Graph
from repro.oracles import ConnectivityOracle
from repro.routing.fault_tolerant import FaultTolerantRouter


# ----------------------------------------------------------------------
# Ablation 1: sketch units
# ----------------------------------------------------------------------
def units_ablation(n: int = 64, trials: int = 250, units_values=(1, 2, 4, 8, 16, 24)):
    graph = workload_graph("random", n, seed=1)
    oracle = ConnectivityOracle(graph)
    queries = sample_queries(graph, trials, 6, seed=2)
    rows = []
    for units in units_values:
        scheme = SketchConnectivityScheme(graph, seed=3, units=units)
        false_disc = false_conn = 0
        for s, t, faults in queries:
            got = scheme.query(s, t, faults).connected
            truth = oracle.connected(s, t, faults)
            if got and not truth:
                false_conn += 1
            elif truth and not got:
                false_disc += 1
        rows.append(
            (
                units,
                f"{false_disc / trials:.3f}",
                f"{false_conn / trials:.3f}",
                scheme.max_edge_label_bits(),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Ablation 2: fresh copies in FT routing
# ----------------------------------------------------------------------
def copies_ablation(n: int = 40, trials: int = 60, f: int = 2):
    graph = workload_graph("random", n, seed=4)
    oracle = ConnectivityOracle(graph)
    faithful = FaultTolerantRouter(graph, f=f, k=2, seed=5)
    ablated = FaultTolerantRouter(graph, f=f, k=2, seed=5, reuse_copy=True)
    rnd = random.Random(6)
    rows = []
    for name, router in (("fresh copies (paper)", faithful), ("reuse copy 0", ablated)):
        delivered = total = 0
        for _ in range(trials):
            s, t = rnd.sample(range(graph.n), 2)
            faults = rnd.sample(range(graph.m), f)
            if not oracle.connected(s, t, faults):
                continue
            total += 1
            if router.route(s, t, faults).delivered:
                delivered += 1
        rows.append((name, f"{delivered}/{total}", f"{delivered / total:.3f}"))
    return rows


# ----------------------------------------------------------------------
# Ablation 3: Γ replication vs hub degree
# ----------------------------------------------------------------------
def gamma_ablation(hub_degrees=(8, 16, 32), f: int = 2):
    rows = []
    for deg in hub_degrees:
        g = Graph(deg + 6)
        for v in range(1, deg + 1):
            g.add_edge(0, v)
        prev = 0
        for v in range(deg + 1, deg + 6):
            g.add_edge(prev, v)
            prev = v
        simple = FaultTolerantRouter(g, f=f, k=2, seed=7, table_mode="simple")
        balanced = FaultTolerantRouter(g, f=f, k=2, seed=7, table_mode="balanced")
        rows.append(
            (
                deg,
                simple.table_bits(0),
                balanced.table_bits(0),
                f"{simple.table_bits(0) / max(balanced.table_bits(0), 1):.0f}x",
            )
        )
    return rows


def main() -> None:
    print_table(
        "Ablation 1 — sketch units L vs decode error (n=64, up to 6 faults)",
        ["units L", "false-disconnected", "false-connected", "edge label bits"],
        units_ablation(),
    )
    print_table(
        "Ablation 2 — fresh sketch copies in FT routing (f=2)",
        ["variant", "delivered", "rate"],
        copies_ablation(),
    )
    print_table(
        "Ablation 3 — Γ replication: hub table bits vs hub degree (f=2)",
        ["hub degree", "simple mode", "balanced mode", "ratio"],
        gamma_ablation(),
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_units_ablation_shape(benchmark):
    rows = benchmark.pedantic(
        lambda: units_ablation(n=48, trials=120, units_values=(1, 16)),
        rounds=1,
        iterations=1,
    )
    low, high = rows
    assert float(low[1]) >= float(high[1])  # fewer units, more misses
    assert float(high[1]) == 0.0
    benchmark.extra_info["false_disc_L1"] = float(low[1])


def test_gamma_ablation_shape(benchmark):
    rows = benchmark.pedantic(lambda: gamma_ablation((8, 32)), rounds=1, iterations=1)
    (d8, s8, b8, _), (d32, s32, b32, _) = rows
    assert s32 > s8  # simple grows with degree
    assert b32 <= b8 * 2  # balanced stays ~flat
    benchmark.extra_info["simple_32"] = s32
    benchmark.extra_info["balanced_32"] = b32


def test_copies_ablation_runs(benchmark):
    rows = benchmark.pedantic(
        lambda: copies_ablation(n=32, trials=30), rounds=1, iterations=1
    )
    faithful_rate = float(rows[0][2])
    assert faithful_rate == 1.0
    benchmark.extra_info["faithful"] = rows[0][2]
    benchmark.extra_info["reuse"] = rows[1][2]


if __name__ == "__main__":
    main()
