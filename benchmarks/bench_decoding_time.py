"""Experiment: decoding time of the two schemes.

Reproduces the complexity claims of **Theorems 3.6 and 3.7** and
**Claim 3.14** (Figure 2):

* cycle-space decoding is poly(f, log n) — a GF(2) solve over a
  (b+2) x f system;
* sketch decoding is Õ(f) — component tree + Boruvka over <= f+1
  components;
* the fast O(f log f) component-tree construction matches the O(f^2)
  brute force while scaling better.

Run ``python -m benchmarks.bench_decoding_time`` for the full series.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import print_table, sample_queries, workload_graph
from repro.core.component_tree import ComponentForest
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree


def _timed_queries(decode, queries) -> float:
    start = time.perf_counter()
    for args in queries:
        decode(*args)
    return (time.perf_counter() - start) / len(queries)


def decode_time_vs_f(n: int = 128, f_values=(1, 2, 4, 8, 16)):
    graph = workload_graph("random", n, seed=1)
    sk = SketchConnectivityScheme(graph, seed=2)
    rows = []
    for f in f_values:
        cs = CycleSpaceConnectivityScheme(graph, f=f, seed=2)
        queries = sample_queries(graph, 40, f, seed=3 + f)
        cs_labeled = [
            (
                cs.vertex_label(s),
                cs.vertex_label(t),
                [cs.edge_label(ei) for ei in F],
            )
            for s, t, F in queries
        ]
        sk_labeled = [
            (
                sk.vertex_label(s),
                sk.vertex_label(t),
                [sk.edge_label(ei) for ei in F],
            )
            for s, t, F in queries
        ]
        t_cs = _timed_queries(cs.decode, cs_labeled)
        t_sk = _timed_queries(sk.decode, sk_labeled)
        rows.append((f, f"{t_cs*1e6:.0f}", f"{t_sk*1e6:.0f}"))
    return rows


def component_tree_time(f_values=(4, 16, 64, 256)):
    g = generators.random_tree(2048, seed=5)
    tree = RootedTree.bfs(g, root=0)
    anc = AncestryLabeling(tree)
    rnd = random.Random(6)
    rows = []
    for f in f_values:
        faults = rnd.sample(range(g.m), f)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        start = time.perf_counter()
        for _ in range(20):
            ComponentForest.build(children)
        fast = (time.perf_counter() - start) / 20
        start = time.perf_counter()
        for _ in range(20):
            ComponentForest.build_bruteforce(children)
        brute = (time.perf_counter() - start) / 20
        rows.append((f, f"{fast*1e6:.0f}", f"{brute*1e6:.0f}"))
    return rows


def main() -> None:
    print_table(
        "Thm 3.6/3.7 — mean decode time (microseconds) vs f (n=128)",
        ["f", "cycle-space us", "sketch us"],
        decode_time_vs_f(),
    )
    print_table(
        "Claim 3.14 (Fig. 2) — component tree build time (microseconds)",
        ["|F_T|", "fast O(f log f) us", "brute O(f^2) us"],
        component_tree_time(),
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def decode_setup():
    graph = workload_graph("random", 128, seed=1)
    cs = CycleSpaceConnectivityScheme(graph, f=8, seed=2)
    sk = SketchConnectivityScheme(graph, seed=2)
    s, t, F = sample_queries(graph, 1, 8, seed=9)[0]
    return graph, cs, sk, s, t, F


def test_cycle_space_decode(benchmark, decode_setup):
    _, cs, _, s, t, F = decode_setup
    sl, tl = cs.vertex_label(s), cs.vertex_label(t)
    fl = [cs.edge_label(ei) for ei in F]
    benchmark(lambda: cs.decode(sl, tl, fl))


def test_sketch_decode(benchmark, decode_setup):
    _, _, sk, s, t, F = decode_setup
    sl, tl = sk.vertex_label(s), sk.vertex_label(t)
    fl = [sk.edge_label(ei) for ei in F]
    benchmark(lambda: sk.decode(sl, tl, fl))


def test_component_tree_fast_vs_brute(benchmark):
    g = generators.random_tree(1024, seed=5)
    tree = RootedTree.bfs(g, root=0)
    anc = AncestryLabeling(tree)
    faults = random.Random(6).sample(range(g.m), 64)
    children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
    benchmark(lambda: ComponentForest.build(children))


if __name__ == "__main__":
    main()
