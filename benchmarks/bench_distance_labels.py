"""Experiment: FT approximate distance labels (Theorem 1.4).

Measures, for random weighted graphs and grids:

* the estimate/true-distance ratio distribution against the paper's
  (8k-2)(|F|+1) guarantee (the measured stretch is typically far below
  the worst case);
* the label size as a function of k — the Õ(k n^{1/k}) tradeoff.

Run ``python -m benchmarks.bench_distance_labels`` for the full series.
"""

from __future__ import annotations

import pytest

from benchmarks.common import geometric_mean, print_table, sample_queries, workload_graph
from repro.core.distance_labels import DistanceLabelScheme
from repro.oracles import DistanceOracle


def stretch_profile(family: str, n: int, k: int, f: int, trials: int = 120, seed: int = 1):
    graph = workload_graph(family, n, seed=seed)
    scheme = DistanceLabelScheme(graph, f, k, seed=seed + 1, base_scheme="cycle_space")
    oracle = DistanceOracle(graph)
    ratios = []
    violations = 0
    for s, t, faults in sample_queries(
        graph, trials, f, seed=seed + 2, connected_only=True
    ):
        est = scheme.query(s, t, faults)
        true = oracle.distance(s, t, faults)
        if true <= 0:
            continue
        ratio = est / true
        ratios.append(ratio)
        if ratio > scheme.stretch_bound(len(faults)) + 1e-9 or ratio < 1 - 1e-9:
            violations += 1
    return {
        "mean": geometric_mean(ratios),
        "max": max(ratios),
        "bound": scheme.stretch_bound(f),
        "violations": violations,
        "label_bits": scheme.max_vertex_label_bits(),
    }


def main() -> None:
    rows = []
    for family in ("weighted", "grid"):
        for k in (1, 2, 3):
            for f in (1, 2, 3):
                p = stretch_profile(family, 64, k, f, trials=80)
                rows.append(
                    (
                        family,
                        k,
                        f,
                        p["mean"],
                        p["max"],
                        p["bound"],
                        p["violations"],
                    )
                )
    print_table(
        "Thm 1.4 — distance estimate stretch (estimate / true distance)",
        ["family", "k", "f", "geo-mean", "max", "bound (8k+6)(f+1)", "violations"],
        rows,
    )
    rows = []
    graph = workload_graph("weighted", 96, seed=5)
    for k in (1, 2, 3, 4):
        scheme = DistanceLabelScheme(graph, 2, k, seed=6, base_scheme="cycle_space")
        rows.append((k, scheme.max_vertex_label_bits(), len(scheme.instances)))
    print_table(
        "Thm 1.4 — label size vs stretch parameter k (n=96, f=2)",
        ["k", "max vertex label bits", "#instances"],
        rows,
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 3])
def test_distance_label_construction(benchmark, k):
    graph = workload_graph("weighted", 48, seed=7)
    scheme = benchmark(
        lambda: DistanceLabelScheme(graph, 2, k, seed=8, base_scheme="cycle_space")
    )
    benchmark.extra_info["label_bits"] = scheme.max_vertex_label_bits()


def test_distance_stretch_within_bound(benchmark):
    p = benchmark.pedantic(
        lambda: stretch_profile("weighted", 48, 2, 2, trials=50, seed=9),
        rounds=1,
        iterations=1,
    )
    assert p["violations"] == 0
    assert p["max"] <= p["bound"]
    benchmark.extra_info["geo_mean_stretch"] = p["mean"]
    benchmark.extra_info["max_stretch"] = p["max"]


def test_distance_decode_time(benchmark):
    graph = workload_graph("weighted", 48, seed=10)
    scheme = DistanceLabelScheme(graph, 2, 2, seed=11, base_scheme="cycle_space")
    s, t, faults = sample_queries(graph, 1, 2, seed=12, connected_only=True)[0]
    sl, tl = scheme.vertex_label(s), scheme.vertex_label(t)
    fl = [scheme.edge_label(ei) for ei in faults]
    benchmark(lambda: scheme.decode(sl, tl, fl))


if __name__ == "__main__":
    main()
