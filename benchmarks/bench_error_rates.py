"""Experiment: randomized-correctness rates.

Reproduces **Lemma 1.7** (a non-cut XORs to zero with probability 2^-b)
and the w.h.p. decode guarantee of **Theorem 1.3** for both schemes,
measured as empirical error rates against the exact oracle.

Run ``python -m benchmarks.bench_error_rates`` for the full series.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.common import print_table, sample_queries, workload_graph
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.cycle_space.labels import CycleSpaceLabels
from repro.graph.spanning_tree import RootedTree
from repro.oracles import ConnectivityOracle


def false_cut_rate(b: int, trials: int = 4000, n: int = 48) -> float:
    """Fraction of random non-cut subsets that pass the Lemma 1.7 test."""
    graph = workload_graph("random", n, seed=1)
    tree = RootedTree.bfs(graph, root=0)
    labels = CycleSpaceLabels.build(graph, tree, b, seed=2)
    oracle = ConnectivityOracle(graph)
    rnd = random.Random(3)
    tested = positives = 0
    while tested < trials:
        subset = rnd.sample(range(graph.m), rnd.randint(1, 3))
        if oracle.is_induced_edge_cut(subset):
            continue
        tested += 1
        if labels.looks_like_induced_cut(subset):
            positives += 1
    return positives / tested


def decode_error_rate(scheme_name: str, trials: int = 600, n: int = 64) -> float:
    graph = workload_graph("random", n, seed=4)
    oracle = ConnectivityOracle(graph)
    if scheme_name == "cycle_space":
        scheme = CycleSpaceConnectivityScheme(graph, f=5, seed=5)
        decide = lambda s, t, F: scheme.query(s, t, F)
    else:
        scheme = SketchConnectivityScheme(graph, seed=5)
        decide = lambda s, t, F: scheme.query(s, t, F).connected
    errors = 0
    for s, t, faults in sample_queries(graph, trials, 5, seed=6):
        if decide(s, t, faults) != oracle.connected(s, t, faults):
            errors += 1
    return errors / trials


def main() -> None:
    rows = []
    for b in (1, 2, 4, 8, 16):
        rate = false_cut_rate(b, trials=3000)
        rows.append((b, f"{rate:.4f}", f"{2**-b:.4f}"))
    print_table(
        "Lemma 1.7 — false-cut rate vs label width b",
        ["b (bits)", "measured", "predicted 2^-b"],
        rows,
    )
    rows = [
        (name, f"{decode_error_rate(name):.4f}")
        for name in ("cycle_space", "sketch")
    ]
    print_table(
        "Thm 1.3 — decode error rate vs exact oracle (600 queries, n=64)",
        ["scheme", "error rate"],
        rows,
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_false_cut_rate_matches_prediction(benchmark):
    rate = benchmark.pedantic(
        lambda: false_cut_rate(2, trials=1500), rounds=1, iterations=1
    )
    benchmark.extra_info["measured"] = rate
    benchmark.extra_info["predicted"] = 0.25
    assert abs(rate - 0.25) < 0.08


@pytest.mark.parametrize("scheme", ["cycle_space", "sketch"])
def test_decode_error_rate_is_negligible(benchmark, scheme):
    rate = benchmark.pedantic(
        lambda: decode_error_rate(scheme, trials=300), rounds=1, iterations=1
    )
    benchmark.extra_info["error_rate"] = rate
    assert rate == 0.0


if __name__ == "__main__":
    main()
