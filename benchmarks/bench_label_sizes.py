"""Experiment: label lengths of the two FT connectivity schemes.

Reproduces the headline of **Theorem 1.3 / Theorems 3.6 and 3.7**:

* cycle-space labels are O(f + log n) bits — linear in f, logarithmic
  in n;
* sketch labels are O(log^3 n) bits — independent of f;
* the crossover sits around f ~ log^2 n, matching the
  ``min{f + log n, log^3 n}`` statement.

Run ``python -m benchmarks.bench_label_sizes`` for the full series.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, workload_graph
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme


def label_bits_vs_f(n: int = 256, f_values=(1, 2, 4, 8, 16, 32, 64)):
    graph = workload_graph("random", n, seed=1)
    sketch = SketchConnectivityScheme(graph, seed=2)
    sketch_bits = sketch.max_edge_label_bits()
    rows = []
    for f in f_values:
        cs = CycleSpaceConnectivityScheme(graph, f=f, seed=2)
        rows.append(
            (
                f,
                cs.max_edge_label_bits(),
                sketch_bits,
                "cycle-space" if cs.max_edge_label_bits() < sketch_bits else "sketch",
            )
        )
    return rows


def label_bits_vs_n(f: int = 4, n_values=(32, 64, 128, 256, 512)):
    rows = []
    for n in n_values:
        graph = workload_graph("random", n, seed=3)
        cs = CycleSpaceConnectivityScheme(graph, f=f, seed=4)
        sk = SketchConnectivityScheme(graph, seed=4)
        rows.append(
            (
                n,
                cs.max_vertex_label_bits(),
                cs.max_edge_label_bits(),
                sk.max_vertex_label_bits(),
                sk.max_edge_label_bits(),
            )
        )
    return rows


def main() -> None:
    print_table(
        "Thm 3.6/3.7 — edge label bits vs fault bound f (n=256)",
        ["f", "cycle-space bits", "sketch bits", "smaller"],
        label_bits_vs_f(),
    )
    print_table(
        "Thm 3.6/3.7 — label bits vs n (f=4)",
        ["n", "CS vertex", "CS edge", "SK vertex", "SK edge"],
        label_bits_vs_n(),
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (construction cost = the paper's Õ(m))
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [128, 256])
def test_cycle_space_labeling_time(benchmark, n):
    graph = workload_graph("random", n, seed=5)
    scheme = benchmark(lambda: CycleSpaceConnectivityScheme(graph, f=8, seed=6))
    benchmark.extra_info["edge_label_bits"] = scheme.max_edge_label_bits()


@pytest.mark.parametrize("n", [128, 256])
def test_sketch_labeling_time(benchmark, n):
    graph = workload_graph("random", n, seed=7)
    scheme = benchmark(lambda: SketchConnectivityScheme(graph, seed=8))
    benchmark.extra_info["edge_label_bits"] = scheme.max_edge_label_bits()


def test_label_size_shapes(benchmark):
    """The headline shape: CS bits grow ~1 bit/fault, sketch bits are
    flat in f, so a crossover fault bound exists (with our honest
    constants it sits in the tens of thousands — the sketch scheme's
    win is asymptotic in f, exactly as Theorem 1.3's min{} states)."""

    def measure():
        return label_bits_vs_f(n=128, f_values=(1, 256, 1024))

    rows = benchmark(measure)
    f1, f256, f1024 = rows
    assert f1[1] < f256[1] < f1024[1]  # CS grows in f
    assert f256[1] - f1[1] == 255  # ... at exactly one bit per fault
    assert f1[2] == f256[2] == f1024[2]  # sketch flat in f
    # The crossover fault bound implied by the measurements:
    crossover = f1[2] - (f1[1] - 1)
    assert crossover > 1024  # constants put it beyond small f
    benchmark.extra_info["crossover_f"] = crossover


if __name__ == "__main__":
    main()
