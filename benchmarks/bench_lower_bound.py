"""Experiment: the Ω(f) stretch lower bound (**Theorem 1.6, Figure 4**).

On the (f+1)-disjoint-paths construction with the last edge of every
path but one failed, any fault-oblivious router pays expected stretch
Ω(f).  The bench reports, per f:

* the analytic expectation 1 + f of the optimal oblivious strategy;
* a Monte-Carlo simulation of that strategy;
* the measured average stretch of our FaultTolerantRouter over all
  f+1 adversarial patterns (it must deliver, and it must also pay
  Ω(f) — no scheme escapes the bound).

Run ``python -m benchmarks.bench_lower_bound`` for the series.
"""

from __future__ import annotations

from benchmarks.common import print_table
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.lower_bound import (
    adversarial_fault_sets,
    measure_router_on_lower_bound,
    sequential_strategy_expected_stretch,
    simulate_sequential_strategy,
)


def lower_bound_rows(f_values=(1, 2, 3, 4), path_length: int = 8, trials: int = 2000):
    rows = []
    for f in f_values:
        analytic = sequential_strategy_expected_stretch(f)
        simulated = simulate_sequential_strategy(f, path_length, trials, seed=1)
        graph, _, _, _ = adversarial_fault_sets(f, path_length)[0]
        router = FaultTolerantRouter(graph, f=f, k=2, seed=2)
        ours = measure_router_on_lower_bound(router.route, f, path_length)
        rows.append((f, analytic, simulated, ours))
    return rows


def main() -> None:
    rows = lower_bound_rows()
    print_table(
        "Thm 1.6 (Fig. 4) — expected stretch on the lower-bound graph",
        ["f", "analytic 1+f", "oblivious simulated", "our FT router"],
        rows,
    )
    print(
        "Reading: the router always delivers, but like every oblivious\n"
        "scheme its average stretch grows linearly in f — the Ω(f) bound."
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_lower_bound_shape(benchmark):
    rows = benchmark.pedantic(
        lambda: lower_bound_rows(f_values=(1, 3), path_length=6, trials=800),
        rounds=1,
        iterations=1,
    )
    (f1, a1, s1, r1), (f3, a3, s3, r3) = rows
    assert a1 < a3 and s1 < s3  # stretch grows with f
    assert r1 < float("inf") and r3 < float("inf")  # we always deliver
    assert r3 > 1.5  # and we pay the omega(f) price too
    benchmark.extra_info["router_stretch_f1"] = r1
    benchmark.extra_info["router_stretch_f3"] = r3


def test_oblivious_simulation(benchmark):
    value = benchmark(
        lambda: simulate_sequential_strategy(3, path_length=10, trials=500, seed=4)
    )
    assert 2.5 < value < 5.5


if __name__ == "__main__":
    main()
