"""Observability overhead baseline: ``BENCH_obs.json``.

The cost of the :mod:`repro.obs` layer, measured where it actually
runs — the serving hot path — with a **hard bar**, not a 2x drift
gate: metrics-on throughput must stay within
:data:`MAX_OVERHEAD` (5 %) of metrics-off.  Per workload:

* ``qps_metrics_off`` / ``qps_metrics_on`` — warm repeated-fault-set
  ``query_many`` throughput through an in-process (local-mode)
  :class:`~repro.serving.shards.ShardedQueryService`, identical
  streams, instruments disabled vs enabled.  Local mode keeps process
  scheduling noise out of a 5 % comparison; the instrument points
  exercised (chunk histograms, cache hit/miss counters, tallies) are
  the same ones the socket server's pool mode hits.
* ``metrics_overhead`` — ``qps_off / qps_on - 1`` (the gated headline;
  both sides measured interleaved in the same run, so machine speed
  cancels).
* ``traced_overhead`` — mean per-request latency over a real TCP
  socket with every request carrying a trace id (8 extra header
  bytes + span capture) vs untraced, same stream.  Reported, and the
  traced answers are asserted bit-identical to the untraced ones —
  tracing must never change an answer.

Usage::

    python -m benchmarks.bench_obs           # full set -> BENCH_obs.json
    python -m benchmarks.bench_obs --smoke   # tiny sizes, print only
    python -m benchmarks.bench_obs --check   # re-run smoke workloads and
                                             # fail on >5% metrics overhead

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.obs import mint_trace_id
from repro.server import AsyncQueryClient, LabelServer
from repro.serving import ShardedQueryService
from repro.traffic import fault_set_pool, uniform_pairs

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: (name, family, n, queries, smoke)
#: queries are sized so one timed pass is tens of milliseconds — a 5%
#: bar needs the timed region well clear of timer/scheduler jitter.
WORKLOADS = [
    ("random-512", "random", 512, 16384, False),
    ("random-128", "random", 128, 8192, True),
]

#: the hard bar: metrics-on serving throughput may cost at most this
#: fraction of metrics-off (``qps_off / qps_on - 1 <= MAX_OVERHEAD``).
MAX_OVERHEAD = 0.05

#: traced requests measured over the socket per arm.
TRACED_REQUESTS = 256

FAULT_SIZE = 2
FAULT_SETS = 8


def _bench_stream(graph, queries: int, seed: int):
    rnd = random.Random(seed)
    pairs = uniform_pairs(graph.n, queries, rnd)
    pool = fault_set_pool(graph.m, FAULT_SETS, FAULT_SIZE, rnd)
    per = [pool[i % len(pool)] for i in range(queries)]
    return pairs, per, pool


def _serving_qps(scheme, pairs, per, repeats: int) -> tuple[float, float]:
    """(qps_off, qps_on): warm local-mode service, instruments off/on.

    The two arms run interleaved best-of-``repeats`` so scheduler
    drift hits both equally — a 5 % bar needs paired measurement, not
    absolute wall clocks.
    """
    services = {}
    for enabled in (False, True):
        svc = ShardedQueryService(
            scheme,
            num_shards=2,
            cache_capacity=FAULT_SETS + 1,
            mp_context="local",  # in-process: no pool scheduling noise
            metrics=enabled,
        )
        svc.query_many(pairs, per)  # warm every partition cache
        services[enabled] = svc
    best = {False: float("inf"), True: float("inf")}
    try:
        for _ in range(repeats):
            for enabled in (False, True):
                gc.collect()
                t0 = time.perf_counter()
                services[enabled].query_many(pairs, per)
                best[enabled] = min(best[enabled], time.perf_counter() - t0)
    finally:
        for svc in services.values():
            svc.close()
    return len(pairs) / best[False], len(pairs) / best[True]


async def _traced_overhead(scheme, graph, seed: int) -> dict:
    """Socket arm: per-request latency traced vs untraced, answers equal."""
    pairs, per, pool = _bench_stream(graph, TRACED_REQUESTS, seed)
    batches = [pairs[i : i + 8] for i in range(0, len(pairs), 8)]
    faults = [pool[i % len(pool)] for i in range(len(batches))]
    server = LabelServer(backend=scheme, num_shards=0, deadline_s=120.0)
    await server.start()
    try:
        client = await AsyncQueryClient.connect("127.0.0.1", server.port)
        try:
            # warm both code paths before timing (partition caches,
            # coalescer, allocator pools)
            for batch, F in zip(batches[:16], faults[:16]):
                await client.connectivity(batch, F)
                await client.connectivity(batch, F, trace_id=mint_trace_id())
            plain = []
            t0 = time.perf_counter()
            for batch, F in zip(batches, faults):
                plain.append(await client.connectivity(batch, F))
            plain_s = time.perf_counter() - t0
            traced = []
            t0 = time.perf_counter()
            for batch, F in zip(batches, faults):
                traced.append(
                    await client.connectivity(
                        batch, F, trace_id=mint_trace_id()
                    )
                )
            traced_s = time.perf_counter() - t0
        finally:
            await client.aclose()
    finally:
        await server.aclose()
    if traced != plain:  # pragma: no cover - tripwire
        raise AssertionError("traced answers diverge from untraced answers")
    return {
        "traced_requests": len(batches),
        "plain_ms": round(plain_s / len(batches) * 1e3, 4),
        "traced_ms": round(traced_s / len(batches) * 1e3, 4),
        "traced_overhead": round(traced_s / plain_s - 1.0, 4),
        "answers_bit_identical": True,
    }


def measure_workload(
    name: str,
    family: str,
    n: int,
    queries: int,
    repeats: int = 5,
    seed: int = 1,
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = workload_graph(family, n, seed=seed)
    scheme = SketchConnectivityScheme(graph, seed=2)
    pairs, per, _pool = _bench_stream(graph, queries, seed + 1)
    qps_off, qps_on = _serving_qps(scheme, pairs, per, repeats)
    traced = asyncio.run(_traced_overhead(scheme, graph, seed + 10))
    return {
        "family": family,
        "n": n,
        "m": graph.m,
        "queries": queries,
        "qps_metrics_off": round(qps_off, 1),
        "qps_metrics_on": round(qps_on, 1),
        "metrics_overhead": round(qps_off / qps_on - 1.0, 4),
        **traced,
    }


def run(workloads, repeats: int = 5) -> dict:
    results = {}
    for name, family, n, queries, _smoke in workloads:
        row = measure_workload(name, family, n, queries, repeats)
        results[name] = row
        print(
            f"  {name}: metrics off {row['qps_metrics_off']:.0f} q/s  "
            f"on {row['qps_metrics_on']:.0f} q/s  "
            f"(overhead {row['metrics_overhead']:+.1%})  "
            f"traced {row['traced_ms']:.2f}ms vs {row['plain_ms']:.2f}ms "
            f"({row['traced_overhead']:+.1%})",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "max_overhead": MAX_OVERHEAD,
        "smoke_workloads": [w[0] for w in workloads if w[4]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 5) -> list[str]:
    """Re-run the smoke workloads; return problem messages (empty = ok).

    Unlike the drift gates, this is an absolute bar re-measured on the
    current machine: metrics-on throughput within :data:`MAX_OVERHEAD`
    of metrics-off (both sides of the ratio come from one interleaved
    run, so the bar is machine-independent), and traced answers
    bit-identical to untraced.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        if name not in by_name:
            continue
        _, family, n, queries, _ = by_name[name]
        row = measure_workload(name, family, n, queries, repeats)
        overhead = row["metrics_overhead"]
        over = overhead > MAX_OVERHEAD
        status = "OVER BUDGET" if over else "ok"
        print(
            f"  {name}: metrics overhead {overhead:+.1%} "
            f"(bar {MAX_OVERHEAD:.0%})  traced {row['traced_overhead']:+.1%}"
            f"  [{status}]"
        )
        if over:
            problems.append(
                f"{name}: metrics-on serving costs {overhead:.1%} vs "
                f"metrics-off, over the {MAX_OVERHEAD:.0%} hard bar"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >5%% metrics overhead",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_obs` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("observability overhead over budget:")
            for p in problems:
                print("  " + p)
            return 1
        print("observability overhead within budget")
        return 0

    workloads = [w for w in WORKLOADS if w[4]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            f"{r['qps_metrics_off']:.0f}",
            f"{r['qps_metrics_on']:.0f}",
            f"{r['metrics_overhead']:+.1%}",
            f"{r['plain_ms']:.2f}",
            f"{r['traced_ms']:.2f}",
            f"{r['traced_overhead']:+.1%}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Observability overhead (metrics hot path + request tracing)",
        ["workload", "n", "off q/s", "on q/s", "overhead",
         "plain ms", "traced ms", "traced ovh"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
