"""Persistent decode-throughput baseline: ``BENCH_query.json``.

This runner pins the performance trajectory of the *query* side from
the batched-engine rewrite onward, the counterpart of
``benchmarks/baseline.py`` for construction.  For every workload it
measures, over a deterministic ``(s, t, F)`` stream:

* ``batched_qps`` — queries/second of one ``query_many`` call on the
  packed-store batch engine (the production path, succinct paths
  included);
* ``reference_qps`` — queries/second of looping ``query()`` on an
  ``engine="reference"`` scheme (the retained seed decoder working off
  per-object labels);
* ``speedup`` — their ratio, the headline number (the acceptance bar
  for the batched engine is >= 5x on ``random-2048`` with 10k queries);
* per-query latency of the batched path, for serving-budget estimates.

The answers of the two paths are bit-identical
(``tests/test_query_many.py``); this harness double-checks verdict
agreement on every run before timing.

Usage::

    python -m benchmarks.bench_query_throughput           # full set -> BENCH_query.json
    python -m benchmarks.bench_query_throughput --smoke   # tiny sizes, print only
    python -m benchmarks.bench_query_throughput --check   # compare smoke speedups
                                                          # against the committed
                                                          # JSON; exit 1 on >2x
                                                          # throughput regression

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, sample_queries, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_query.json"

#: (name, family, n, queries, max_faults, smoke).  The headline workload
#: — the acceptance target — runs first on a cold process.
WORKLOADS = [
    ("random-2048", "random", 2048, 10000, 4, False),
    ("random-256", "random", 256, 2000, 4, True),
    ("grid-256", "grid", 256, 2000, 4, True),
    ("path-512", "path", 512, 2000, 4, False),
    ("weighted-1024", "weighted", 1024, 5000, 4, False),
]

#: --check fails when a smoke workload's batched/reference throughput
#: ratio worsens by more than this factor against the committed ratio
#: (machine-speed independent, mirroring baseline.py's gate).
REGRESSION_FACTOR = 2.0


def _workload_graph(family: str, n: int):
    if family == "path":
        from repro.graph import generators

        return generators.grid_graph(1, n)
    return workload_graph(family, n, seed=1)


def measure_workload(
    name: str, family: str, n: int, trials: int, max_faults: int, repeats: int = 3
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = _workload_graph(family, n)
    graph.as_csr()
    batched = SketchConnectivityScheme(graph, seed=2)
    reference = SketchConnectivityScheme(graph, seed=2, engine="reference")
    queries = sample_queries(graph, trials, max_faults, seed=3)
    pairs = [(s, t) for s, t, _ in queries]
    fault_sets = [F for _, _, F in queries]

    # Warm the packed store and double-check verdict agreement before
    # timing anything.
    warm = batched.query_many(pairs[:64], fault_sets[:64])
    for (s, t), F, rb in zip(pairs[:64], fault_sets[:64], warm):
        if rb != reference.query(s, t, F):  # pragma: no cover - tripwire
            raise AssertionError(f"batched/reference divergence on {(s, t, F)}")

    best_batch = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        batched.query_many(pairs, fault_sets)
        best_batch = min(best_batch, time.perf_counter() - t0)
    gc.collect()
    t0 = time.perf_counter()
    for (s, t), F in zip(pairs, fault_sets):
        reference.query(s, t, F)
    ref_s = time.perf_counter() - t0

    count = len(pairs)
    return {
        "family": family,
        "n": n,
        "m": graph.m,
        "queries": count,
        "max_faults": max_faults,
        "batched_s": round(best_batch, 4),
        "reference_s": round(ref_s, 4),
        "batched_qps": round(count / best_batch, 1),
        "reference_qps": round(count / ref_s, 1),
        "batched_us_per_query": round(best_batch / count * 1e6, 2),
        "speedup": round(ref_s / best_batch, 2) if best_batch > 0 else float("inf"),
    }


def run(workloads, repeats: int = 3) -> dict:
    results = {}
    for name, family, n, trials, max_faults, _smoke in workloads:
        row = measure_workload(name, family, n, trials, max_faults, repeats)
        results[name] = row
        print(
            f"  {name}: batched {row['batched_qps']:.0f} q/s  "
            f"reference {row['reference_qps']:.0f} q/s  "
            f"speedup {row['speedup']:.1f}x",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[5]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    The gate is machine-normalized like the construction gate: the seed
    decoder is measured in the same run, and a workload regresses when
    the batched/reference throughput ratio worsens by more than
    :data:`REGRESSION_FACTOR` against the committed ratio.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, trials, max_faults, _ = by_name[name]
        row = measure_workload(name, family, n, trials, max_faults, repeats)
        now_ratio = row["speedup"]
        committed_ratio = recorded["speedup"]
        regressed = now_ratio * REGRESSION_FACTOR < committed_ratio
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: now {now_ratio:.2f}x of reference  "
            f"committed {committed_ratio:.2f}x  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: batched decode now only {now_ratio:.2f}x the seed "
                f"decoder, > {REGRESSION_FACTOR}x below the committed "
                f"{committed_ratio:.2f}x"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_query_throughput` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("decode-throughput regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no decode-throughput regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[5]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            r["queries"],
            f"{r['batched_qps']:.0f}",
            f"{r['reference_qps']:.0f}",
            f"{r['speedup']:.1f}x",
            f"{r['batched_us_per_query']:.0f}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Decode throughput (batched engine vs seed decoder)",
        ["workload", "n", "queries", "batch q/s", "ref q/s", "speedup", "us/q"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
