"""Persistent routing-plane baseline: ``BENCH_routing.json``.

This runner pins the performance trajectory of the *routing* layer —
the counterpart of ``bench_serving.py`` (serving),
``bench_query_throughput.py`` (decode engine) and ``baseline.py``
(construction).  The workload is a message batch under a pool of
hidden fault sets, routed twice through one router (both engines share
the identical labels, tables and sketch randomness):

* ``seed_mps`` — routed messages/second of the retained scalar seed
  engine (``engine="reference"``: per-vertex table dicts, per-hop
  tree-label decoding, one full retry decode per iteration);
* ``packed_mps`` — the packed ``route_many`` plane (array tables,
  batched next hops, partition-cache retry decodes);
* ``speedup`` — ``packed_mps / seed_mps``, the headline (acceptance
  bar: >= 3x on ``random-1024``);
* trace equality is asserted before anything is timed or reported —
  the two engines must produce bit-identical route traces and
  telemetry.

Usage::

    python -m benchmarks.bench_routing           # full set -> BENCH_routing.json
    python -m benchmarks.bench_routing --smoke   # tiny sizes, print only
    python -m benchmarks.bench_routing --check   # compare smoke speedups
                                                 # against the committed JSON;
                                                 # exit 1 on >2x regression

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.traffic import fault_set_pool, uniform_pairs

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_routing.json"

#: (name, family, n, messages, fault_sets, f, smoke).  The headline
#: workload — the acceptance target — runs first on a cold process.
WORKLOADS = [
    ("random-1024", "random", 1024, 768, 12, 2, False),
    ("random-192", "random", 192, 256, 8, 2, True),
    ("grid-256", "grid", 256, 256, 8, 2, True),
    ("weighted-512", "weighted", 512, 384, 8, 2, False),
]

#: --check fails when a smoke workload's packed/seed speedup worsens by
#: more than this factor against the committed one (machine-speed
#: independent: both sides are measured in the same run).
REGRESSION_FACTOR = 2.0


def message_batch(graph, messages: int, fault_sets: int, f: int, seed: int):
    """Deterministic (pairs, per-message fault lists) batch."""
    rnd = random.Random(seed)
    pool = fault_set_pool(graph.m, fault_sets, f, rnd)
    pairs = uniform_pairs(graph.n, messages, rnd)
    per = [pool[i % len(pool)] for i in range(messages)]
    return pairs, per


def measure_workload(
    name: str,
    family: str,
    n: int,
    messages: int,
    fault_sets: int,
    f: int,
    repeats: int = 3,
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = workload_graph(family, n, seed=1)
    router = FaultTolerantRouter(graph, f=f, k=2, seed=2)
    pairs, per = message_batch(graph, messages, fault_sets, f, seed=3)

    # Build both planes outside the timed region, then assert the
    # engines agree bit for bit before timing anything.
    router.tables
    router.packed_engine()
    probe_ref = router.route_many(pairs[:32], per[:32], engine="reference")
    probe_packed = router.route_many(pairs[:32], per[:32], engine="packed")
    for p, r in zip(probe_packed, probe_ref):
        if p.trace != r.trace or p.telemetry != r.telemetry:
            raise AssertionError("packed/seed route divergence")  # pragma: no cover

    best_seed = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        ref = router.route_many(pairs, per, engine="reference")
        best_seed = min(best_seed, time.perf_counter() - t0)

    best_packed = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        packed = router.route_many(pairs, per, engine="packed")
        best_packed = min(best_packed, time.perf_counter() - t0)

    for p, r in zip(packed, ref):
        if p.trace != r.trace or p.telemetry != r.telemetry:
            raise AssertionError("packed/seed route divergence")  # pragma: no cover

    delivered = sum(r.delivered for r in ref)
    total_hops = sum(r.telemetry.hops for r in ref)
    reversal_hops = sum(r.telemetry.reversal_hops for r in ref)
    return {
        "family": family,
        "n": n,
        "m": graph.m,
        "messages": messages,
        "fault_sets": fault_sets,
        "f": f,
        "delivered": delivered,
        "total_hops": total_hops,
        "reversal_hops": reversal_hops,
        "seed_s": round(best_seed, 4),
        "packed_s": round(best_packed, 4),
        "seed_mps": round(messages / best_seed, 1),
        "packed_mps": round(messages / best_packed, 1),
        "packed_us_per_message": round(best_packed / messages * 1e6, 1),
        "speedup": (
            round(best_seed / best_packed, 2)
            if best_packed > 0
            else float("inf")
        ),
    }


def run(workloads, repeats: int = 3) -> dict:
    results = {}
    for name, family, n, messages, fault_sets, f, _smoke in workloads:
        row = measure_workload(
            name, family, n, messages, fault_sets, f, repeats
        )
        results[name] = row
        print(
            f"  {name}: seed {row['seed_mps']:.0f} msg/s  "
            f"packed {row['packed_mps']:.0f} msg/s  "
            f"speedup {row['speedup']:.1f}x",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[6]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    Machine-normalized like the other gates: the seed engine is
    measured in the same run, and a workload regresses when the
    packed/seed speedup worsens by more than :data:`REGRESSION_FACTOR`
    against the committed speedup.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, messages, fault_sets, f, _ = by_name[name]
        row = measure_workload(
            name, family, n, messages, fault_sets, f, repeats
        )
        now_ratio = row["speedup"]
        committed_ratio = recorded["speedup"]
        regressed = now_ratio * REGRESSION_FACTOR < committed_ratio
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: packed now {now_ratio:.2f}x of seed  "
            f"committed {committed_ratio:.2f}x  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: packed routing now only {now_ratio:.2f}x the seed "
                f"engine, > {REGRESSION_FACTOR}x below the committed "
                f"{committed_ratio:.2f}x"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_routing` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("routing-throughput regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no routing-throughput regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[6]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            r["messages"],
            f"{r['seed_mps']:.0f}",
            f"{r['packed_mps']:.0f}",
            f"{r['speedup']:.1f}x",
            f"{r['packed_us_per_message']:.0f}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Routing throughput (packed route_many vs seed engine)",
        ["workload", "n", "messages", "seed msg/s", "packed msg/s",
         "speedup", "us/msg"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
