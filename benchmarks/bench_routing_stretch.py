"""Experiment: routing stretch vs fault count (Theorems 5.3, 5.5, 5.8).

For both the forbidden-set scheme (faults known; bound (8k-2)(|F|+1))
and the fault-tolerant scheme (faults unknown; bound 32k(|F|+1)^2),
measures the realized route length / optimal G\\F distance as |F| grows,
plus the Lemma 3.17 path-validity counters (delivery rate, reversals,
Γ queries, header sizes).

Run ``python -m benchmarks.bench_routing_stretch`` for the full series.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.common import geometric_mean, print_table, workload_graph
from repro.oracles import DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.forbidden_set import ForbiddenSetRouter


def _queries_with_faults(graph, num_faults, trials, seed):
    """(s, t, F) with F biased towards the s-t shortest path (the
    adversarial placement: random faults rarely hit the route)."""
    from repro.oracles.distances import shortest_path

    rnd = random.Random(seed)
    out = []
    attempts = 0
    while len(out) < trials and attempts < 60 * trials:
        attempts += 1
        s, t = rnd.sample(range(graph.n), 2)
        faults: list[int] = []
        for _ in range(num_faults):
            p = shortest_path(graph, s, t, faults)
            if p is None or len(p) < 2:
                break
            idx = rnd.randrange(len(p) - 1)
            ei = graph.edge_index_between(p[idx], p[idx + 1])
            if ei is None or ei in faults:
                break
            faults.append(ei)
        if len(faults) != num_faults:
            continue
        if shortest_path(graph, s, t, faults) is None:
            continue
        out.append((s, t, faults))
    return out


def routing_stretch_rows(family: str, n: int, k: int, f_max: int, trials: int, seed: int):
    graph = workload_graph(family, n, seed=seed)
    oracle = DistanceOracle(graph)
    fsr = ForbiddenSetRouter(graph, f=f_max, k=k, seed=seed + 1)
    ftr = FaultTolerantRouter(graph, f=f_max, k=k, seed=seed + 1, table_mode="balanced")
    rows = []
    for num_faults in range(0, f_max + 1):
        queries = _queries_with_faults(graph, num_faults, trials, seed + 2 + num_faults)
        fs_ratios, ft_ratios = [], []
        reversals = gamma = 0
        header = 0
        undelivered = 0
        for s, t, faults in queries:
            true = oracle.distance(s, t, faults)
            a = fsr.route(s, t, faults)
            b = ftr.route(s, t, faults)
            if not (a.delivered and b.delivered):
                undelivered += 1
                continue
            fs_ratios.append(a.length / true if true > 0 else 1.0)
            ft_ratios.append(b.length / true if true > 0 else 1.0)
            reversals += b.telemetry.reversals
            gamma += b.telemetry.gamma_queries
            header = max(header, b.telemetry.max_header_bits)
        rows.append(
            (
                num_faults,
                geometric_mean(fs_ratios),
                max(fs_ratios, default=float("nan")),
                fsr.stretch_bound(num_faults),
                geometric_mean(ft_ratios),
                max(ft_ratios, default=float("nan")),
                ftr.stretch_bound(num_faults),
                reversals,
                gamma,
                header,
                undelivered,
            )
        )
    return rows


def main() -> None:
    for family, n in (("random", 64), ("grid", 49)):
        rows = routing_stretch_rows(family, n, k=2, f_max=3, trials=25, seed=3)
        print_table(
            f"Thm 5.3/5.8 — routing stretch vs |F| on {family} (n~{n}, k=2, "
            "faults on shortest paths)",
            [
                "|F|",
                "FS geo",
                "FS max",
                "FS bound",
                "FT geo",
                "FT max",
                "FT bound",
                "reversals",
                "Γ queries",
                "max header bits",
                "undelivered",
            ],
            rows,
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def routers():
    graph = workload_graph("random", 48, seed=4)
    fsr = ForbiddenSetRouter(graph, f=2, k=2, seed=5)
    ftr = FaultTolerantRouter(graph, f=2, k=2, seed=5)
    queries = _queries_with_faults(graph, 2, 10, seed=6)
    return graph, fsr, ftr, queries


def test_forbidden_set_route(benchmark, routers):
    graph, fsr, _, queries = routers
    s, t, faults = queries[0]
    result = benchmark(lambda: fsr.route(s, t, faults))
    assert result.delivered


def test_fault_tolerant_route(benchmark, routers):
    graph, _, ftr, queries = routers
    s, t, faults = queries[0]
    result = benchmark(lambda: ftr.route(s, t, faults))
    assert result.delivered


def test_stretch_bounds_hold(benchmark, routers):
    graph, fsr, ftr, queries = routers
    oracle = DistanceOracle(graph)

    def run():
        worst_fs = worst_ft = 0.0
        for s, t, faults in queries:
            true = oracle.distance(s, t, faults)
            a, b = fsr.route(s, t, faults), ftr.route(s, t, faults)
            assert a.delivered and b.delivered
            if true > 0:
                worst_fs = max(worst_fs, a.length / true)
                worst_ft = max(worst_ft, b.length / true)
        return worst_fs, worst_ft

    worst_fs, worst_ft = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst_fs <= fsr.stretch_bound(2)
    assert worst_ft <= ftr.stretch_bound(2)
    benchmark.extra_info["worst_fs_stretch"] = worst_fs
    benchmark.extra_info["worst_ft_stretch"] = worst_ft


if __name__ == "__main__":
    main()
