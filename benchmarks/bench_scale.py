"""Large-instance scaling baseline: ``BENCH_scale.json``.

This runner pins the end-to-end story past the old ``2^31 - 1``
pairwise-hash ceiling (``id_space <= 46341``): for each scale workload
it builds a :class:`SketchConnectivityScheme` on a random connected
graph, snapshots it, reloads the snapshot and oracle-validates sampled
``query_many`` answers, recording

* ``build_s`` — wall-clock scheme construction;
* ``peak_rss_mb`` — the process high-water RSS from
  ``resource.getrusage`` (each scale workload runs in its own
  subprocess, so the number is per-workload, not cumulative), plus a
  ``phase_rss_mb`` breakdown sampling the high-water mark at each
  phase boundary (graph / build / snapshot / serve) so the headline
  attributes its growth honestly;
* ``hash_family`` — ``m31`` below the ceiling, ``m61`` above it
  (auto-selected by ``family_for_key_space``);
* ``phase_s`` — wall-clock per-phase attribution (graph / forest /
  eids / sketches / snapshot / load / query), the timing twin of
  ``phase_rss_mb``, with the build split sourced from the scheme's own
  ``build_phase_s`` checkpoints;
* label sizes, snapshot bytes and the snapshot's SHA-256 — the
  deterministic fingerprints the smoke gate compares exactly.

A ``build_workers`` ladder (``ladder-100k-w2`` / ``ladder-100k-w4``)
rebuilds random-100k with 2 and 4 worker processes; the determinism
contract requires their snapshot fingerprints to equal random-100k's
byte for byte, and ``smoke-parallel`` enforces the same contract at CI
speed against smoke-m61 (plus a parallel-efficiency gate: the
parallel/serial build ratio may not worsen past 2x the committed
ratio).

The workload set spans ``random-1m`` (n = 10^6, the target scale of
the array-backed forest refactor) and ``fragmented-200k`` (sparse
G(n, m) with mean degree 1.4 — a giant component plus thousands of
small ones, exercising the multi-component forest paths that the
connected workloads never touch; with per-component full-n lists this
workload would exhaust memory).

Usage::

    python -m benchmarks.bench_scale            # full set -> BENCH_scale.json
                                                # (n up to 10^6; takes minutes
                                                # and ~15 GB of RAM)
    python -m benchmarks.bench_scale --smoke    # tiny sizes, print only
    python -m benchmarks.bench_scale --check    # compare smoke workloads against
                                                # the committed JSON; exit 1 on
                                                # drift or a >2x m61/m31 build
                                                # ratio regression

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.  The gate has two parts: the
deterministic fields (hash family, label bits, snapshot bytes) must
match the committed values exactly — they are machine-independent build
fingerprints — and the m61-vs-m31 build-time ratio on the tiny smoke
pair must not worsen by more than 2x (the m31 build on the same machine
is the speed yardstick, so the check is machine-normalized).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.obs import PhaseTimer
from repro.oracles import ConnectivityOracle
from repro.store import load_snapshot, save_snapshot

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: (name, family, n, id_space, smoke, workers).  ``id_space=None`` uses
#: the graph's own vertex count; the smoke-m61 workload forces a wide
#: id space on a tiny graph so the Mersenne-61 path is exercised in
#: seconds, not minutes, and smoke-fragmented keeps a many-component
#: fingerprint in the fast CI gate.  The ``ladder-100k-w{2,4}`` rows
#: rebuild random-100k with ``build_workers`` 2 and 4 — same graph,
#: same seed, so their snapshot fingerprints must equal random-100k's
#: exactly (the determinism contract) while their ``build_s`` records
#: the parallel ladder.  ``smoke-parallel`` is the CI-speed version of
#: the same contract against smoke-m61 (the wide id space forces the
#: ragged/m61 path, where unit-range parallelism engages).
WORKLOADS = [
    ("random-10k", "random", 10_000, None, False, 1),
    ("random-100k", "random", 100_000, None, False, 1),
    ("random-200k", "random", 200_000, None, False, 1),
    ("random-1m", "random", 1_000_000, None, False, 1),
    ("fragmented-200k", "fragmented", 200_000, None, False, 1),
    ("ladder-100k-w2", "random", 100_000, None, False, 2),
    ("ladder-100k-w4", "random", 100_000, None, False, 4),
    ("smoke-m31", "random", 2048, None, True, 1),
    ("smoke-m61", "random", 2048, 50_000, True, 1),
    ("smoke-fragmented", "fragmented", 4096, None, True, 1),
    ("smoke-parallel", "random", 2048, 50_000, True, 2),
]

#: oracle-validated query pairs sampled per workload.
QUERY_TRIALS = 64

#: --check fails when the smoke m61/m31 build-time ratio worsens by more
#: than this factor against the committed ratio.
REGRESSION_FACTOR = 2.0


def _rss_mb() -> float:
    """Process high-water RSS in MB (monotone within a process)."""
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def _sha256_file(path: Path) -> str:
    import hashlib

    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 22), b""):
            h.update(chunk)
    return h.hexdigest()


def measure_workload(
    name: str,
    family: str,
    n: int,
    id_space,
    trials: int = QUERY_TRIALS,
    workers: int = 1,
) -> dict:
    """Build + snapshot + reload + validate one workload, in-process.

    Returns the JSON row.  ``peak_rss_mb`` is the *process* high-water
    mark — meaningful per workload only when the caller isolates each
    workload in its own subprocess (see :func:`run`).  ``phase_rss_mb``
    samples that monotone high-water mark at each phase boundary, so
    each phase's entry is "the peak as of the end of this phase" and
    the deltas attribute peak growth to phases.  ``phase_s`` is the
    wall-clock twin: per-phase durations (graph / forest / eids /
    sketches / snapshot / load / query) recorded through an obs
    :class:`~repro.obs.PhaseTimer`, with the build split folded in from
    the scheme's own ``build_phase_s`` checkpoints — same keys and
    ``round(x, 3)`` values as the pre-obs hand-rolled dict, so the
    committed row shape is unchanged.
    """
    timer = PhaseTimer().start()
    graph = workload_graph(family, n, seed=1)
    graph.as_csr()
    gc.collect()
    timer.split("graph")
    phase_rss = {"graph": _rss_mb()}
    t0 = time.perf_counter()
    scheme = SketchConnectivityScheme(
        graph, seed=2, id_space=id_space, build_workers=workers
    )
    build_s = time.perf_counter() - t0
    for phase, seconds in scheme.build_phase_s.items():
        timer.record(phase, seconds)
    phase_rss["build"] = _rss_mb()

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = Path(tmp) / f"{name}.ftl"
        with timer.phase("snapshot"):
            save_snapshot(snap_path, scheme)
        snapshot_s = timer.seconds["snapshot"]
        snapshot_bytes = snap_path.stat().st_size
        snapshot_sha256 = _sha256_file(snap_path)
        hash_family = scheme.hash_family
        vertex_bits = scheme.max_vertex_label_bits()
        edge_bits = scheme.max_edge_label_bits()
        phase_rss["snapshot"] = _rss_mb()
        # Build/serve split: the builder's in-memory scheme is released
        # before the snapshot is served, exactly as a server process
        # would start fresh.  Keeping both alive would double-count the
        # label store against the serve-phase footprint.
        del scheme
        gc.collect()
        with timer.phase("load"):
            restored = load_snapshot(snap_path)
        load_s = timer.seconds["load"]

        # Oracle-validate sampled queries against the *restored* scheme:
        # the snapshot, not the in-memory object, is what serves.
        rnd = np.random.default_rng(3)
        pairs = [
            (int(s), int(t))
            for s, t in rnd.integers(0, n, size=(trials, 2))
            if s != t
        ]
        faults = [int(e) for e in rnd.choice(graph.m, size=4, replace=False)]
        with timer.phase("query"):
            answers = restored.query_many(pairs, faults, want_path=False)
        query_ms = timer.seconds["query"] / max(1, len(pairs)) * 1000.0
        oracle = ConnectivityOracle(graph)
        truth = oracle.connected_many(pairs, faults)
        mismatches = sum(
            1 for res, ok in zip(answers, truth) if res.connected != ok
        )

    phase_rss["serve"] = _rss_mb()
    row = {
        "n": n,
        "m": graph.m,
        "id_space": id_space if id_space is not None else n,
        "hash_family": hash_family,
        "build_workers": workers,
        "build_s": round(build_s, 3),
        "snapshot_s": round(snapshot_s, 3),
        "load_s": round(load_s, 3),
        "query_ms": round(query_ms, 3),
        "queries_validated": len(pairs),
        "query_mismatches": mismatches,
        "vertex_label_bits": vertex_bits,
        "edge_label_bits": edge_bits,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_sha256": snapshot_sha256,
        "peak_rss_mb": _rss_mb(),
        "phase_rss_mb": phase_rss,
        "phase_s": timer.rounded(3),
    }
    del restored
    gc.collect()
    return row


def _run_isolated(name: str) -> dict:
    """Run one workload in a fresh subprocess for a per-workload RSS."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_scale", "--worker", name],
        capture_output=True,
        text=True,
        env=env,
        cwd=Path(__file__).resolve().parent.parent,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale worker {name} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run(workloads) -> dict:
    """Measure all workloads, each in its own subprocess."""
    results = {}
    for name, _family, _n, _id_space, _smoke, _workers in workloads:
        row = _run_isolated(name)
        results[name] = row
        print(
            f"  {name}: build {row['build_s']:.1f}s  "
            f"rss {row['peak_rss_mb'] / 1024.0:.2f}GB  "
            f"{row['hash_family']}  "
            f"snapshot {row['snapshot_bytes'] / 1e6:.1f}MB  "
            f"mismatches {row['query_mismatches']}/{row['queries_validated']}",
            flush=True,
        )
        if row["query_mismatches"]:
            raise RuntimeError(f"{name}: oracle mismatches on sampled queries")
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[4]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    Deterministic fields must match exactly; the m61/m31 build ratio may
    not worsen past :data:`REGRESSION_FACTOR` of the committed ratio.
    """
    problems: list[str] = []
    smoke_names = committed.get("smoke_workloads", [])
    by_name = {w[0]: w for w in WORKLOADS}
    now: dict[str, dict] = {}
    for name in smoke_names:
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, id_space, _, wl_workers = by_name[name]
        best = None
        for _ in range(max(1, repeats)):
            row = measure_workload(
                name, family, n, id_space, trials=16, workers=wl_workers
            )
            if best is None or row["build_s"] < best["build_s"]:
                best = row
        now[name] = best
        for key in (
            "hash_family",
            "vertex_label_bits",
            "edge_label_bits",
            "snapshot_bytes",
            "snapshot_sha256",
        ):
            if key not in recorded:
                continue  # pre-digest baselines stay checkable
            if best[key] != recorded[key]:
                problems.append(
                    f"{name}: {key} now {best[key]!r} != committed {recorded[key]!r}"
                )
        if best["query_mismatches"]:
            problems.append(
                f"{name}: {best['query_mismatches']} oracle mismatches"
            )
        status = "ok" if not problems else "DRIFT"
        print(
            f"  {name}: build {best['build_s'] * 1000:.0f}ms  "
            f"{best['hash_family']}  vbits {best['vertex_label_bits']}  "
            f"snapshot {best['snapshot_bytes']}B  [{status}]"
        )
    if "smoke-m31" in now and "smoke-m61" in now:
        rec = committed["workloads"]
        if "smoke-m31" in rec and "smoke-m61" in rec:
            now_rel = now["smoke-m61"]["build_s"] / now["smoke-m31"]["build_s"]
            committed_rel = rec["smoke-m61"]["build_s"] / rec["smoke-m31"]["build_s"]
            if now_rel > committed_rel * REGRESSION_FACTOR:
                problems.append(
                    f"m61 build now {now_rel:.2f}x of the m31 build > "
                    f"{REGRESSION_FACTOR}x committed ratio {committed_rel:.2f}"
                )
            else:
                print(
                    f"  m61/m31 build ratio {now_rel:.2f} "
                    f"(committed {committed_rel:.2f}) [ok]"
                )
    if "smoke-parallel" in now and "smoke-m61" in now:
        # Determinism contract: the parallel build of the *same*
        # workload (smoke-parallel is smoke-m61 at build_workers=2)
        # must produce a byte-identical snapshot.
        par, ser = now["smoke-parallel"], now["smoke-m61"]
        if par["snapshot_sha256"] != ser["snapshot_sha256"]:
            problems.append(
                "smoke-parallel snapshot sha256 "
                f"{par['snapshot_sha256'][:16]}… != serial smoke-m61 "
                f"{ser['snapshot_sha256'][:16]}… (parallel build broke "
                "bit-identity)"
            )
        else:
            print("  smoke-parallel sha256 == smoke-m61 sha256 [ok]")
        # Parallel-efficiency gate, machine-normalized the same way as
        # the m61/m31 gate: the parallel/serial build ratio may not
        # worsen past REGRESSION_FACTOR of the committed ratio.
        rec = committed["workloads"]
        if "smoke-parallel" in rec and "smoke-m61" in rec:
            now_rel = par["build_s"] / ser["build_s"]
            committed_rel = (
                rec["smoke-parallel"]["build_s"] / rec["smoke-m61"]["build_s"]
            )
            if now_rel > committed_rel * REGRESSION_FACTOR:
                problems.append(
                    f"parallel build now {now_rel:.2f}x of the serial build "
                    f"> {REGRESSION_FACTOR}x committed ratio "
                    f"{committed_rel:.2f} (parallel-efficiency regression)"
                )
            else:
                print(
                    f"  parallel/serial build ratio {now_rel:.2f} "
                    f"(committed {committed_rel:.2f}) [ok]"
                )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on drift or >2x ratio regression",
    )
    ap.add_argument(
        "--worker",
        metavar="NAME",
        default=None,
        help=argparse.SUPPRESS,  # internal: run one workload, print its JSON row
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.worker is not None:
        by_name = {w[0]: w for w in WORKLOADS}
        if args.worker not in by_name:
            print(f"unknown workload {args.worker!r}", file=sys.stderr)
            return 2
        _, family, n, id_space, _, wl_workers = by_name[args.worker]
        print(
            json.dumps(
                measure_workload(
                    args.worker, family, n, id_space, workers=wl_workers
                )
            )
        )
        return 0

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — "
                "run `python -m benchmarks.bench_scale` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=3)
        if problems:
            print("scale regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no scale regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[4]] if args.smoke else WORKLOADS
    payload = run(workloads)
    rows = [
        (
            name,
            r["n"],
            r["m"],
            r["hash_family"],
            f"{r['build_s']:.1f}",
            f"{r['peak_rss_mb'] / 1024.0:.2f}",
            f"{r['snapshot_bytes'] / 1e6:.1f}",
            r["vertex_label_bits"],
            f"{r['query_mismatches']}/{r['queries_validated']}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Scale baseline (build / snapshot / reload / oracle-validated queries)",
        ["workload", "n", "m", "hash", "build s", "rss GB", "snap MB", "vbits", "miss"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
