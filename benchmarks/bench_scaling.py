"""Experiment: construction-time scaling.

The reproduction notes flag label construction as the slow part of a
Python build ("networkx helps; slow on large label constructions").
This bench measures how each layer's preprocessing scales with n —
both labeling schemes (paper: Õ(m)), the distance labels (Õ(m n^{1/k})
over all scales) and the FT router (adds f' sketch copies per cover
tree) — documenting where the numpy vectorization of the sketch arrays
pays off and what sizes are practical.

Run ``python -m benchmarks.bench_scaling`` for the table.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import print_table, workload_graph
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.routing.fault_tolerant import FaultTolerantRouter


def _time(builder) -> float:
    start = time.perf_counter()
    builder()
    return time.perf_counter() - start


def scaling_rows(n_values=(64, 128, 256, 512, 1024, 2048)):
    rows = []
    for n in n_values:
        graph = workload_graph("random", n, seed=1)
        t_cs = _time(lambda: CycleSpaceConnectivityScheme(graph, f=4, seed=2))
        t_sk = _time(lambda: SketchConnectivityScheme(graph, seed=2))
        if n <= 128:
            t_dist = _time(
                lambda: DistanceLabelScheme(
                    graph, 2, 2, seed=3, base_scheme="cycle_space"
                )
            )
        else:
            t_dist = float("nan")
        if n <= 64:
            t_router = _time(lambda: FaultTolerantRouter(graph, f=2, k=2, seed=3))
        else:
            t_router = float("nan")
        rows.append(
            (
                n,
                graph.m,
                f"{t_cs*1000:.0f}",
                f"{t_sk*1000:.0f}",
                f"{t_dist*1000:.0f}" if t_dist == t_dist else "-",
                f"{t_router*1000:.0f}" if t_router == t_router else "-",
            )
        )
    return rows


def main() -> None:
    print_table(
        "Construction time scaling (milliseconds)",
        ["n", "m", "cycle-space ms", "sketch ms", "distance ms", "router ms"],
        scaling_rows(),
    )
    print(
        "Reading: both labeling schemes scale near-linearly in m (the\n"
        "paper's O~(m)); distance labels multiply by the number of cover\n"
        "trees across scales; the router adds f+1 sketch copies per tree."
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [256, 512, 2048])
def test_sketch_scaling(benchmark, n):
    graph = workload_graph("random", n, seed=1)
    benchmark.pedantic(
        lambda: SketchConnectivityScheme(graph, seed=2), rounds=2, iterations=1
    )


def test_near_linear_sketch_scaling(benchmark):
    def run():
        g1 = workload_graph("random", 128, seed=1)
        g2 = workload_graph("random", 512, seed=1)
        t1 = _time(lambda: SketchConnectivityScheme(g1, seed=2))
        t2 = _time(lambda: SketchConnectivityScheme(g2, seed=2))
        return t1, t2, g1.m, g2.m

    t1, t2, m1, m2 = benchmark.pedantic(run, rounds=1, iterations=1)
    # 4x the edges (m2/m1 = 4) should cost far less than quadratically
    # more time; allow generous slack for timer noise at this scale.
    assert t2 < ((m2 / m1) ** 2) * max(t1, 5e-3)
    benchmark.extra_info["t_128_ms"] = t1 * 1000
    benchmark.extra_info["t_512_ms"] = t2 * 1000


if __name__ == "__main__":
    main()
