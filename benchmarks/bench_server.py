"""Network serving-tier baseline: ``BENCH_server.json``.

The end of the pipeline: queries through a real TCP socket into a
:class:`~repro.server.server.LabelServer` whose spawn-mode shard
workers all mmap one snapshot file.  For every workload it measures:

* ``inproc_qps`` — the in-process warm partition cache on the same
  stream (the machine-speed yardstick every ratio is normalized by);
* a closed-loop worker ladder through the socket
  (:func:`repro.traffic.run_load`), keeping the best run as
  ``qps_at_saturation`` with its ``p50_ms``/``p99_ms``;
* ``socket_ratio`` — ``qps_at_saturation / inproc_qps``, the protocol
  + fan-out overhead (the gated headline: machine-independent);
* the hot-reload blip: a sustained client stream while the server
  swaps generations to a second snapshot — ``reload_errors`` (must be
  0: zero-downtime is correctness, not perf), ``reload_max_ms`` (the
  worst request latency around the swap) and ``reload_wall_ms``.

Every workload first proves the socket answers bit-identical to
in-process ``query_many`` on a probe batch.

Usage::

    python -m benchmarks.bench_server           # full set -> BENCH_server.json
    python -m benchmarks.bench_server --smoke   # tiny sizes, print only
    python -m benchmarks.bench_server --check   # compare smoke ratios against
                                                # the committed JSON; exit 1 on
                                                # >2x regression or any reload
                                                # error

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.server import AsyncQueryClient, LabelServer
from repro.serving import PartitionCache
from repro.store import save_snapshot
from repro.traffic import fault_set_pool, run_load, uniform_pairs

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: (name, family, n, shards, duration_s, smoke).  The headline workload
#: — >= 4 spawn workers on one mmap'd snapshot — runs first.
WORKLOADS = [
    ("random-512-x4", "random", 512, 4, 3.0, False),
    ("random-128-x2", "random", 128, 2, 1.2, True),
]

#: --check fails when a smoke workload's socket/in-process qps ratio
#: worsens by more than this factor against the committed one (both
#: sides of the ratio are measured in the same run, so machine speed
#: cancels).
REGRESSION_FACTOR = 2.0

#: closed-loop connections tried per workload; the best run is the
#: saturation point.
WORKER_LADDER = (2, 8)

FAULT_SIZE = 2
FAULT_SETS = 8
BATCH = 8  # pairs per request: the shape the coalescer emits anyway


def _bench_stream(graph, queries: int, seed: int):
    rnd = random.Random(seed)
    pairs = uniform_pairs(graph.n, queries, rnd)
    pool = fault_set_pool(graph.m, FAULT_SETS, FAULT_SIZE, rnd)
    per = [pool[i % len(pool)] for i in range(queries)]
    return pairs, per, pool


def _inproc_qps(scheme, pairs, per, repeats: int) -> float:
    """Warm partition-cache qps on the same stream (the yardstick)."""
    cache = PartitionCache(scheme, capacity=FAULT_SETS + 1)
    cache.query_many(pairs, per)  # warm every partition
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        cache.query_many(pairs, per)
        best = min(best, time.perf_counter() - t0)
    return len(pairs) / best


async def _measure_async(
    name: str,
    scheme,
    snap_v1: str,
    snap_v2: str,
    graph,
    shards: int,
    duration_s: float,
    seed: int,
) -> dict:
    pairs, per, pool = _bench_stream(graph, 512, seed + 1)
    server = LabelServer(
        snapshot=snap_v1,
        num_shards=shards,
        chunk_timeout=120.0,
        deadline_s=120.0,
    )
    await server.start()
    try:
        # Correctness gate before any timing: socket == in-process.
        probe_pairs, probe_faults = pairs[:64], pool[0]
        client = await AsyncQueryClient.connect("127.0.0.1", server.port)
        try:
            got = await client.connectivity(probe_pairs, probe_faults)
        finally:
            await client.aclose()
        expected = scheme.query_many(probe_pairs, probe_faults)
        if got != expected:  # pragma: no cover - tripwire
            raise AssertionError(f"{name}: socket answers diverge")

        best = None
        for workers in WORKER_LADDER:
            report = await run_load(
                "127.0.0.1",
                server.port,
                n=graph.n,
                m=graph.m,
                query="connectivity",
                workers=workers,
                batch=BATCH,
                duration_s=duration_s,
                fault_size=FAULT_SIZE,
                fault_sets=FAULT_SETS,
                seed=seed + workers,
            )
            if report.errors:  # pragma: no cover - tripwire
                raise AssertionError(
                    f"{name}: load errors at {workers} workers: "
                    f"{report.error_codes}"
                )
            summary = report.summary()
            summary["queries_per_request"] = BATCH
            summary["qps"] = round(summary["qps"] * BATCH, 1)
            if best is None or summary["qps"] > best["qps"]:
                best = summary

        # Hot reload under sustained load: zero failed requests.
        load_task = asyncio.ensure_future(
            run_load(
                "127.0.0.1",
                server.port,
                n=graph.n,
                m=graph.m,
                query="connectivity",
                workers=4,
                batch=BATCH,
                duration_s=max(duration_s, 1.5),
                fault_size=FAULT_SIZE,
                fault_sets=FAULT_SETS,
                seed=seed + 99,
            )
        )
        await asyncio.sleep(0.3)  # let the stream establish
        admin = await AsyncQueryClient.connect("127.0.0.1", server.port)
        try:
            t0 = time.perf_counter()
            old_v, new_v, _kind = await admin.reload(snap_v2)
            reload_wall = time.perf_counter() - t0
        finally:
            await admin.aclose()
        reload_report = await load_task
        if new_v != old_v + 1:  # pragma: no cover - tripwire
            raise AssertionError(f"{name}: reload did not bump the version")
        reload_summary = reload_report.summary()
        return dict(best or {}), {
            "reload_errors": reload_report.errors,
            "reload_wall_ms": round(reload_wall * 1e3, 2),
            "reload_max_ms": reload_summary["max_ms"],
            "reload_p50_ms": reload_summary["p50_ms"],
        }
    finally:
        await server.aclose()


def measure_workload(
    name: str,
    family: str,
    n: int,
    shards: int,
    duration_s: float,
    repeats: int = 3,
    seed: int = 1,
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = workload_graph(family, n, seed=seed)
    scheme = SketchConnectivityScheme(graph, seed=2)
    scheme_v2 = SketchConnectivityScheme(graph, seed=9)
    with tempfile.TemporaryDirectory(prefix="bench_server_") as tmp:
        snap_v1 = str(Path(tmp) / "v1.snap")
        snap_v2 = str(Path(tmp) / "v2.snap")
        save_snapshot(snap_v1, scheme)
        save_snapshot(snap_v2, scheme_v2)
        pairs, per, _pool = _bench_stream(graph, 512, seed + 1)
        inproc = _inproc_qps(scheme, pairs, per, repeats)
        best, reload_row = asyncio.run(
            _measure_async(
                name, scheme, snap_v1, snap_v2, graph, shards, duration_s,
                seed + 10,
            )
        )
    return {
        "family": family,
        "n": n,
        "m": graph.m,
        "shards": shards,
        "batch": BATCH,
        "inproc_qps": round(inproc, 1),
        "qps_at_saturation": best["qps"],
        "saturation_workers": best["workers"],
        "requests": best["requests"],
        "p50_ms": best["p50_ms"],
        "p90_ms": best["p90_ms"],
        "p99_ms": best["p99_ms"],
        "socket_ratio": round(best["qps"] / inproc, 4) if inproc else 0.0,
        **reload_row,
    }


def run(workloads, repeats: int = 3) -> dict:
    results = {}
    for name, family, n, shards, duration_s, _smoke in workloads:
        row = measure_workload(name, family, n, shards, duration_s, repeats)
        results[name] = row
        print(
            f"  {name}: socket {row['qps_at_saturation']:.0f} q/s "
            f"(x{row['shards']} shards, p50 {row['p50_ms']:.2f}ms, "
            f"p99 {row['p99_ms']:.2f}ms)  in-proc {row['inproc_qps']:.0f} q/s  "
            f"reload blip {row['reload_max_ms']:.1f}ms, "
            f"{row['reload_errors']} errors",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[5]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    Machine-normalized: the gate is the socket/in-process qps ratio
    (both measured in the same run), failed when it worsens by more
    than :data:`REGRESSION_FACTOR` against the committed ratio.  Any
    reload error fails outright — zero-downtime is a correctness bar.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, shards, duration_s, _ = by_name[name]
        row = measure_workload(name, family, n, shards, duration_s, repeats)
        now_ratio = row["socket_ratio"]
        committed_ratio = recorded["socket_ratio"]
        regressed = now_ratio * REGRESSION_FACTOR < committed_ratio
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: socket/in-proc now {now_ratio:.3f}  "
            f"committed {committed_ratio:.3f}  "
            f"reload errors {row['reload_errors']}  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: socket throughput now only {now_ratio:.3f} of the "
                f"in-process cache, > {REGRESSION_FACTOR}x below the "
                f"committed {committed_ratio:.3f}"
            )
        if row["reload_errors"]:
            problems.append(
                f"{name}: {row['reload_errors']} requests failed during the "
                "hot reload (zero-downtime bar)"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_server` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("server regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no server regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[5]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            f"x{r['shards']}",
            f"{r['qps_at_saturation']:.0f}",
            f"{r['p50_ms']:.2f}",
            f"{r['p99_ms']:.2f}",
            f"{r['socket_ratio']:.3f}",
            f"{r['reload_max_ms']:.1f}",
            r["reload_errors"],
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Server throughput (socket, spawn shard workers on one snapshot)",
        ["workload", "n", "shards", "q/s", "p50 ms", "p99 ms",
         "vs in-proc", "reload ms", "reload err"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
