"""Persistent serving-layer baseline: ``BENCH_serving.json``.

This runner pins the performance trajectory of the *serving* layer —
the counterpart of ``bench_query_throughput.py`` (decode engine) and
``baseline.py`` (construction).  The workload is the one the serving
layer exists for: a long (s, t, F) stream that keeps revisiting a small
pool of fault sets (live incidents are queried thousands of times while
they last).  For every workload it measures, verdict-checked:

* ``cold_qps`` — queries/second of plain ``query_many`` (the PR-2
  batched decoder runs one Boruvka simulation per hard query);
* ``first_pass_qps`` — the partition cache fed by the request
  coalescer, starting empty: each distinct fault set is decoded once,
  everything else is a locate + union-find lookup;
* ``warm_qps`` — the same stream again on the now-warm cache (pure
  hits: the steady state of a live serving process);
* ``speedup`` — ``warm_qps / cold_qps``, the headline (the acceptance
  bar for the serving layer is >= 3x on ``random-1024``);
* the cache hit rate and coalescer chunk shape for the first pass.

Usage::

    python -m benchmarks.bench_serving           # full set -> BENCH_serving.json
    python -m benchmarks.bench_serving --smoke   # tiny sizes, print only
    python -m benchmarks.bench_serving --check   # compare smoke speedups
                                                 # against the committed JSON;
                                                 # exit 1 on >2x regression

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.serving import PartitionCache, QueryCoalescer

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: (name, family, n, queries, fault_sets, fault_size, smoke).  The
#: headline workload — the acceptance target — runs first on a cold
#: process.
WORKLOADS = [
    ("random-1024", "random", 1024, 8000, 32, 4, False),
    ("random-256", "random", 256, 2000, 16, 4, True),
    ("grid-256", "grid", 256, 2000, 16, 4, True),
    ("weighted-512", "weighted", 512, 4000, 24, 4, False),
]

#: --check fails when a smoke workload's warm/cold speedup worsens by
#: more than this factor against the committed one (machine-speed
#: independent: both sides are measured in the same run).
REGRESSION_FACTOR = 2.0

#: coalescer chunk bound used by every measurement (a few chunks per
#: fault set, so the first pass already shows cache reuse).
CHUNK = 64


def repeated_fault_stream(graph, queries: int, fault_sets: int, fault_size: int, seed: int):
    """Deterministic round-robin (s, t, F) stream over a fault-set pool.

    Fault lists are canonical (sorted, unique) so the cold decoder sees
    exactly the fault presentation the cached path uses.
    """
    rnd = random.Random(seed)
    size = min(fault_size, graph.m)
    pool = [
        sorted(set(rnd.sample(range(graph.m), size)))
        for _ in range(fault_sets)
    ]
    stream = []
    for i in range(queries):
        s, t = rnd.sample(range(graph.n), 2)
        stream.append((s, t, pool[i % fault_sets]))
    return stream


def measure_workload(
    name: str,
    family: str,
    n: int,
    queries: int,
    fault_sets: int,
    fault_size: int,
    repeats: int = 3,
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = workload_graph(family, n, seed=1)
    scheme = SketchConnectivityScheme(graph, seed=2)
    stream = repeated_fault_stream(graph, queries, fault_sets, fault_size, seed=3)
    pairs = [(s, t) for s, t, _ in stream]
    per = [list(F) for _, _, F in stream]

    # Warm the packed store and check agreement before timing anything.
    warm_probe = scheme.query_many(pairs[:64], per[:64], want_path=False)
    probe_cache = PartitionCache(scheme, capacity=fault_sets + 1)
    if probe_cache.query_many(pairs[:64], per[:64], want_path=False) != warm_probe:
        raise AssertionError("cached/cold divergence")  # pragma: no cover

    best_cold = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        cold = scheme.query_many(pairs, per, want_path=False)
        best_cold = min(best_cold, time.perf_counter() - t0)

    # First pass: empty cache behind the coalescer (misses included).
    cache = PartitionCache(scheme, capacity=fault_sets + 1)
    coalescer = QueryCoalescer(
        lambda p, F: cache.query_many(p, F, want_path=False), max_chunk=CHUNK
    )
    gc.collect()
    t0 = time.perf_counter()
    first = coalescer.run(stream)
    first_s = time.perf_counter() - t0
    if [r.connected for r in first] != [r.connected for r in cold]:
        raise AssertionError("coalesced verdicts diverge")  # pragma: no cover
    first_hit_rate = cache.stats.hit_rate

    # Warm passes: the steady serving state (every partition cached).
    best_warm = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        warm = cache.query_many(pairs, per, want_path=False)
        best_warm = min(best_warm, time.perf_counter() - t0)
    if [r.connected for r in warm] != [r.connected for r in cold]:
        raise AssertionError("warm verdicts diverge")  # pragma: no cover

    count = len(stream)
    return {
        "family": family,
        "n": n,
        "m": graph.m,
        "queries": count,
        "fault_sets": fault_sets,
        "fault_size": fault_size,
        "chunk": CHUNK,
        "cold_s": round(best_cold, 4),
        "first_pass_s": round(first_s, 4),
        "warm_s": round(best_warm, 4),
        "cold_qps": round(count / best_cold, 1),
        "first_pass_qps": round(count / first_s, 1),
        "warm_qps": round(count / best_warm, 1),
        "warm_us_per_query": round(best_warm / count * 1e6, 2),
        "first_pass_hit_rate": round(first_hit_rate, 4),
        "chunks": coalescer.stats.chunks,
        "mean_chunk": round(coalescer.stats.mean_chunk, 1),
        "speedup": round(best_cold / best_warm, 2) if best_warm > 0 else float("inf"),
        "first_pass_speedup": (
            round(best_cold / first_s, 2) if first_s > 0 else float("inf")
        ),
    }


def run(workloads, repeats: int = 3) -> dict:
    results = {}
    for name, family, n, queries, fault_sets, fault_size, _smoke in workloads:
        row = measure_workload(
            name, family, n, queries, fault_sets, fault_size, repeats
        )
        results[name] = row
        print(
            f"  {name}: cold {row['cold_qps']:.0f} q/s  "
            f"first-pass {row['first_pass_qps']:.0f} q/s  "
            f"warm {row['warm_qps']:.0f} q/s  "
            f"speedup {row['speedup']:.1f}x",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[6]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    Machine-normalized like the other gates: the cold decoder is
    measured in the same run, and a workload regresses when the
    warm/cold speedup worsens by more than :data:`REGRESSION_FACTOR`
    against the committed speedup.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, family, n, queries, fault_sets, fault_size, _ = by_name[name]
        row = measure_workload(
            name, family, n, queries, fault_sets, fault_size, repeats
        )
        now_ratio = row["speedup"]
        committed_ratio = recorded["speedup"]
        regressed = now_ratio * REGRESSION_FACTOR < committed_ratio
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: warm now {now_ratio:.2f}x of cold  "
            f"committed {committed_ratio:.2f}x  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: warm serving now only {now_ratio:.2f}x the cold "
                f"decoder, > {REGRESSION_FACTOR}x below the committed "
                f"{committed_ratio:.2f}x"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_serving` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("serving-throughput regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no serving-throughput regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[6]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            r["queries"],
            f"{r['cold_qps']:.0f}",
            f"{r['warm_qps']:.0f}",
            f"{r['speedup']:.1f}x",
            f"{r['first_pass_hit_rate']:.0%}",
            f"{r['warm_us_per_query']:.1f}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Serving throughput (partition cache vs cold query_many)",
        ["workload", "n", "queries", "cold q/s", "warm q/s", "speedup",
         "hit rate", "us/q"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
