"""Persistent snapshot-store baseline: ``BENCH_snapshot.json``.

This runner pins the performance of the build/serve split (PR 5): how
much faster a serving process starts by **loading a snapshot** than by
**rebuilding the labels from the graph** — the whole point of treating
the labels as a serializable artifact.  For every workload it measures:

* ``build_s`` — cold construction of the artifact (graph generation
  excluded; the graph is an input on both sides);
* ``save_s`` — ``save_snapshot`` (checksummed write);
* ``load_s`` — ``load_snapshot`` with the default lazy-mmap settings
  (header + manifest digests verified, segments mapped read-only);
* ``verify_s`` — a full ``verify_snapshot`` pass (every BLAKE2b
  segment digest; the eager-integrity cost a load *avoids*);
* ``load_speedup`` — ``build_s / load_s``, the headline (the
  acceptance bar is >= 5x on ``router-1024``);
* ``disk_mb`` — bytes on disk, and for the sketch workload the
  wire-format label total from the ``sizing/`` bit accounting
  (``wire_mb``), so the storage overhead of the padded packed stores
  over the information-theoretic label content stays visible.

Every load is answer-checked against the in-process build before any
timing is trusted.

Usage::

    python -m benchmarks.bench_snapshot           # full set -> BENCH_snapshot.json
    python -m benchmarks.bench_snapshot --smoke   # tiny sizes, print only
    python -m benchmarks.bench_snapshot --check   # compare smoke speedups
                                                  # against the committed JSON;
                                                  # exit 1 on >2x regression

``--check`` is what ``benchmarks/run_baseline.sh`` and the
``bench_smoke`` pytest marker run in CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.common import print_table, workload_graph
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.store import load_snapshot, save_snapshot, verify_snapshot

#: repo-root location of the committed baseline.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

#: (name, artifact, family, n, smoke).  The headline workload — the
#: acceptance target — is ``router-1024``.  Only ``router-256`` gates
#: CI: the sketch scheme rebuilds in milliseconds, so its speedup
#: hovers near 1-2x and would make a wall-clock gate pure noise.
WORKLOADS = [
    ("router-1024", "router", "random", 1024, False),
    ("router-256", "router", "random", 256, True),
    ("sketch-1024", "sketch", "random", 1024, False),
    ("sketch-256", "sketch", "random", 256, False),
]

#: --check fails when a smoke workload's build/load speedup worsens by
#: more than this factor against the committed one (machine-speed
#: independent: both sides are measured in the same run).
REGRESSION_FACTOR = 2.0


def _build(artifact: str, graph):
    if artifact == "router":
        return FaultTolerantRouter(graph, f=2, k=2, seed=2)
    return SketchConnectivityScheme(graph, seed=2)


def _answers(artifact: str, obj, graph, seed: int):
    """A deterministic answer fingerprint (bit-identity check)."""
    rnd = random.Random(seed)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(32)]
    per = [rnd.sample(range(graph.m), 2) for _ in range(32)]
    if artifact == "router":
        return [
            (r.delivered, tuple(r.trace), r.telemetry.hops, r.length)
            for r in obj.route_many(pairs, per)
        ]
    return [
        (r.connected, r.phases_used) for r in obj.query_many(pairs, per)
    ]


def _wire_label_bytes(scheme: SketchConnectivityScheme) -> int:
    """Total wire-format label content, from the sizing bit accounting."""
    graph = scheme.graph
    bits = sum(scheme.vertex_label(v).bit_length() for v in graph.vertices())
    bits += sum(scheme.edge_label(e.index).bit_length() for e in graph.edges)
    return (bits + 7) // 8


def measure_workload(
    name: str, artifact: str, family: str, n: int, repeats: int = 3
) -> dict:
    """All measurements of one workload, as a JSON-ready dict."""
    graph = workload_graph(family, n, seed=1)

    best_build = float("inf")
    obj = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        obj = _build(artifact, graph)
        best_build = min(best_build, time.perf_counter() - t0)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{name}.snap"
        gc.collect()
        t0 = time.perf_counter()
        save_snapshot(path, obj)
        save_s = time.perf_counter() - t0

        best_load = float("inf")
        loaded = None
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            loaded = load_snapshot(path)
            best_load = min(best_load, time.perf_counter() - t0)

        if _answers(artifact, loaded, graph, seed=9) != _answers(
            artifact, obj, graph, seed=9
        ):  # pragma: no cover - the round-trip tests guard this
            raise AssertionError("snapshot answers diverge from the build")

        gc.collect()
        t0 = time.perf_counter()
        verify_snapshot(path)
        verify_s = time.perf_counter() - t0
        disk = path.stat().st_size

    row = {
        "artifact": artifact,
        "family": family,
        "n": n,
        "m": graph.m,
        "build_s": round(best_build, 4),
        "save_s": round(save_s, 4),
        "load_s": round(best_load, 4),
        "verify_s": round(verify_s, 4),
        "disk_mb": round(disk / 1e6, 2),
        "load_speedup": round(best_build / best_load, 2)
        if best_load > 0
        else float("inf"),
    }
    if artifact == "sketch":
        wire = _wire_label_bytes(obj)
        row["wire_mb"] = round(wire / 1e6, 2)
        row["disk_to_wire"] = round(disk / wire, 2) if wire else float("inf")
    return row


def run(workloads, repeats: int = 3) -> dict:
    results = {}
    for name, artifact, family, n, _smoke in workloads:
        row = measure_workload(name, artifact, family, n, repeats)
        results[name] = row
        print(
            f"  {name}: build {row['build_s']:.2f}s  save {row['save_s']:.2f}s  "
            f"load {row['load_s']:.3f}s  ({row['load_speedup']:.1f}x, "
            f"{row['disk_mb']:.1f} MB)",
            flush=True,
        )
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "machine": platform.machine(),
        "smoke_workloads": [w[0] for w in workloads if w[4]],
        "workloads": results,
    }


def check_against(committed: dict, repeats: int = 3) -> list[str]:
    """Re-run the smoke workloads; return regression messages (empty = ok).

    Machine-normalized like the other gates: cold construction is
    measured in the same run, and a workload regresses when the
    build/load speedup worsens by more than :data:`REGRESSION_FACTOR`
    against the committed speedup.
    """
    problems = []
    by_name = {w[0]: w for w in WORKLOADS}
    for name in committed.get("smoke_workloads", []):
        recorded = committed["workloads"].get(name)
        if recorded is None or name not in by_name:
            continue
        _, artifact, family, n, _ = by_name[name]
        row = measure_workload(name, artifact, family, n, repeats)
        now_ratio = row["load_speedup"]
        committed_ratio = recorded["load_speedup"]
        regressed = now_ratio * REGRESSION_FACTOR < committed_ratio
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: load now {now_ratio:.2f}x of build  "
            f"committed {committed_ratio:.2f}x  [{status}]"
        )
        if regressed:
            problems.append(
                f"{name}: snapshot load now only {now_ratio:.2f}x faster "
                f"than cold construction, > {REGRESSION_FACTOR}x below the "
                f"committed {committed_ratio:.2f}x"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--smoke", action="store_true", help="run only the tiny smoke workloads"
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const=str(DEFAULT_OUT),
        default=None,
        metavar="JSON",
        help="re-run smoke workloads and fail on >2x regression vs JSON",
    )
    ap.add_argument(
        "--no-write", action="store_true", help="print results without writing JSON"
    )
    args = ap.parse_args(argv)

    if args.check is not None:
        path = Path(args.check)
        if not path.exists():
            print(
                f"no committed baseline at {path} — run "
                "`python -m benchmarks.bench_snapshot` to create it"
            )
            return 1
        committed = json.loads(path.read_text())
        problems = check_against(committed, repeats=args.repeats)
        if problems:
            print("snapshot-load regressions detected:")
            for p in problems:
                print("  " + p)
            return 1
        print("no snapshot-load regressions")
        return 0

    workloads = [w for w in WORKLOADS if w[4]] if args.smoke else WORKLOADS
    payload = run(workloads, repeats=args.repeats)
    rows = [
        (
            name,
            r["n"],
            f"{r['build_s']:.2f}",
            f"{r['save_s']:.2f}",
            f"{r['load_s']:.3f}",
            f"{r['load_speedup']:.1f}x",
            f"{r['disk_mb']:.1f}",
            f"{r.get('disk_to_wire', '-')}",
        )
        for name, r in payload["workloads"].items()
    ]
    print_table(
        "Snapshot store (cold build vs mmap load)",
        ["workload", "n", "build s", "save s", "load s", "speedup",
         "disk MB", "disk/wire"],
        rows,
    )
    if not args.smoke and not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
