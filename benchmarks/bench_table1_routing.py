"""Experiment: **Table 1** — comparison of FT routing schemes.

The paper's Table 1 compares stretch and table size across schemes.
This bench reproduces its *shape* with runnable comparators:

| paper row                | implementation                                |
|--------------------------|-----------------------------------------------|
| full-information         | InteriorRoutingBaseline (whole graph/vertex)  |
| fault-free compact (TZ)  | TreeCoverRoutingBaseline                      |
| Chechik'11-style tables  | FaultTolerantRouter(table_mode="simple")      |
| **this paper (Thm 5.8)** | FaultTolerantRouter(table_mode="balanced")    |

The headline shape: the balanced tables are the only compact,
degree-independent option that still delivers under faults with bounded
stretch.  The high-degree "broom" workload makes the degree dependence
of the simple tables visible.

Run ``python -m benchmarks.bench_table1_routing`` for the rows.
"""

from __future__ import annotations

import math
import random

import pytest

from benchmarks.common import geometric_mean, print_table, workload_graph
from repro.graph.graph import Graph
from repro.oracles import DistanceOracle
from repro.routing.baselines import InteriorRoutingBaseline, TreeCoverRoutingBaseline
from repro.routing.fault_tolerant import FaultTolerantRouter


def broom_graph(spokes: int = 24, handle: int = 8) -> Graph:
    """A hub of ``spokes`` leaves plus a path — max degree Θ(n)."""
    g = Graph(spokes + handle + 1)
    for v in range(1, spokes + 1):
        g.add_edge(0, v)
    prev = 0
    for v in range(spokes + 1, spokes + handle + 1):
        g.add_edge(prev, v)
        prev = v
    return g


def _route_stats(router, graph, trials, num_faults, seed):
    oracle = DistanceOracle(graph)
    rnd = random.Random(seed)
    ratios = []
    delivered = total = 0
    while total < trials:
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), num_faults)
        true = oracle.distance(s, t, faults)
        if math.isinf(true) or true <= 0:
            continue
        total += 1
        res = router.route(s, t, faults)
        if res.delivered:
            delivered += 1
            ratios.append(res.length / true)
    return {
        "delivery": delivered / total,
        "geo_stretch": geometric_mean(ratios) if ratios else float("inf"),
        "max_stretch": max(ratios, default=float("inf")),
    }


def table1_rows(graph: Graph, f: int, k: int, trials: int, seed: int):
    interior = InteriorRoutingBaseline(graph)
    tz = TreeCoverRoutingBaseline(graph, k=k, seed=seed)
    simple = FaultTolerantRouter(graph, f=f, k=k, seed=seed, table_mode="simple")
    balanced = FaultTolerantRouter(graph, f=f, k=k, seed=seed, table_mode="balanced")
    hub = max(graph.vertices(), key=graph.degree)
    rows = []
    for name, router, max_bits, hub_bits in (
        ("full-info baseline", interior, interior.max_table_bits(), interior.table_bits(hub)),
        ("fault-free TZ cover", tz, tz.max_table_bits(), None),
        ("simple tables (Che11-style)", simple, simple.max_table_bits(), simple.table_bits(hub)),
        ("balanced tables (Thm 5.8)", balanced, balanced.max_table_bits(), balanced.table_bits(hub)),
    ):
        stats = _route_stats(router, graph, trials, f, seed + 7)
        rows.append(
            (
                name,
                f"{stats['delivery']*100:.0f}%",
                stats["geo_stretch"],
                stats["max_stretch"],
                max_bits,
                hub_bits if hub_bits is not None else "-",
            )
        )
    return rows


def main() -> None:
    f, k = 2, 2
    for label, graph in (
        ("random n=48", workload_graph("random", 48, seed=1)),
        ("broom (hub degree 24)", broom_graph(24, 8)),
    ):
        rows = table1_rows(graph, f=f, k=k, trials=20, seed=2)
        print_table(
            f"Table 1 — FT routing comparison on {label} (f={f}, k={k}, |F|={f})",
            [
                "scheme",
                "delivery",
                "geo stretch",
                "max stretch",
                "max table bits",
                "hub table bits",
            ],
            rows,
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_table1_shape(benchmark):
    """The Table 1 headline: balanced beats simple at the hub; both
    compact schemes deliver under faults; the fault-free scheme does not
    always deliver."""
    graph = broom_graph(24, 8)

    def run():
        return table1_rows(graph, f=2, k=2, trials=12, seed=3)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    simple_hub = by_name["simple tables (Che11-style)"][5]
    balanced_hub = by_name["balanced tables (Thm 5.8)"][5]
    assert balanced_hub < simple_hub  # degree independence
    assert by_name["balanced tables (Thm 5.8)"][1] == "100%"
    benchmark.extra_info["simple_hub_bits"] = simple_hub
    benchmark.extra_info["balanced_hub_bits"] = balanced_hub


@pytest.mark.parametrize("mode", ["simple", "balanced"])
def test_table_construction(benchmark, mode):
    graph = workload_graph("random", 40, seed=4)
    router = benchmark(
        lambda: FaultTolerantRouter(graph, f=2, k=2, seed=5, table_mode=mode)
    )
    benchmark.extra_info["max_table_bits"] = router.max_table_bits()


if __name__ == "__main__":
    main()
