"""Experiment: tree cover quality (Definition 4.1 / Proposition 4.2).

Measures the three cover properties the Section 4 analysis relies on —
ball covering (verified exactly), cluster radius vs the (2k-1)rho
reference, and per-vertex overlap vs the k n^{1/k} reference — across
scales and k values.

Run ``python -m benchmarks.bench_tree_cover`` for the full series.
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, workload_graph
from repro.oracles import DistanceOracle
from repro.trees.tree_cover import sparse_cover


def cover_quality(graph, rho: float, k: int):
    cover = sparse_cover(graph, rho, k)
    oracle = DistanceOracle(graph)
    member_sets = [set(t.vertices) for t in cover.trees]
    covered = all(
        set(oracle.ball(v, rho)) <= member_sets[cover.home[v]]
        for v in graph.vertices()
    )
    max_radius = max((t.radius for t in cover.trees), default=0.0)
    overlap = cover.max_overlap()
    return {
        "clusters": len(cover.trees),
        "covered": covered,
        "max_radius": max_radius,
        "radius_ref": (2 * k - 1) * rho,
        "max_overlap": overlap,
        "overlap_ref": k * graph.n ** (1.0 / k),
    }


def main() -> None:
    for family, n in (("grid", 100), ("random", 128)):
        graph = workload_graph(family, n, seed=1)
        rows = []
        for k in (1, 2, 3):
            for rho in (1.0, 2.0, 4.0, 8.0):
                q = cover_quality(graph, rho, k)
                rows.append(
                    (
                        k,
                        rho,
                        q["clusters"],
                        "yes" if q["covered"] else "NO",
                        q["max_radius"],
                        q["radius_ref"],
                        q["max_overlap"],
                        f"{q['overlap_ref']:.1f}",
                    )
                )
        print_table(
            f"Def 4.1 — tree cover quality on {family} (n={graph.n})",
            [
                "k",
                "rho",
                "#clusters",
                "balls covered",
                "max radius",
                "(2k-1)rho",
                "max overlap",
                "k n^(1/k)",
            ],
            rows,
        )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 3])
def test_cover_construction(benchmark, k):
    graph = workload_graph("grid", 100, seed=1)
    cover = benchmark(lambda: sparse_cover(graph, 2.0, k))
    benchmark.extra_info["clusters"] = len(cover.trees)
    benchmark.extra_info["max_overlap"] = cover.max_overlap()


def test_cover_properties_hold(benchmark):
    graph = workload_graph("grid", 100, seed=1)
    q = benchmark.pedantic(
        lambda: cover_quality(graph, 2.0, 2), rounds=1, iterations=1
    )
    assert q["covered"]
    assert q["max_radius"] <= q["radius_ref"] + 2.0  # round-variant slack
    benchmark.extra_info.update(
        {k: v for k, v in q.items() if isinstance(v, (int, float))}
    )


if __name__ == "__main__":
    main()
