"""Shared helpers for the benchmark harness.

Every bench module in this directory regenerates one table/figure/bound
of the paper (see the per-experiment index in benchmarks/README.md):

* run ``python -m benchmarks.<module>`` to print the full rows/series;
* run ``pytest benchmarks/ --benchmark-only`` to time the underlying
  operations (each module exposes ``test_*`` functions using the
  pytest-benchmark fixture, with the headline measurements attached as
  ``extra_info``).

Construction-time baseline workflow: ``python -m benchmarks.baseline``
measures label construction on the standard workloads (CSR engine vs
the retained seed path) and writes ``BENCH_construction.json`` at the
repo root — the committed file is the performance baseline from this
point onward.  ``benchmarks/run_baseline.sh`` (or
``pytest -m bench_smoke``) re-runs the tiny smoke workloads and fails
if construction regressed more than 2x against the committed numbers;
regenerate and commit the JSON when a perf change is intentional.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.graph import generators
from repro.graph.graph import Graph
from repro.oracles import ConnectivityOracle


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render an aligned ASCII table (the bench output format)."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print()
    print(f"=== {title} ===")
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        return f"{cell:.2f}"
    return str(cell)


def workload_graph(name: str, n: int, seed: int = 0) -> Graph:
    """The standard bench workloads by family name."""
    if name == "random":
        return generators.random_connected_graph(n, extra_edges=int(1.5 * n), seed=seed)
    if name == "grid":
        side = max(2, int(math.isqrt(n)))
        return generators.grid_graph(side, side)
    if name == "weighted":
        base = generators.random_connected_graph(n, extra_edges=int(1.5 * n), seed=seed)
        return generators.with_random_weights(base, 1, 8, seed=seed + 1)
    if name == "ring_of_cliques":
        cliques = max(3, n // 6)
        return generators.ring_of_cliques(cliques, 6)
    if name == "fragmented":
        # Sparse G(n, m) with mean degree 1.4: a giant component plus
        # thousands of small ones — stresses the per-component (forest)
        # paths that a connected workload never touches.
        return generators.gnm_random_graph(n, int(0.7 * n), seed=seed)
    raise ValueError(f"unknown workload {name!r}")


def sample_queries(
    graph: Graph,
    trials: int,
    max_faults: int,
    seed: int,
    connected_only: bool = False,
):
    """Deterministic (s, t, F) query stream for the benches."""
    rnd = random.Random(seed)
    oracle = ConnectivityOracle(graph)
    out = []
    attempts = 0
    while len(out) < trials and attempts < 50 * trials:
        attempts += 1
        s, t = rnd.sample(range(graph.n), 2)
        size = rnd.randint(0, min(max_faults, graph.m))
        faults = rnd.sample(range(graph.m), size)
        if connected_only and not oracle.connected(s, t, faults):
            continue
        out.append((s, t, faults))
    return out


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0 and not math.isinf(v)]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
