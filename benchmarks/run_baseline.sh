#!/bin/sh
# Construction-time smoke check: re-run the tiny baseline workloads and
# fail if any sketch-scheme construction regressed more than 2x against
# the committed BENCH_construction.json.  Intended for CI / pre-merge:
#
#   ./benchmarks/run_baseline.sh
#
# Regenerate the committed baseline (after a deliberate perf change):
#
#   PYTHONPATH=src python -m benchmarks.baseline
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.baseline --check "$@"
