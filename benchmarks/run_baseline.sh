#!/bin/sh
# Perf smoke checks: re-run the tiny baseline workloads and fail if
# label construction (vs BENCH_construction.json), batched decode
# throughput (vs BENCH_query.json), serving-layer throughput (vs
# BENCH_serving.json), routed-message throughput (vs
# BENCH_routing.json), snapshot-load speedup (vs BENCH_snapshot.json),
# the large-instance build fingerprints (vs BENCH_scale.json) or the
# socket server's throughput ratio / zero-downtime reload (vs
# BENCH_server.json) regressed more than 2x against the committed
# numbers, or the observability layer costs more than its 5% hard
# bar (vs BENCH_obs.json).  Intended for CI / pre-merge:
#
#   ./benchmarks/run_baseline.sh
#
# Regenerate the committed baselines (after a deliberate perf change):
#
#   PYTHONPATH=src python -m benchmarks.baseline
#   PYTHONPATH=src python -m benchmarks.bench_query_throughput
#   PYTHONPATH=src python -m benchmarks.bench_serving
#   PYTHONPATH=src python -m benchmarks.bench_routing
#   PYTHONPATH=src python -m benchmarks.bench_snapshot
#   PYTHONPATH=src python -m benchmarks.bench_server
#   PYTHONPATH=src python -m benchmarks.bench_obs
#   PYTHONPATH=src python -m benchmarks.bench_scale   # minutes + tens of GB RAM
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.baseline --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_query_throughput --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_serving --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_routing --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_snapshot --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_server --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_obs --check "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m benchmarks.bench_scale --check "$@"
