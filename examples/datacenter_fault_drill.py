"""Datacenter fault drill: compact FT routing on a torus fabric.

Scenario (the paper's introductory motivation): a network fabric where
links fail and the routing layer must keep delivering without global
recomputation and without per-switch state proportional to the network
size.  We model a torus interconnect (a common direct-topology fabric),
install the paper's fault-tolerant routing scheme (Theorem 5.8,
load-balanced tables), and run a drill:

* an adversary takes down up to f links, *including links on current
  shortest paths*;
* every switch keeps only its compact routing table;
* sources know nothing about the failures.

The drill reports delivery rate, stretch distribution, header sizes,
and compares the per-switch state against a full-information baseline.

Run:  python examples/datacenter_fault_drill.py
"""

from __future__ import annotations

import random

from repro.graph import generators
from repro.oracles import DistanceOracle
from repro.oracles.distances import shortest_path
from repro.routing.baselines import InteriorRoutingBaseline
from repro.routing.fault_tolerant import FaultTolerantRouter

ROWS, COLS = 5, 6
F = 2
K = 2
FLOWS = 30


def adversarial_links(graph, s, t, count, rnd):
    """Fail links lying on the evolving s-t shortest path."""
    faults: list[int] = []
    for _ in range(count):
        path = shortest_path(graph, s, t, faults)
        if path is None or len(path) < 2:
            break
        i = rnd.randrange(len(path) - 1)
        ei = graph.edge_index_between(path[i], path[i + 1])
        if ei is None or ei in faults:
            continue
        faults.append(ei)
    return faults


def main() -> None:
    rnd = random.Random(11)
    fabric = generators.torus_graph(ROWS, COLS)
    print(f"fabric: {ROWS}x{COLS} torus, {fabric.n} switches, {fabric.m} links")

    router = FaultTolerantRouter(fabric, f=F, k=K, seed=5, table_mode="balanced")
    baseline = InteriorRoutingBaseline(fabric)
    oracle = DistanceOracle(fabric)

    compact_bits = router.max_table_bits()
    full_bits = baseline.max_table_bits()
    print(f"per-switch state: FT tables={compact_bits} bits "
          f"(O~(f^3 n^(1/k)) — polylog factors dominate at toy scale; "
          f"full-information={full_bits} bits grows as m log n)")
    print(f"destination address (routing label): {router.max_label_bits()} bits")
    print(f"worst-case stretch guarantee: {router.stretch_bound(F):.0f}x\n")

    delivered = 0
    stretches = []
    reversals = 0
    header = 0
    for flow in range(FLOWS):
        s, t = rnd.sample(range(fabric.n), 2)
        faults = adversarial_links(fabric, s, t, F, rnd)
        true = oracle.distance(s, t, faults)
        result = router.route(s, t, faults)
        if not result.delivered:
            print(f"  flow {flow}: {s}->{t} UNDELIVERED (disconnected: "
                  f"{true == float('inf')})")
            continue
        delivered += 1
        stretches.append(result.length / true if true > 0 else 1.0)
        reversals += result.telemetry.reversals
        header = max(header, result.telemetry.max_header_bits)

    stretches.sort()
    mid = stretches[len(stretches) // 2]
    print(f"drill results over {FLOWS} flows with {F} adversarial link faults:")
    print(f"  delivered           : {delivered}/{FLOWS}")
    print(f"  median stretch      : {mid:.2f}x")
    print(f"  worst stretch       : {stretches[-1]:.2f}x "
          f"(guarantee {router.stretch_bound(F):.0f}x)")
    print(f"  total path reversals: {reversals}")
    print(f"  max header size     : {header} bits")
    print("\nWhat the drill shows: every switch decided next hops from its")
    print("own table plus the message header alone — no global recompute,")
    print("no topology database — and still delivered around hidden faults")
    print("within the stretch guarantee.  (At this toy scale the table's")
    print("polylog factors dwarf the full-information baseline; see")
    print("EXPERIMENTS.md for the size-scaling measurements.)")


if __name__ == "__main__":
    main()
