"""Peer-to-peer overlay health checks from connectivity labels.

Scenario: an overlay network of clustered peers (cliques joined by a
sparse ring — single links hold clusters together).  A monitoring
service stores only each peer's O(f + log n)-bit cycle-space label
(Theorem 3.6) and, for auditability, the labels of links reported
down.  Any <peer A, peer B, down-links> health query is answered from
those labels alone; when the answer is "partitioned", the decoder also
names the exact cut that separates them (the augmented output of
Section 3.1) — which links to repair.

Run:  python examples/overlay_connectivity.py
"""

from __future__ import annotations

import random

from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle

CLUSTERS = 6
CLUSTER_SIZE = 5
F = 3


def main() -> None:
    rnd = random.Random(19)
    overlay = generators.ring_of_cliques(CLUSTERS, CLUSTER_SIZE)
    print(f"overlay: {CLUSTERS} clusters x {CLUSTER_SIZE} peers, "
          f"{overlay.m} links")

    scheme = CycleSpaceConnectivityScheme(overlay, f=F, seed=13)
    oracle = ConnectivityOracle(overlay)
    print(f"monitor state: {scheme.max_vertex_label_bits()} bits per peer, "
          f"{scheme.max_edge_label_bits()} bits per link label "
          f"(b = {scheme.b} cycle-space bits)\n")

    ring_links = [
        e.index
        for e in overlay.edges
        if e.u // CLUSTER_SIZE != e.v // CLUSTER_SIZE
    ]

    # Drill 1: random link failures (usually harmless).
    down = rnd.sample(range(overlay.m), F)
    a, b = 0, (CLUSTERS // 2) * CLUSTER_SIZE
    verdict = scheme.query(a, b, down)
    print(f"drill 1 — random failures {down}: peers {a} and {b} "
          f"{'connected' if verdict else 'PARTITIONED'} "
          f"(exact: {oracle.connected(a, b, down)})")

    # Drill 2: two ring links down — the overlay splits into two arcs.
    down = [ring_links[0], ring_links[CLUSTERS // 2]]
    result = scheme.decode(
        scheme.vertex_label(a),
        scheme.vertex_label(b),
        [scheme.edge_label(ei) for ei in down],
    )
    print(f"drill 2 — targeted ring failures {down}: "
          f"{'connected' if result.connected else 'PARTITIONED'}")
    if not result.connected and result.cut_member_positions is not None:
        cut = [down[i] for i in result.cut_member_positions]
        pairs = [(overlay.edge(ei).u, overlay.edge(ei).v) for ei in cut]
        print(f"          separating cut returned by the decoder: {pairs}")
        print("          -> repairing any one of these links reconnects "
              f"{a} and {b}")
        assert not oracle.connected(a, b, cut)

    # Drill 3: full audit — every pair of cluster heads under the drill-2
    # failures, answered purely from labels.
    heads = [c * CLUSTER_SIZE for c in range(CLUSTERS)]
    reachable = 0
    for i, u in enumerate(heads):
        for v in heads[i + 1:]:
            if scheme.query(u, v, down):
                reachable += 1
    total = CLUSTERS * (CLUSTERS - 1) // 2
    print(f"drill 3 — cluster-head audit: {reachable}/{total} pairs still "
          f"connected under the ring failures")


if __name__ == "__main__":
    main()
