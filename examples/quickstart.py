"""Quickstart: the three things the library does.

1. **FT connectivity labels** — ask "are s and t still connected after
   these edges failed?" using only a few hundred bits of labels.
2. **FT approximate distance labels** — ask "how far apart are they
   now?" with a provable stretch guarantee.
3. **FT compact routing** — actually deliver a message around faults
   the sender does not know about, with compact per-vertex tables.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    FaultTolerantConnectivity,
    FaultTolerantDistance,
    generators,
)
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter


def main() -> None:
    rnd = random.Random(7)

    # A random connected network with 120 nodes and ~300 links.
    graph = generators.random_connected_graph(120, extra_edges=180, seed=42)
    print(f"network: n={graph.n} vertices, m={graph.m} edges")

    # ------------------------------------------------------------------
    # 1. Connectivity labels (Theorem 1.3)
    # ------------------------------------------------------------------
    conn = FaultTolerantConnectivity(graph, f=4, seed=1)
    print(f"\n[1] connectivity labels: scheme={conn.scheme_name}, "
          f"max edge label = {conn.max_edge_label_bits()} bits")
    oracle = ConnectivityOracle(graph)
    for _ in range(3):
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), 4)
        answer = conn.connected(s, t, faults)
        truth = oracle.connected(s, t, faults)
        print(f"    connected({s}, {t}) avoiding {len(faults)} faults"
              f" -> {answer}   (exact: {truth})")
        assert answer == truth

    # ------------------------------------------------------------------
    # 2. Distance labels (Theorem 1.4)
    # ------------------------------------------------------------------
    dist = FaultTolerantDistance(graph, f=2, k=2, seed=2)
    dist_oracle = DistanceOracle(graph)
    print(f"\n[2] distance labels: max vertex label = "
          f"{dist.max_vertex_label_bits()} bits, "
          f"stretch bound = {dist.stretch_bound(2):.0f}x")
    for _ in range(3):
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), 2)
        est = dist.estimate(s, t, faults)
        true = dist_oracle.distance(s, t, faults)
        print(f"    dist({s}, {t}) under faults: estimate={est:.0f}, "
              f"true={true:.0f}, ratio={est/true:.1f}x")

    # ------------------------------------------------------------------
    # 3. Fault-tolerant routing (Theorem 5.8)
    # ------------------------------------------------------------------
    router = FaultTolerantRouter(graph, f=2, k=2, seed=3)
    print(f"\n[3] FT routing: destination label = {router.max_label_bits()} "
          f"bits; per-vertex table = {router.max_table_bits()} bits "
          "(O~(f^3 n^(1/k)); polylog factors dominate at this scale)")
    for _ in range(3):
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), 2)
        true = dist_oracle.distance(s, t, faults)
        res = router.route(s, t, faults)
        status = "delivered" if res.delivered else "no route"
        print(f"    route {s} -> {t} with 2 hidden faults: {status}, "
              f"walked {res.length:.0f} (optimal {true:.0f}), "
              f"{res.telemetry.reversals} reversals")

    print("\nAll answers verified against the exact oracles.")


if __name__ == "__main__":
    main()
