"""Sensor-mesh monitoring with FT distance labels.

Scenario: a field of sensors meshed over difficult terrain (a weighted
grid — edge weights are traversal costs).  A base station holds only
the *labels* of the sensors (Theorem 1.4), not the topology.  When
links wash out, field teams report the labels of the failed links, and
the base station re-estimates its distance to every sensor from labels
alone — no topology database, no recomputation.

Run:  python examples/sensor_mesh_distances.py
"""

from __future__ import annotations

import math
import random

from repro.core.distance_labels import DistanceLabelScheme
from repro.graph import generators
from repro.oracles import DistanceOracle

SIDE = 7
F = 2
K = 2


def main() -> None:
    rnd = random.Random(3)
    terrain = generators.with_random_weights(
        generators.grid_graph(SIDE, SIDE), 1, 6, seed=9
    )
    base_station = 0
    print(f"sensor mesh: {SIDE}x{SIDE} grid, weighted links (cost 1..6)")

    scheme = DistanceLabelScheme(terrain, f=F, k=K, seed=4, base_scheme="cycle_space")
    oracle = DistanceOracle(terrain)
    print(f"labels: {scheme.max_vertex_label_bits()} bits per sensor, "
          f"{scheme.K + 1} distance scales, {len(scheme.instances)} cover trees")
    print(f"guarantee: estimates within {scheme.stretch_bound(F):.0f}x "
          f"of the true post-fault distance\n")

    # The base station pre-fetches labels once.
    labels = {v: scheme.vertex_label(v) for v in terrain.vertices()}

    # Two washouts on the mesh, reported by their labels.
    washouts = rnd.sample(range(terrain.m), F)
    fault_labels = [scheme.edge_label(ei) for ei in washouts]
    named = [(terrain.edge(ei).u, terrain.edge(ei).v) for ei in washouts]
    print(f"washed-out links: {named}")

    unreachable = []
    worst_ratio = 0.0
    total_ratio = 0.0
    count = 0
    for sensor in terrain.vertices():
        if sensor == base_station:
            continue
        result = scheme.decode(labels[base_station], labels[sensor], fault_labels)
        true = oracle.distance(base_station, sensor, washouts)
        if math.isinf(result.estimate):
            unreachable.append(sensor)
            assert math.isinf(true)
            continue
        ratio = result.estimate / true
        worst_ratio = max(worst_ratio, ratio)
        total_ratio += ratio
        count += 1

    print(f"\nre-estimated {count} sensors from labels only:")
    print(f"  mean over-estimate : {total_ratio / count:.2f}x")
    print(f"  worst over-estimate: {worst_ratio:.2f}x "
          f"(bound {scheme.stretch_bound(F):.0f}x)")
    print(f"  unreachable sensors: {unreachable if unreachable else 'none'}")

    # Priority triage: five sensors the base station now believes are
    # farthest — the ones to check on first.
    estimates = []
    for sensor in terrain.vertices():
        if sensor == base_station:
            continue
        r = scheme.decode(labels[base_station], labels[sensor], fault_labels)
        if not math.isinf(r.estimate):
            estimates.append((r.estimate, sensor))
    estimates.sort(reverse=True)
    print(f"  triage (farthest-first): {[s for _, s in estimates[:5]]}")


if __name__ == "__main__":
    main()
