"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build; this
shim keeps ``python setup.py develop`` / legacy ``pip install -e .``
working.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
