"""repro — Fault-Tolerant Labeling and Compact Routing Schemes.

A complete reproduction of Dory & Parter, "Fault-Tolerant Labeling and
Compact Routing Schemes" (PODC 2021, arXiv:2106.00374): both FT
connectivity labeling schemes, FT approximate distance labels, the
forbidden-set and fault-tolerant compact routing schemes with
load-balanced tables, the Ω(f) stretch lower bound, and every substrate
they rely on (cycle-space sampling, linear graph sketches, tree covers,
Thorup–Zwick tree routing, a port-based network simulator) — plus a
serving layer (:mod:`repro.serving`) that caches fault-set partitions,
coalesces query streams and shards them across processes, an
array-native routing plane (:mod:`repro.routing`) with batched
``route_many``, and a traffic subsystem (:mod:`repro.traffic`) for
workload generation and churn simulation.

Quickstart::

    from repro import generators, FaultTolerantConnectivity

    g = generators.random_connected_graph(200, extra_edges=300, seed=1)
    labels = FaultTolerantConnectivity(g, f=4)
    labels.connected(0, 100, faults=[5, 17, 33])   # True/False, w.h.p.

See README.md for the full tour and docs/ARCHITECTURE.md for the
end-to-end data flow.
"""

from repro.graph import generators
from repro.graph.graph import Edge, Graph, InducedSubgraph
from repro.core.api import (
    FaultTolerantConnectivity,
    FaultTolerantDistance,
    FaultTolerantRouting,
)
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.core.forest_scheme import ForestConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.scenarios import FaultScenario
from repro.serving import (
    PartitionCache,
    QueryCoalescer,
    ShardedQueryService,
)

__version__ = "1.0.0"

__all__ = [
    "Edge",
    "Graph",
    "InducedSubgraph",
    "generators",
    "FaultTolerantConnectivity",
    "FaultTolerantDistance",
    "FaultTolerantRouting",
    "CycleSpaceConnectivityScheme",
    "SketchConnectivityScheme",
    "ForestConnectivityScheme",
    "DistanceLabelScheme",
    "ConnectivityOracle",
    "DistanceOracle",
    "FaultScenario",
    "PartitionCache",
    "QueryCoalescer",
    "ShardedQueryService",
    "__version__",
]
