"""Internal utilities: seeded randomness derivation and bit helpers."""

from repro._util.rng import derive_seed, prf_bytes, prf_int, prf_int_pairs, rng_from

__all__ = ["derive_seed", "prf_bytes", "prf_int", "prf_int_pairs", "rng_from"]
