"""Deterministic process-pool plumbing for the parallel build pipeline.

:class:`BuildPool` farms an *ordered* list of tasks onto worker
processes and returns the results in task order, so callers assemble
worker outputs bit-identically to the serial loop regardless of how the
OS schedules the workers.  The determinism contract has three legs:

* **deterministic partition** — the caller fixes the task list (per
  sketch copy, per unit range) before any worker starts; nothing about
  the split depends on timing;
* **no RNG consumption** — workers only *evaluate* seeded hash families
  and PRFs against read-only inputs; they never draw from a shared
  random stream, so there is no consumption order to disturb;
* **ordered assembly** — results come back indexed by task, and the
  parent concatenates them in task order, which is exactly the order
  the serial loop would have produced.

Payload plumbing: large read-only inputs (the EID word matrix, scatter
plans) are installed in a module global *before* the pool forks, so
workers inherit them copy-on-write without pickling (the ``fork`` start
method; POSIX default).  Where ``fork`` is unavailable the payload is
pickled once per worker through the pool initializer.  A pool created
without a payload (the shared pool of
:class:`~repro.core.distance_labels.DistanceLabelScheme`) ships each
task's inputs with the task instead — cluster instances are small, so
per-task pickling is cheap there.

A worker that raises propagates its exception to the parent ``map``
call; the pool is terminated and joined before the exception leaves
the pool, so a failed build never leaks orphan worker processes.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Iterable, Optional, Sequence

#: read-only build context inherited by workers (fork COW / initializer).
_PAYLOAD: Any = None

#: test hook: set to a message to make every worker task raise before
#: running (crash-path tests; inherited by forked workers like the
#: payload is).
_FAIL_FOR_TEST: Optional[str] = None


def _install_payload(payload: Any) -> None:
    global _PAYLOAD
    _PAYLOAD = payload


def _invoke(item: tuple) -> Any:
    fn, args = item
    if _FAIL_FOR_TEST is not None:
        raise RuntimeError(_FAIL_FOR_TEST)
    return fn(_PAYLOAD, *args)


class BuildPool:
    """An ordered-map process pool with a shared read-only payload.

    ``workers <= 1`` degrades to inline serial execution (no processes,
    no pickling) — ``build_workers=1`` everywhere is *the* serial
    reference path, not a one-worker pool.
    """

    def __init__(self, workers: int, payload: Any = None):
        self.workers = max(1, int(workers))
        self._payload = payload
        self._pool = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "BuildPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(terminate=exc_type is not None)

    def _ensure(self) -> None:
        if self._pool is not None or self.workers <= 1:
            return
        global _PAYLOAD
        try:
            ctx = mp.get_context("fork")
            # Install the payload before forking: children inherit it
            # copy-on-write, so multi-GB arrays are shared, not pickled.
            _PAYLOAD = self._payload
            try:
                self._pool = ctx.Pool(self.workers)
            finally:
                _PAYLOAD = None
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
            self._pool = ctx.Pool(
                self.workers,
                initializer=_install_payload,
                initargs=(self._payload,),
            )

    def close(self, terminate: bool = False) -> None:
        """Shut the pool down and reap every worker (no orphans)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()

    # -- work ----------------------------------------------------------
    def map(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        """``[fn(payload, *task) for task in tasks]``, in task order.

        Results are ordered by task regardless of worker scheduling.  A
        worker exception re-raises here after the pool has been
        terminated and joined.
        """
        items = [(fn, tuple(t)) for t in tasks]
        if self.workers <= 1:
            if _FAIL_FOR_TEST is not None:
                raise RuntimeError(_FAIL_FOR_TEST)
            return [fn(self._payload, *args) for _fn, args in items]
        self._ensure()
        try:
            return self._pool.map(_invoke, items)
        except BaseException:
            self.close(terminate=True)
            raise


def split_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """``parts`` contiguous, near-even ``(lo, hi)`` ranges covering
    ``[0, total)`` — the deterministic work partition for unit-range
    tasks.  Depends only on the two integers, never on timing."""
    parts = max(1, min(int(parts), max(1, total)))
    bounds = [total * i // parts for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts) if bounds[i] < bounds[i + 1]]
