"""Deterministic randomness utilities.

Every randomized scheme in this package is driven by a single integer
*master seed*.  Independent random streams (sketch units, hash functions,
identifier PRFs) are derived from the master seed with a keyed BLAKE2b
PRF, so results are reproducible bit-for-bit across runs and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_BYTES = 16


def _to_bytes(value: int | str | bytes) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)
        return value.to_bytes(length, "big", signed=True)
    raise TypeError(f"cannot derive seed material from {type(value)!r}")


def prf_bytes(seed: int, *salt: int | str | bytes, size: int = 16) -> bytes:
    """Return ``size`` pseudo-random bytes determined by ``seed`` and ``salt``.

    This is the package-wide PRF: a keyed BLAKE2b hash of the salt values,
    keyed by the seed.  It backs both seed derivation and the unique edge
    identifiers of Lemma 3.8 (see ``repro.sketches.edge_ids``).
    """
    key = _to_bytes(seed).rjust(16, b"\0")[-16:]
    h = hashlib.blake2b(key=key, digest_size=min(size, 64))
    for part in salt:
        data = _to_bytes(part)
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    digest = h.digest()
    while len(digest) < size:
        h = hashlib.blake2b(digest, key=key, digest_size=64)
        digest += h.digest()
    return digest[:size]


def prf_int(seed: int, *salt: int | str | bytes, bits: int = 64) -> int:
    """Return a pseudo-random ``bits``-bit integer determined by seed+salt."""
    size = (bits + 7) // 8
    value = int.from_bytes(prf_bytes(seed, *salt, size=size), "big")
    return value & ((1 << bits) - 1)


def derive_seed(seed: int, *salt: int | str | bytes) -> int:
    """Derive an independent 128-bit child seed from a master seed."""
    return int.from_bytes(prf_bytes(seed, *salt, size=_SEED_BYTES), "big")


def rng_from(seed: int, *salt: int | str | bytes) -> np.random.Generator:
    """Create a numpy Generator seeded deterministically from seed+salt."""
    return np.random.Generator(np.random.PCG64(derive_seed(seed, *salt)))
