"""Deterministic randomness utilities.

Every randomized scheme in this package is driven by a single integer
*master seed*.  Independent random streams (sketch units, hash functions,
identifier PRFs) are derived from the master seed with a keyed BLAKE2b
PRF, so results are reproducible bit-for-bit across runs and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_BYTES = 16


def _to_bytes(value: int | str | bytes) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)
        return value.to_bytes(length, "big", signed=True)
    raise TypeError(f"cannot derive seed material from {type(value)!r}")


def _prf_key(seed: int) -> bytes:
    """The 16-byte BLAKE2b key derived from an integer seed."""
    return _to_bytes(seed).rjust(16, b"\0")[-16:]


def _frame(part: int | str | bytes) -> bytes:
    """Length-prefixed salt framing: 4-byte big-endian length + bytes."""
    data = _to_bytes(part)
    return len(data).to_bytes(4, "big") + data


def _extend_digest(digest: bytes, key: bytes, size: int) -> bytes:
    """Stretch a digest to ``size`` bytes by rehashing the accumulation."""
    while len(digest) < size:
        digest += hashlib.blake2b(digest, key=key, digest_size=64).digest()
    return digest[:size]


def prf_bytes(seed: int, *salt: int | str | bytes, size: int = 16) -> bytes:
    """Return ``size`` pseudo-random bytes determined by ``seed`` and ``salt``.

    This is the package-wide PRF: a keyed BLAKE2b hash of the salt values,
    keyed by the seed.  It backs both seed derivation and the unique edge
    identifiers of Lemma 3.8 (see ``repro.sketches.edge_ids``).
    """
    key = _prf_key(seed)
    h = hashlib.blake2b(key=key, digest_size=min(size, 64))
    for part in salt:
        h.update(_frame(part))
    return _extend_digest(h.digest(), key, size)


def prf_int(seed: int, *salt: int | str | bytes, bits: int = 64) -> int:
    """Return a pseudo-random ``bits``-bit integer determined by seed+salt."""
    size = (bits + 7) // 8
    value = int.from_bytes(prf_bytes(seed, *salt, size=size), "big")
    return value & ((1 << bits) - 1)


def prf_int_pairs(
    seed: int, label: str, pairs, bits: int = 64, frame_cache=None
) -> list[int]:
    """``prf_int(seed, label, a, b)`` for many ``(a, b)`` pairs at once.

    Bit-identical to the scalar path — both are built on the same
    :func:`_prf_key` / :func:`_frame` / :func:`_extend_digest` helpers —
    with the key derivation and label framing hoisted out of the loop.
    The per-pair cost is one BLAKE2b evaluation, the hot path of bulk
    edge-identifier construction and of batched candidate validation.

    ``frame_cache`` may be a caller-owned dict reused across calls: the
    length-prefixed framings of the integer operands are pure values, so
    a persistent cache (e.g. one per ``UidScheme``) amortizes them to a
    dict hit — the decoder validates candidate streams whose ids repeat
    heavily across batches.
    """
    key = _prf_key(seed)
    size = (bits + 7) // 8
    mask = (1 << bits) - 1
    from_bytes = int.from_bytes
    framed: dict[int, bytes] = {} if frame_cache is None else frame_cache
    framed_get = framed.get
    digest_size = min(size, 64)
    base = hashlib.blake2b(_frame(label), key=key, digest_size=digest_size)
    base_copy = base.copy
    extend = size > digest_size  # one digest already covers the output
    out: list[int] = []
    for a, b in pairs:
        fa = framed_get(a)
        if fa is None:
            fa = framed[a] = _frame(a)
        fb = framed_get(b)
        if fb is None:
            fb = framed[b] = _frame(b)
        h = base_copy()
        h.update(fa + fb)
        digest = h.digest()
        if extend:
            digest = _extend_digest(digest, key, size)
        out.append(from_bytes(digest, "big") & mask)
    return out


def derive_seed(seed: int, *salt: int | str | bytes) -> int:
    """Derive an independent 128-bit child seed from a master seed."""
    return int.from_bytes(prf_bytes(seed, *salt, size=_SEED_BYTES), "big")


def rng_from(seed: int, *salt: int | str | bytes) -> np.random.Generator:
    """Create a numpy Generator seeded deterministically from seed+salt."""
    return np.random.Generator(np.random.PCG64(derive_seed(seed, *salt)))
