"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``info``     — build a workload graph and print scheme size reports.
* ``query``    — answer one <s, t, F> connectivity + distance query.
* ``route``    — route a message under hidden faults and print telemetry.
* ``lower-bound`` — print the Theorem 1.6 series.

All commands operate on the built-in synthetic workloads (``--family``,
``--n``, ``--seed``), so the tool is fully self-contained and every run
is reproducible.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.graph import generators
from repro.graph.graph import Graph
from repro.oracles import DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter


def _build_graph(args: argparse.Namespace) -> Graph:
    family = args.family
    if family == "random":
        return generators.random_connected_graph(
            args.n, extra_edges=int(1.5 * args.n), seed=args.seed
        )
    if family == "grid":
        side = max(2, int(math.isqrt(args.n)))
        return generators.grid_graph(side, side)
    if family == "torus":
        side = max(3, int(math.isqrt(args.n)))
        return generators.torus_graph(side, side)
    if family == "ring_of_cliques":
        return generators.ring_of_cliques(max(3, args.n // 5), 5)
    if family == "weighted":
        base = generators.random_connected_graph(
            args.n, extra_edges=int(1.5 * args.n), seed=args.seed
        )
        return generators.with_random_weights(base, 1, 8, seed=args.seed + 1)
    raise SystemExit(f"unknown family {family!r}")


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    print(f"graph: family={args.family} n={graph.n} m={graph.m} "
          f"W={graph.max_weight():.0f}")
    for scheme_name in ("cycle_space", "sketch"):
        conn = FaultTolerantConnectivity(graph, f=args.f, scheme=scheme_name, seed=args.seed)
        print(f"connectivity[{scheme_name}]: vertex label "
              f"{conn.max_vertex_label_bits()} bits, edge label "
              f"{conn.max_edge_label_bits()} bits")
    dist = FaultTolerantDistance(graph, f=args.f, k=args.k, seed=args.seed)
    print(f"distance[k={args.k}]: vertex label {dist.max_vertex_label_bits()} bits, "
          f"stretch bound {dist.stretch_bound(args.f):.0f}x")
    return 0


def _parse_faults(spec: str) -> list[int]:
    if not spec:
        return []
    return [int(x) for x in spec.split(",") if x.strip() != ""]


def _cmd_query(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    faults = _parse_faults(args.faults)
    conn = FaultTolerantConnectivity(graph, f=max(args.f, len(faults)), seed=args.seed)
    dist = FaultTolerantDistance(
        graph, f=max(args.f, len(faults)), k=args.k, seed=args.seed
    )
    connected = conn.connected(args.s, args.t, faults)
    print(f"connected({args.s}, {args.t} | {len(faults)} faults) = {connected}")
    if connected:
        est = dist.estimate(args.s, args.t, faults)
        true = DistanceOracle(graph).distance(args.s, args.t, faults)
        print(f"distance estimate = {est:.1f} (exact {true:.1f}, "
              f"bound {dist.stretch_bound(len(faults)):.0f}x)")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    faults = _parse_faults(args.faults)
    router = FaultTolerantRouter(
        graph, f=max(args.f, len(faults)), k=args.k, seed=args.seed,
        table_mode=args.tables,
    )
    result = router.route(args.s, args.t, faults)
    true = DistanceOracle(graph).distance(args.s, args.t, faults)
    if not result.delivered:
        print(f"route {args.s} -> {args.t}: UNDELIVERED "
              f"(exact distance: {true})")
        return 1
    tel = result.telemetry
    print(f"route {args.s} -> {args.t}: delivered")
    print(f"  walked       : {result.length:.1f} (optimal {true:.1f})")
    print(f"  hops         : {tel.hops}")
    print(f"  reversals    : {tel.reversals}")
    print(f"  gamma queries: {tel.gamma_queries}")
    print(f"  decode calls : {tel.decode_calls}")
    print(f"  header bits  : {tel.max_header_bits}")
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    from repro.routing.lower_bound import (
        sequential_strategy_expected_stretch,
        simulate_sequential_strategy,
    )

    print("f  analytic  simulated")
    for f in range(1, args.f + 1):
        analytic = sequential_strategy_expected_stretch(f)
        simulated = simulate_sequential_strategy(f, 10, 1500, seed=args.seed)
        print(f"{f}  {analytic:.2f}      {simulated:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant labeling and compact routing schemes "
        "(Dory & Parter, PODC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="random",
                       choices=["random", "grid", "torus", "ring_of_cliques", "weighted"])
        p.add_argument("--n", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--f", type=int, default=2, help="fault bound")
        p.add_argument("--k", type=int, default=2, help="stretch parameter")

    p_info = sub.add_parser("info", help="scheme size report")
    common(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="one connectivity/distance query")
    common(p_query)
    p_query.add_argument("--s", type=int, required=True)
    p_query.add_argument("--t", type=int, required=True)
    p_query.add_argument("--faults", default="", help="comma-separated edge indices")
    p_query.set_defaults(func=_cmd_query)

    p_route = sub.add_parser("route", help="route a message under faults")
    common(p_route)
    p_route.add_argument("--s", type=int, required=True)
    p_route.add_argument("--t", type=int, required=True)
    p_route.add_argument("--faults", default="")
    p_route.add_argument("--tables", default="balanced", choices=["simple", "balanced"])
    p_route.set_defaults(func=_cmd_route)

    p_lb = sub.add_parser("lower-bound", help="Theorem 1.6 series")
    p_lb.add_argument("--f", type=int, default=4)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.set_defaults(func=_cmd_lower_bound)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
