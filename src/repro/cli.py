"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``info``     — build a workload graph and print scheme size reports.
* ``build``    — construct an artifact (sketch scheme / router / facade)
  once and save it as a checksummed ``repro.store`` snapshot file: the
  *build* half of the build/serve split.
* ``query``    — answer one <s, t, F> connectivity + distance query,
  in process or (``--connect HOST:PORT``) against a running ``serve``
  instance over the binary wire protocol.
* ``route``    — route a message under hidden faults and print telemetry.
* ``route-bench`` — route one message batch through the packed
  multi-message stepper and through the seed scalar engine, verify the
  traces agree bit for bit, and print routed-messages/sec for both.
* ``traffic`` — run a fail/repair churn traffic simulation through the
  batched router and print the aggregated telemetry report
  (``--snapshot`` loads the router from a ``build`` snapshot instead of
  constructing it).
* ``serve-bench`` — drive a repeated-fault-set query stream through the
  serving layer (partition cache + coalescer, optionally sharded) and
  print throughput vs the cold batched decoder (``--snapshot`` serves
  off a ``build`` snapshot, cross-checked against in-process
  construction).
* ``serve`` — the network serving tier: bind a TCP port and answer
  connectivity/distance/route queries over the length-prefixed binary
  protocol, fanning work out to shard workers that mmap one ``build``
  snapshot; SIGHUP (or a client ``reload``) swaps in a new snapshot
  with zero downtime.
* ``stats`` — dump a running ``serve`` instance's merged metrics
  registry (per-shard queue depth, cache hit rates, latency histogram
  percentiles, slow-query traces) as a human-readable report, raw
  JSON (``--json``), or Prometheus text exposition (``--prometheus``).
* ``lower-bound`` — print the Theorem 1.6 series.

All commands operate on the built-in synthetic workloads (``--family``,
``--n``, ``--seed``), so the tool is fully self-contained and every run
is reproducible — ``build`` then ``serve-bench --snapshot`` /
``traffic --snapshot`` answers bit-identically to building in process.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.graph.graph import Graph
from repro.oracles import DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter


def _build_graph(args: argparse.Namespace) -> Graph:
    family = args.family
    if family == "random":
        return generators.random_connected_graph(
            args.n, extra_edges=int(1.5 * args.n), seed=args.seed
        )
    if family == "grid":
        side = max(2, int(math.isqrt(args.n)))
        return generators.grid_graph(side, side)
    if family == "torus":
        side = max(3, int(math.isqrt(args.n)))
        return generators.torus_graph(side, side)
    if family == "ring_of_cliques":
        return generators.ring_of_cliques(max(3, args.n // 5), 5)
    if family == "weighted":
        base = generators.random_connected_graph(
            args.n, extra_edges=int(1.5 * args.n), seed=args.seed
        )
        return generators.with_random_weights(base, 1, 8, seed=args.seed + 1)
    raise SystemExit(f"unknown family {family!r}")


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    print(f"graph: family={args.family} n={graph.n} m={graph.m} "
          f"W={graph.max_weight():.0f}")
    for scheme_name in ("cycle_space", "sketch"):
        conn = FaultTolerantConnectivity(graph, f=args.f, scheme=scheme_name, seed=args.seed)
        print(f"connectivity[{scheme_name}]: vertex label "
              f"{conn.max_vertex_label_bits()} bits, edge label "
              f"{conn.max_edge_label_bits()} bits")
    dist = FaultTolerantDistance(graph, f=args.f, k=args.k, seed=args.seed)
    print(f"distance[k={args.k}]: vertex label {dist.max_vertex_label_bits()} bits, "
          f"stretch bound {dist.stretch_bound(args.f):.0f}x")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    """Construct one artifact and save it as a snapshot (build/serve).

    ``--artifact sketch`` saves the standalone sketch connectivity
    scheme ``serve-bench --snapshot`` serves; ``router`` saves the full
    fault-tolerant routing stack ``traffic --snapshot`` drives;
    ``connectivity``/``distance`` save the ``core.api`` facades.  The
    written file is integrity-checked (every BLAKE2b segment digest)
    before reporting success.
    """
    from repro.store import save_snapshot, snapshot_info, verify_snapshot

    graph = _build_graph(args)
    id_space = args.id_space or None
    workers = max(1, getattr(args, "workers", 1))
    t0 = time.perf_counter()
    if args.artifact == "sketch":
        obj = SketchConnectivityScheme(
            graph, seed=args.seed, id_space=id_space, build_workers=workers
        )
    elif args.artifact == "router":
        obj = FaultTolerantRouter(
            graph, f=args.f, k=args.k, seed=args.seed, table_mode=args.tables,
            id_space=id_space, build_workers=workers,
        )
    elif args.artifact == "connectivity":
        obj = FaultTolerantConnectivity(graph, f=args.f, seed=args.seed)
    else:  # distance
        obj = FaultTolerantDistance(graph, f=args.f, k=args.k, seed=args.seed)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    save_snapshot(args.out, obj)
    save_s = time.perf_counter() - t0
    verify_snapshot(args.out)
    info = snapshot_info(args.out)
    print(
        f"build: family={args.family} n={graph.n} m={graph.m} "
        f"artifact={args.artifact} seed={args.seed}"
    )
    if args.artifact == "sketch":
        print(
            f"  hash family         : {obj.hash_family} "
            f"(id_space={obj._id_space}, prefix={obj.prefix_layout})"
        )
    print(f"  constructed in      : {build_s:.2f}s")
    print(
        f"  saved + verified    : {args.out} "
        f"({info['file_bytes'] / 1e6:.1f} MB, {info['segments']} segments, "
        f"{save_s:.2f}s)"
    )
    print(f"  kind                : {info['kind']}")
    return 0


def _load_snapshot_or_exit(path: str, expect, what: str, graph=None):
    """Load a snapshot and insist it holds the artifact a command needs.

    With ``graph``, also insist the snapshot was built from that exact
    workload graph (sizes and the edge lists themselves — a different
    ``--seed``/``--family`` would otherwise surface later as a
    corruption-style answer divergence).
    """
    from repro.store import SnapshotError, load_snapshot

    try:
        obj = load_snapshot(path)
    except SnapshotError as exc:
        raise SystemExit(f"cannot load snapshot {path}: {exc}")
    if not isinstance(obj, expect):
        raise SystemExit(
            f"snapshot {path} holds a {type(obj).__name__}; {what} needs a "
            f"{expect.__name__} (see `build --artifact`)"
        )
    if graph is not None:
        sg = obj.graph
        if sg.n != graph.n or sg.m != graph.m:
            raise SystemExit(
                f"snapshot graph (n={sg.n}, m={sg.m}) does not match "
                f"--family/--n (n={graph.n}, m={graph.m})"
            )
        a, b = sg.as_csr(), graph.as_csr()
        if not (
            (a.edge_u == b.edge_u).all()
            and (a.edge_v == b.edge_v).all()
            and (a.edge_weight == b.edge_weight).all()
        ):
            raise SystemExit(
                f"snapshot graph does not match --family/--n/--seed: same "
                f"sizes but different edges (the snapshot was built from a "
                f"different workload graph)"
            )
    return obj


def _parse_faults(spec: str) -> list[int]:
    if not spec:
        return []
    return [int(x) for x in spec.split(",") if x.strip() != ""]


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--connect wants HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """The ``query --connect`` path: ask a running ``serve`` instance."""
    from repro.server import QueryClient, ServerError

    host, port = _parse_hostport(args.connect)
    faults = _parse_faults(args.faults)
    try:
        with QueryClient(host, port, timeout=args.timeout) as client:
            stats = client.stats()
            kind = stats.get("kind", "?")
            if kind in ("router", "routing-facade"):
                result = client.route([(args.s, args.t)], faults)[0]
                state = "delivered" if result.delivered else "UNDELIVERED"
                print(f"route({args.s}, {args.t} | {len(faults)} faults) = "
                      f"{state} length={result.length:.1f} "
                      f"hops={result.telemetry.hops}")
                return 0 if result.delivered else 1
            if kind in ("distance", "distance-facade"):
                est = client.distance([(args.s, args.t)], faults)[0]
                print(f"distance({args.s}, {args.t} | {len(faults)} faults) "
                      f"= {est:.1f}")
                return 0
            connected = client.connected(args.s, args.t, faults)
            print(f"connected({args.s}, {args.t} | {len(faults)} faults) "
                  f"= {connected}")
            return 0
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot reach {host}:{port}: {exc}")
    except ServerError as exc:
        raise SystemExit(f"server refused the query: {exc}")


def _cmd_query(args: argparse.Namespace) -> int:
    if args.connect:
        return _cmd_query_remote(args)
    graph = _build_graph(args)
    faults = _parse_faults(args.faults)
    conn = FaultTolerantConnectivity(graph, f=max(args.f, len(faults)), seed=args.seed)
    dist = FaultTolerantDistance(
        graph, f=max(args.f, len(faults)), k=args.k, seed=args.seed
    )
    connected = conn.connected(args.s, args.t, faults)
    print(f"connected({args.s}, {args.t} | {len(faults)} faults) = {connected}")
    if connected:
        est = dist.estimate(args.s, args.t, faults)
        true = DistanceOracle(graph).distance(args.s, args.t, faults)
        print(f"distance estimate = {est:.1f} (exact {true:.1f}, "
              f"bound {dist.stretch_bound(len(faults)):.0f}x)")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    faults = _parse_faults(args.faults)
    router = FaultTolerantRouter(
        graph, f=max(args.f, len(faults)), k=args.k, seed=args.seed,
        table_mode=args.tables,
    )
    result = router.route(args.s, args.t, faults)
    true = DistanceOracle(graph).distance(args.s, args.t, faults)
    if not result.delivered:
        print(f"route {args.s} -> {args.t}: UNDELIVERED "
              f"(exact distance: {true})")
        return 1
    tel = result.telemetry
    print(f"route {args.s} -> {args.t}: delivered")
    print(f"  walked       : {result.length:.1f} (optimal {true:.1f})")
    print(f"  hops         : {tel.hops}")
    print(f"  reversals    : {tel.reversals}")
    print(f"  gamma queries: {tel.gamma_queries}")
    print(f"  decode calls : {tel.decode_calls}")
    print(f"  header bits  : {tel.max_header_bits}")
    return 0


def _cmd_route_bench(args: argparse.Namespace) -> int:
    """Packed vs seed routed-messages/sec on one message batch.

    Builds one router (both planes share the same labels, tables and
    sketch randomness), routes the identical batch through
    ``engine="reference"`` (scalar seed loop) and ``engine="packed"``
    (batched stepper + partition-cache retry decodes), verifies the
    route traces and telemetry agree bit for bit, and prints both
    throughputs.  ``benchmarks/bench_routing.py`` pins the same numbers
    as a committed, CI-gated baseline (BENCH_routing.json).
    """
    from repro.traffic import fault_set_pool, uniform_pairs

    graph = _build_graph(args)
    router = FaultTolerantRouter(
        graph, f=args.f, k=args.k, seed=args.seed, table_mode=args.tables
    )
    rnd = random.Random(args.seed + 1)
    pool = fault_set_pool(
        graph.m, args.fault_sets, min(args.fault_size, args.f), rnd
    )
    msgs = uniform_pairs(graph.n, args.messages, rnd)
    per = [pool[i % len(pool)] for i in range(len(msgs))]
    print(
        f"route-bench: family={args.family} n={graph.n} m={graph.m} "
        f"messages={len(msgs)} fault_sets={len(pool)} f={args.f}"
    )
    router.tables  # build the seed tables outside the timed region
    router.packed_engine()
    t0 = time.perf_counter()
    ref = router.route_many(msgs, per, engine="reference")
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    packed = router.route_many(msgs, per, engine="packed")
    packed_s = time.perf_counter() - t0
    for p, r in zip(packed, ref):
        if p.trace != r.trace or p.telemetry != r.telemetry:
            print("  ERROR: packed route traces diverge from the seed engine")
            return 1
    delivered = sum(r.delivered for r in ref)
    print(f"  delivered            : {delivered}/{len(msgs)}")
    print(f"  seed engine          : {len(msgs) / ref_s:10.0f} msg/s")
    print(
        f"  packed route_many    : {len(msgs) / packed_s:10.0f} msg/s  "
        f"({ref_s / packed_s:.1f}x, traces bit-identical)"
    )
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    """Churn traffic smoke scenario: fail/repair timeline -> route_many.

    Generates a fail/repair churn timeline within the fault budget,
    routes every epoch's message batch through the packed engine (the
    partition caches stay warm across epochs), and prints the
    aggregated array-telemetry report; ``--validate`` additionally
    checks every result against the exact connectivity oracle.
    """
    from repro.traffic import (
        TrafficSimulator,
        churn_timeline,
        hotspot_pairs,
        uniform_pairs,
    )

    graph = _build_graph(args)
    if args.snapshot:
        router = _load_snapshot_or_exit(
            args.snapshot, FaultTolerantRouter, "traffic --snapshot", graph=graph
        )
        graph = router.graph
        args.f = router.f  # the fault budget is the artifact's, not the flag's
        print(f"loaded router snapshot {args.snapshot} (f={router.f}, k={router.k})")
    else:
        router = FaultTolerantRouter(graph, f=args.f, k=args.k, seed=args.seed)
    rnd = random.Random(args.seed + 1)
    if args.hotspots > 0:
        def pair_gen(n, count, rng, _h=args.hotspots):
            return hotspot_pairs(n, count, rng, hotspots=_h)
    else:
        pair_gen = uniform_pairs
    epochs = churn_timeline(
        graph.n,
        graph.m,
        epochs=args.epochs,
        budget=args.f,
        rng=rnd,
        messages_per_epoch=args.messages_per_epoch,
        pair_gen=pair_gen,
    )
    fails = sum(1 for e in epochs for op, _ in e.events if op == "fail")
    repairs = sum(1 for e in epochs for op, _ in e.events if op == "repair")
    t0 = time.perf_counter()
    report = TrafficSimulator(router, validate=args.validate).run(epochs)
    elapsed = time.perf_counter() - t0
    summary = report.summary()
    print(
        f"traffic: family={args.family} n={graph.n} m={graph.m} "
        f"epochs={len(epochs)} (+{fails} fails / {repairs} repairs) "
        f"messages={summary['messages']}"
    )
    for key in (
        "delivery_rate", "mean_hops", "p95_hops", "reversals",
        "reversal_hops", "reversal_hop_share", "gamma_queries",
        "decode_calls",
    ):
        print(f"  {key:18s}: {summary[key]}")
    rate = summary["messages"] / elapsed if elapsed > 0 else float("inf")
    print(f"  routed               : {rate:.0f} msg/s"
          + ("  (oracle-validated)" if args.validate else ""))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Repeated-fault-set serving benchmark (the production workload).

    Builds one sketch-labeled graph, generates ``--fault-sets`` distinct
    fault sets and a ``--queries``-long round-robin (s, t, F) stream,
    then times three ways of answering it:

    * cold ``query_many`` (per-query Boruvka decodes, the PR-2 engine);
    * the partition cache fed through the request coalescer;
    * optionally (``--shards N``) the fork-based sharded service.

    Every path's verdicts are cross-checked before printing.
    """
    from repro.serving import PartitionCache, QueryCoalescer, ShardedQueryService

    graph = _build_graph(args)
    if args.snapshot:
        scheme = _load_snapshot_or_exit(
            args.snapshot, SketchConnectivityScheme, "serve-bench --snapshot",
            graph=graph,
        )
    else:
        scheme = SketchConnectivityScheme(graph, seed=args.seed)
    rnd = random.Random(args.seed + 1)
    size = min(args.fault_size, graph.m)
    fault_pool = [
        sorted(set(rnd.sample(range(graph.m), size)))
        for _ in range(max(1, args.fault_sets))
    ]
    stream = [
        (*rnd.sample(range(graph.n), 2), fault_pool[i % len(fault_pool)])
        for i in range(args.queries)
    ]
    pairs = [(s, t) for s, t, _ in stream]
    per = [list(F) for _, _, F in stream]
    print(
        f"serve-bench: family={args.family} n={graph.n} m={graph.m} "
        f"queries={len(stream)} fault_sets={len(fault_pool)} "
        f"|F|={size}"
    )

    t0 = time.perf_counter()
    cold = scheme.query_many(pairs, per, want_path=False)
    cold_s = time.perf_counter() - t0
    verdicts = [r.connected for r in cold]
    print(f"  cold query_many      : {len(stream) / cold_s:10.0f} q/s")

    if args.snapshot:
        # The acceptance bar for the build/serve split: answers off the
        # loaded snapshot equal in-process construction bit for bit
        # (succinct paths included, hence want_path=True here).  The
        # fresh scheme uses the *snapshot's* persisted seed, identifier
        # space and prefix layout — the graph guard above already pinned
        # the workload, and the label randomness (and hash family) belong
        # to the artifact, not the serve-side flags.
        fresh = SketchConnectivityScheme(
            graph,
            seed=scheme.seed,
            id_space=scheme._id_space,
            prefix_layout=scheme.prefix_layout,
        )
        if fresh.query_many(pairs, per) != scheme.query_many(pairs, per):
            print("  ERROR: snapshot answers diverge from in-process build")
            return 1
        print("  snapshot answers match in-process construction (bit-identical)")

    cache = PartitionCache(scheme, capacity=args.cache_capacity)
    coalescer = QueryCoalescer(
        lambda p, F: cache.query_many(p, F, want_path=False),
        max_chunk=args.chunk,
    )
    t0 = time.perf_counter()
    served = coalescer.run(stream)
    warm_s = time.perf_counter() - t0
    if [r.connected for r in served] != verdicts:
        print("  ERROR: cached verdicts diverge from cold decode")
        return 1
    stats = cache.stats
    print(
        f"  coalesced + cached   : {len(stream) / warm_s:10.0f} q/s  "
        f"({cold_s / warm_s:.1f}x, hit rate {stats.hit_rate:.0%}, "
        f"{coalescer.stats.chunks} chunks, "
        f"mean {coalescer.stats.mean_chunk:.0f}/chunk)"
    )

    if args.shards > 0:
        # With a snapshot the shards run spawn-mode: each worker opens
        # the file itself (shared page cache) instead of forking.
        with ShardedQueryService(
            scheme,
            num_shards=args.shards,
            cache_capacity=args.cache_capacity,
            max_chunk=args.chunk,
            mp_context="spawn" if args.snapshot else "fork",
            snapshot=args.snapshot or None,
        ) as svc:
            t0 = time.perf_counter()
            sharded = svc.query_many(pairs, per, want_path=False)
            shard_s = time.perf_counter() - t0
            if [r.connected for r in sharded] != verdicts:
                print("  ERROR: sharded verdicts diverge from cold decode")
                return 1
            snap = svc.stats().snapshot()
        print(
            f"  sharded x{args.shards} ({snap['mode']})    : "
            f"{len(stream) / shard_s:10.0f} q/s  "
            f"(per-shard {snap['per_shard']}, "
            f"hit rate {snap['cache']['hit_rate']:.0%})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve an artifact over TCP (the serve half of build/serve).

    ``--snapshot`` serves a ``build`` snapshot — with ``--shards N``
    the workers mmap the file themselves (spawn mode, one page cache
    for all of them); without a snapshot the artifact is constructed
    in process from the workload flags and served object-backed.
    SIGHUP or a client ``reload`` frame swaps generations with zero
    downtime.
    """
    from repro.server import run_server

    backend = None
    if not args.snapshot:
        graph = _build_graph(args)
        if args.artifact == "sketch":
            backend = SketchConnectivityScheme(graph, seed=args.seed)
        elif args.artifact == "router":
            backend = FaultTolerantRouter(
                graph, f=args.f, k=args.k, seed=args.seed,
                table_mode=args.tables,
            )
        elif args.artifact == "connectivity":
            backend = FaultTolerantConnectivity(graph, f=args.f, seed=args.seed)
        else:  # distance
            backend = FaultTolerantDistance(
                graph, f=args.f, k=args.k, seed=args.seed
            )
    run_server(
        backend,
        snapshot=args.snapshot or None,
        host=args.host,
        port=args.port,
        num_shards=args.shards,
        cache_capacity=args.cache_capacity,
        max_chunk=args.chunk,
        deadline_s=args.deadline,
        install_sighup=True,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """The ``stats`` command: the admin/observability plane over the wire.

    Sends one ``STATS`` frame to a running ``serve`` instance and
    renders the reply — the uniform registry dump (counters, gauges,
    log-bucketed histograms merged across the server and every shard
    worker), per-shard queue depth and cache hit rates, and the
    slow-query log.  ``--prometheus`` prints the text exposition a
    scraper would ingest; ``--json`` prints the raw payload.
    """
    from repro.server import QueryClient

    host, port = _parse_hostport(args.connect)
    try:
        with QueryClient(host, port, timeout=args.timeout) as client:
            stats = client.stats()
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot reach {host}:{port}: {exc}")

    if args.prometheus:
        sys.stdout.write(stats.prometheus())
        return 0
    if args.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0

    server = stats.get("server") or {}
    service = stats.get("service") or {}
    print(f"stats: {host}:{port} kind={stats.kind} "
          f"generation={stats.version} n={stats.get('n')} "
          f"m={stats.get('m')} "
          f"metrics={'on' if stats.get('metrics_enabled') else 'off'}")
    print(f"  server               : {server.get('queries', 0)} queries, "
          f"{server.get('frames', 0)} frames, "
          f"{server.get('connections_open', 0)} conns open, "
          f"{server.get('protocol_errors', 0)} protocol errors, "
          f"{server.get('reloads', 0)} reloads")
    if service:
        depths = ", ".join(str(d) for d in stats.queue_depth) or "-"
        print(f"  shards ({service.get('mode', '?')}): "
              f"queue depth [{depths}], "
              f"{service.get('pool_restarts', 0)} pool restarts, "
              f"cache hit rate {stats.cache_hit_rate:.0%}")
        for i, cache in enumerate(service.get("per_shard_cache") or []):
            print(f"    shard {i:<2d}           : "
                  f"{cache['entries']} cached partitions, "
                  f"hit rate {cache['hit_rate']:.0%} "
                  f"({cache['hits']} hits / {cache['misses']} misses)")
    if stats.counters:
        print("  counters:")
        for name, value in sorted(stats.counters.items()):
            print(f"    {name:34s} {value}")
    if stats.gauges:
        print("  gauges:")
        for name, value in sorted(stats.gauges.items()):
            print(f"    {name:34s} {value:g}")
    if stats.histograms:
        print("  histograms (p50/p99/p99.9/max):")
        for name, data in sorted(stats.histograms.items()):
            print(f"    {name:34s} n={data['count']:<8d} "
                  f"{data['p50']:g} / {data['p99']:g} / "
                  f"{data['p99_9']:g} / {data['max']:g}")
    slow = stats.slow_queries
    if slow:
        print(f"  slow queries ({len(slow)} recorded, threshold "
              f"{(stats.get('slow_queries') or {}).get('threshold_s', 0)}s):")
        for entry in slow[-args.slow:]:
            spans = " ".join(
                f"{s['name']}={s['dur_s'] * 1e3:.1f}ms"
                for s in entry.get("spans", [])
            )
            print(f"    {entry['trace_id']} total="
                  f"{entry['total_s'] * 1e3:.1f}ms  {spans}")
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    from repro.routing.lower_bound import (
        sequential_strategy_expected_stretch,
        simulate_sequential_strategy,
    )

    print("f  analytic  simulated")
    for f in range(1, args.f + 1):
        analytic = sequential_strategy_expected_stretch(f)
        simulated = simulate_sequential_strategy(f, 10, 1500, seed=args.seed)
        print(f"{f}  {analytic:.2f}      {simulated:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant labeling and compact routing schemes "
        "(Dory & Parter, PODC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="random",
                       choices=["random", "grid", "torus", "ring_of_cliques", "weighted"])
        p.add_argument("--n", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--f", type=int, default=2, help="fault bound")
        p.add_argument("--k", type=int, default=2, help="stretch parameter")
        p.add_argument("--id-space", type=int, default=0,
                       help="identifier space for the sketch hash keys "
                            "(0 = the graph's own n; past 46341 ids the "
                            "schemes switch to the 2^61 - 1 hash family)")

    p_info = sub.add_parser("info", help="scheme size report")
    common(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_build = sub.add_parser(
        "build",
        help="construct an artifact once and save it as a snapshot file",
    )
    common(p_build)
    p_build.add_argument("--artifact", default="sketch",
                         choices=["sketch", "router", "connectivity", "distance"],
                         help="what to construct and persist")
    p_build.add_argument("--out", required=True,
                         help="snapshot file to write")
    p_build.add_argument("--tables", default="balanced",
                         choices=["simple", "balanced"],
                         help="router table layout (artifact=router)")
    p_build.add_argument("--workers", type=int, default=1,
                         help="build worker processes (sketch/router "
                              "artifacts); every value produces "
                              "bit-identical snapshots, 1 = serial")
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="one connectivity/distance query")
    common(p_query)
    p_query.add_argument("--s", type=int, required=True)
    p_query.add_argument("--t", type=int, required=True)
    p_query.add_argument("--faults", default="", help="comma-separated edge indices")
    p_query.add_argument("--connect", default="",
                         help="HOST:PORT of a running `serve` instance — "
                              "query over the wire instead of building "
                              "schemes in process")
    p_query.add_argument("--timeout", type=float, default=30.0,
                         help="socket timeout for --connect (seconds)")
    p_query.set_defaults(func=_cmd_query)

    p_route = sub.add_parser("route", help="route a message under faults")
    common(p_route)
    p_route.add_argument("--s", type=int, required=True)
    p_route.add_argument("--t", type=int, required=True)
    p_route.add_argument("--faults", default="")
    p_route.add_argument("--tables", default="balanced", choices=["simple", "balanced"])
    p_route.set_defaults(func=_cmd_route)

    p_rbench = sub.add_parser(
        "route-bench",
        help="packed vs seed routed-messages/sec (traces verified)",
    )
    common(p_rbench)
    p_rbench.add_argument("--messages", type=int, default=256,
                          help="batch size to route")
    p_rbench.add_argument("--fault-sets", type=int, default=8,
                          help="distinct hidden fault sets")
    p_rbench.add_argument("--fault-size", type=int, default=2,
                          help="edges per fault set (capped by --f)")
    p_rbench.add_argument("--tables", default="balanced",
                          choices=["simple", "balanced"])
    p_rbench.set_defaults(func=_cmd_route_bench)

    p_traffic = sub.add_parser(
        "traffic",
        help="fail/repair churn traffic simulation through route_many",
    )
    common(p_traffic)
    p_traffic.add_argument("--epochs", type=int, default=16,
                           help="churn timeline length")
    p_traffic.add_argument("--messages-per-epoch", type=int, default=32)
    p_traffic.add_argument("--hotspots", type=int, default=0,
                           help="skew destinations onto N hot vertices")
    p_traffic.add_argument("--validate", action="store_true",
                           help="check every result against the oracle")
    p_traffic.add_argument("--snapshot", default="",
                           help="load the router from a `build "
                                "--artifact router` snapshot")
    p_traffic.set_defaults(func=_cmd_traffic)

    p_serve = sub.add_parser(
        "serve-bench",
        help="repeated-fault-set serving throughput (cache/coalescer/shards)",
    )
    common(p_serve)
    p_serve.add_argument("--queries", type=int, default=2000,
                         help="length of the (s, t, F) stream")
    p_serve.add_argument("--fault-sets", type=int, default=16,
                         help="distinct fault sets in the stream")
    p_serve.add_argument("--fault-size", type=int, default=4,
                         help="edges per fault set")
    p_serve.add_argument("--chunk", type=int, default=64,
                         help="coalescer chunk size bound")
    p_serve.add_argument("--cache-capacity", type=int, default=128,
                         help="partition-cache LRU capacity")
    p_serve.add_argument("--shards", type=int, default=0,
                         help="also time a sharded service with N workers")
    p_serve.add_argument("--snapshot", default="",
                         help="serve off a `build --artifact sketch` "
                              "snapshot (answers cross-checked against "
                              "in-process construction; shards run "
                              "spawn-mode off the file)")
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_srv = sub.add_parser(
        "serve",
        help="serve an artifact over TCP (shard workers mmap one snapshot)",
    )
    common(p_srv)
    p_srv.add_argument("--snapshot", default="",
                       help="serve a `build` snapshot file (shard workers "
                            "mmap it; omitting builds in process from the "
                            "workload flags)")
    p_srv.add_argument("--artifact", default="sketch",
                       choices=["sketch", "router", "connectivity", "distance"],
                       help="what to construct when no --snapshot is given")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed at startup)")
    p_srv.add_argument("--shards", type=int, default=0,
                       help="shard worker processes (0 = serve in process)")
    p_srv.add_argument("--chunk", type=int, default=512,
                       help="coalescer chunk size bound")
    p_srv.add_argument("--cache-capacity", type=int, default=128,
                       help="partition-cache LRU capacity per shard")
    p_srv.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline (seconds)")
    p_srv.add_argument("--tables", default="balanced",
                       choices=["simple", "balanced"],
                       help="router table layout (artifact=router)")
    p_srv.set_defaults(func=_cmd_serve)

    p_stats = sub.add_parser(
        "stats",
        help="dump a running serve instance's metrics registry",
    )
    p_stats.add_argument("--connect", required=True,
                         help="HOST:PORT of the running `serve` instance")
    p_stats.add_argument("--prometheus", action="store_true",
                         help="print Prometheus text exposition instead of "
                              "the human-readable report")
    p_stats.add_argument("--json", action="store_true",
                         help="print the raw STATS_REPLY payload as JSON")
    p_stats.add_argument("--slow", type=int, default=8,
                         help="slow-query log entries to show (newest)")
    p_stats.add_argument("--timeout", type=float, default=10.0,
                         help="socket timeout (seconds)")
    p_stats.set_defaults(func=_cmd_stats)

    p_lb = sub.add_parser("lower-bound", help="Theorem 1.6 series")
    p_lb.add_argument("--f", type=int, default=4)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.set_defaults(func=_cmd_lower_bound)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
