"""The paper's core contributions.

* :mod:`repro.core.cycle_space_scheme` — FT connectivity labels via
  cycle space sampling (Section 3.1, Theorem 3.6).
* :mod:`repro.core.sketch_scheme` — FT connectivity labels via graph
  sketches (Section 3.2, Theorem 3.7), with succinct path output
  (Lemma 3.17).
* :mod:`repro.core.component_tree` — component-tree identification from
  ancestry labels (Claim 3.14).
* :mod:`repro.core.distance_labels` — FT approximate distance labels
  (Section 4, Theorem 1.4).
* :mod:`repro.core.api` — the user-facing facade.
"""

from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import ConnectivityPartition, SketchConnectivityScheme
from repro.core.forest_scheme import ForestConnectivityScheme
from repro.core.component_tree import ComponentForest
from repro.core.path_description import PathSegment, SuccinctPath
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.api import (
    FaultTolerantConnectivity,
    FaultTolerantDistance,
)

__all__ = [
    "CycleSpaceConnectivityScheme",
    "SketchConnectivityScheme",
    "ConnectivityPartition",
    "ForestConnectivityScheme",
    "ComponentForest",
    "PathSegment",
    "SuccinctPath",
    "DistanceLabelScheme",
    "FaultTolerantConnectivity",
    "FaultTolerantDistance",
]
