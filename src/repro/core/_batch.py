"""Shared plumbing for the batched ``query_many`` APIs.

Every scheme-level ``query_many(pairs, faults)`` accepts the fault
argument in two shapes: one iterable of edge indices shared by all
query pairs, or a sequence of per-pair iterables.  The normalization is
scheme-independent and lives here so the facades, oracles and scenario
runner all agree on the convention.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def normalize_faults(pairs: Sequence, faults) -> list[list[int]]:
    """Per-pair fault lists for ``query_many(pairs, faults)``.

    ``faults`` is either a flat iterable of edge indices (shared by all
    pairs) or a sequence of per-pair iterables whose length matches
    ``pairs``.  The two cases are told apart by the first element's
    type; an empty argument means no faults anywhere.
    """
    flist = list(faults)
    if flist and isinstance(flist[0], (int, np.integer)):
        shared = [int(ei) for ei in flist]
        return [shared] * len(pairs)
    if not flist:
        return [[]] * len(pairs)
    if len(flist) != len(pairs):
        raise ValueError(
            f"got {len(flist)} fault sets for {len(pairs)} query pairs"
        )
    return [[int(ei) for ei in F] for F in flist]
