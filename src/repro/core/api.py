"""High-level facade over the labeling schemes.

Most users want four operations — "label my graph", "are s and t still
connected under these faults?", "how far apart are they?", "deliver a
message around faults" — without choosing between the Section 3
constructions or the execution engines.  The facades here pick sensible
defaults and expose the full pipeline (labels in, answers out);
:class:`FaultTolerantRouting` fronts the Section 5 routing plane (the
heavy machinery lives in :mod:`repro.routing`, which depends on the
network simulator).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.core._batch import normalize_faults
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph.graph import Graph


class _SnapshotMixin:
    """``save()``/``load()`` on every facade (the build/serve split).

    ``save(path)`` persists the facade — packed label stores, scheme
    parameters, seeds — as one :mod:`repro.store` snapshot file;
    ``Facade.load(path)`` restores it with the big arrays memory-mapped
    read-only, answering every query bit-identically to the saved
    instance.  ``load`` type-checks the artifact, so a distance
    snapshot cannot silently serve as a connectivity facade.
    """

    def save(self, path) -> "str":
        """Persist this facade to ``path`` (a repro.store snapshot)."""
        from repro.store import save_snapshot

        return str(save_snapshot(path, self))

    @classmethod
    def load(cls, path, mmap: bool = True):
        """Restore a facade saved with :meth:`save` (mmap-backed)."""
        from repro.store import SnapshotError, load_snapshot

        obj = load_snapshot(path, mmap=mmap)
        if not isinstance(obj, cls):
            raise SnapshotError(
                f"{path} holds a {type(obj).__name__}, not a {cls.__name__}"
            )
        return obj


class ConnectivityPartitionView:
    """Boolean view over a scheme-level fault-set partition.

    Output of :meth:`FaultTolerantConnectivity.decode_partition`: the
    facade's answer type is ``bool``, so this wraps the underlying
    scheme partition (:class:`~repro.core.sketch_scheme.FaultSetPartition`
    or :class:`~repro.core.cycle_space_scheme.PreparedFaultSet`) and
    exposes only connectivity verdicts.  Answers equal
    :meth:`FaultTolerantConnectivity.query_many` on the same fault set.
    """

    __slots__ = ("impl",)

    def __init__(self, impl):
        self.impl = impl

    @property
    def faults(self) -> tuple:
        return self.impl.faults

    def connected(self, s: int, t: int) -> bool:
        """Is ``s`` connected to ``t`` under this partition's faults?"""
        return self.impl.connected(s, t)

    answer = connected

    def answer_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched :meth:`connected` (the facade's ``query_many`` shape)."""
        impl = self.impl
        return [impl.connected(s, t) for s, t in pairs]


class FaultTolerantConnectivity(_SnapshotMixin):
    """f-FT connectivity labels for a graph (Theorem 1.3).

    ``scheme`` selects the construction:

    * ``"cycle_space"`` — O(f + log n)-bit labels (Section 3.1), the
      right choice for small fault bounds;
    * ``"sketch"`` — O(log^3 n)-bit labels independent of f
      (Section 3.2), also able to report a succinct s-t path;
    * ``"auto"`` — cycle-space while ``f <= log^2 n`` (where its labels
      are smaller), sketches beyond, mirroring the
      ``O(min{f + log n, log^3 n})`` statement of Theorem 1.3.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        scheme: str = "auto",
        seed: int = 0,
        units: Optional[int] = None,
    ):
        if scheme == "auto":
            log_n = max(1, math.ceil(math.log2(max(graph.n, 2))))
            scheme = "cycle_space" if f <= log_n * log_n else "sketch"
        self.scheme_name = scheme
        self.graph = graph
        self.f = f
        if scheme == "cycle_space":
            self._impl = CycleSpaceConnectivityScheme(graph, f, seed=seed)
        elif scheme == "sketch":
            self._impl = SketchConnectivityScheme(graph, seed=seed, units=units)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")

    @property
    def impl(self):
        """The underlying scheme object (for scheme-specific features)."""
        return self._impl

    def vertex_label(self, v: int):
        """The wire-format label assigned to vertex ``v`` (Eq. 3 for the
        sketch scheme; component + ancestry for cycle-space)."""
        return self._impl.vertex_label(v)

    def edge_label(self, edge_index: int):
        """The wire-format label of edge ``edge_index`` (EID + subtree
        sketches for sketch tree edges; ``(phi, ancestry, tree-bit)``
        for cycle-space, Theorem 3.6)."""
        return self._impl.edge_label(edge_index)

    def connected(self, s: int, t: int, faults: Iterable[int]) -> bool:
        """Is ``s`` connected to ``t`` in ``G \\ faults``? (w.h.p.)

        ``faults`` is an iterable of edge indices; answers come from the
        labels alone (Theorem 1.3), served through the batched decoder
        with batch size 1.  Raises ``ValueError`` on the cycle-space
        scheme when ``len(faults)`` exceeds the fault budget ``f``.
        """
        return self.query_many([(s, t)], list(faults))[0]

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[bool]:
        """Batched :meth:`connected` over many (s, t) pairs.

        ``faults`` is one shared iterable of edge indices, or a per-pair
        sequence of fault iterables.  Runs through the underlying
        scheme's packed-store batch decoder (``query_many``); answers
        equal looping :meth:`connected`.
        """
        if self.scheme_name == "cycle_space":
            # Normalize once for the per-pair budget check; the scheme's
            # own normalization of the same list is a no-op-shaped copy.
            # The budget counts *distinct* faults, matching
            # :meth:`decode_partition` (duplicates are not new faults).
            per = normalize_faults(pairs, faults)
            for F in per:
                if len(set(F)) > self.f:
                    raise ValueError(
                        f"fault set of size {len(set(F))} exceeds the "
                        f"bound f={self.f}"
                    )
            return self._impl.query_many(pairs, per)
        # Sketch path: hand the caller's faults straight through — the
        # scheme normalizes exactly once (shared sets stay aliased).
        return [
            r.connected
            for r in self._impl.query_many(pairs, faults, want_path=False)
        ]

    def decode_partition(self, faults: Iterable[int]) -> ConnectivityPartitionView:
        """Decode the fault set once; answer every (s, t) pair from it.

        Returns a :class:`ConnectivityPartitionView` whose
        ``connected(s, t)`` verdicts equal :meth:`query_many` under the
        same ``faults`` — the partition (sketch: the Claim 3.16 Boruvka
        component structure; cycle-space: the prepared Lemma 3.5
        columns) is a pure function of the fault set, which is what the
        serving layer's partition cache (:mod:`repro.serving`) exploits.
        The fault-budget check applies to the deduplicated set.
        """
        F = [int(ei) for ei in faults]
        if self.scheme_name == "cycle_space" and len(set(F)) > self.f:
            raise ValueError(
                f"fault set of size {len(set(F))} exceeds the bound "
                f"f={self.f}"
            )
        return ConnectivityPartitionView(self._impl.decode_partition(F))

    def max_vertex_label_bits(self) -> int:
        """Length of the longest vertex label, in bits (Theorem 1.3)."""
        return self._impl.max_vertex_label_bits()

    def max_edge_label_bits(self) -> int:
        """Length of the longest edge label, in bits (Theorem 1.3)."""
        return self._impl.max_edge_label_bits()


class FaultTolerantDistance(_SnapshotMixin):
    """f-FT approximate distance labels (Theorem 1.4).

    ``estimate(s, t, F)`` returns a value within
    ``[dist, (8k-2)(|F|+1) dist]`` of the true ``G \\ F`` distance,
    w.h.p.; ``math.inf`` indicates disconnection.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int,
        seed: int = 0,
        base_scheme: str = "cycle_space",
        units: Optional[int] = None,
    ):
        self.graph = graph
        self.f = f
        self.k = k
        self._impl = DistanceLabelScheme(
            graph, f, k, seed=seed, base_scheme=base_scheme, units=units
        )

    @property
    def impl(self) -> DistanceLabelScheme:
        """The underlying :class:`DistanceLabelScheme`."""
        return self._impl

    def vertex_label(self, v: int):
        """The distance label of ``v``: one connectivity label per
        covering cluster plus the per-scale home indices ``i*(v)``
        (Section 4)."""
        return self._impl.vertex_label(v)

    def edge_label(self, edge_index: int):
        """The distance label of an edge: connectivity labels of every
        cluster instance containing it."""
        return self._impl.edge_label(edge_index)

    def estimate(self, s: int, t: int, faults: Iterable[int]) -> float:
        """Approximate ``dist(s, t; G \\ faults)`` from labels only.

        Returns the first connected scale's ``(4k+3)(|F|+1) 2^i``
        estimate (Section 4 decoding; within :meth:`stretch_bound` of
        the true distance w.h.p.), or ``math.inf`` when every scale
        reports disconnection.
        """
        return self._impl.query(s, t, faults)

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[float]:
        """Batched :meth:`estimate` over many (s, t) pairs.

        ``faults`` is one shared iterable of edge indices, or a per-pair
        sequence of fault iterables; answers equal looping
        :meth:`estimate`, served through the batched scale scan of
        :meth:`DistanceLabelScheme.query_many`.
        """
        return self._impl.query_many(pairs, faults)

    def decode_partition(self, faults: Iterable[int]):
        """Decode the fault set once; estimate every (s, t) pair from it.

        Returns a :class:`~repro.core.distance_labels.DistancePartition`
        whose ``answer(s, t)`` estimates equal :meth:`query_many` under
        the same ``faults`` (per-instance connectivity partitions are
        built lazily and reused across the query stream).
        """
        return self._impl.decode_partition([int(ei) for ei in faults])

    def stretch_bound(self, num_faults: int) -> float:
        """The worst-case estimate/distance ratio for ``num_faults``
        faults: ``(8k+6)(|F|+1)`` with this construction's cover
        constant (paper: ``(8k-2)(|F|+1)``, Theorem 1.4)."""
        return self._impl.stretch_bound(num_faults)

    def max_vertex_label_bits(self) -> int:
        """Length of the longest vertex label, in bits (Theorem 1.4)."""
        return self._impl.max_vertex_label_bits()


class FaultTolerantRouting(_SnapshotMixin):
    """f-FT compact routing (Theorems 5.5 / 5.8).

    Builds the routing-augmented label stack once and routes any
    message stream under any hidden fault set.  ``table_mode`` selects
    the Theorem 5.5 (``"simple"``) or Theorem 5.8 (``"balanced"``,
    default) table layout; ``engine`` the packed batched plane
    (default) or the retained seed scalar engine — bit-identical route
    traces either way.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int = 2,
        seed: int = 0,
        table_mode: str = "balanced",
        engine: str = "packed",
    ):
        from repro.routing.fault_tolerant import FaultTolerantRouter

        self.graph = graph
        self.f = f
        self.k = k
        self._impl = FaultTolerantRouter(
            graph, f=f, k=k, seed=seed, table_mode=table_mode, engine=engine
        )

    @property
    def impl(self):
        """The underlying :class:`~repro.routing.fault_tolerant.FaultTolerantRouter`."""
        return self._impl

    def route(self, s: int, t: int, faults: Iterable[int] = ()):
        """Deliver one message from ``s`` to ``t`` under hidden faults.

        Returns a :class:`~repro.routing.network.RouteResult` with the
        delivery status, the full hop trace and the telemetry meters.
        """
        return self._impl.route(s, t, list(faults))

    def route_many(self, requests: Sequence[tuple[int, int]], faults=()):
        """Batched :meth:`route`: all messages advance together through
        the packed multi-message stepper (``faults`` is one shared
        iterable of edge indices or a per-message sequence)."""
        return self._impl.route_many(requests, faults)

    def stretch_bound(self, num_faults: int) -> float:
        """The Theorem 5.5/5.8 route-length guarantee for ``num_faults``
        faults, with this construction's cover constant."""
        return self._impl.stretch_bound(num_faults)

    def max_table_bits(self) -> int:
        """Largest per-vertex routing table, in bits (Eq. 9)."""
        return self._impl.max_table_bits()

    def max_label_bits(self) -> int:
        """Largest routing label ``L_route(v)``, in bits (Eq. 8)."""
        return self._impl.max_label_bits()
