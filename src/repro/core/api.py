"""High-level facade over the labeling schemes.

Most users want three operations — "label my graph", "are s and t still
connected under these faults?", "how far apart are they?" — without
choosing between the two Section 3 constructions.  The facades here pick
sensible defaults and expose the full pipeline (labels in, answers out).
The routing facade lives in :mod:`repro.routing.fault_tolerant` (it
depends on the network simulator).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.core._batch import normalize_faults
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph.graph import Graph


class FaultTolerantConnectivity:
    """f-FT connectivity labels for a graph (Theorem 1.3).

    ``scheme`` selects the construction:

    * ``"cycle_space"`` — O(f + log n)-bit labels (Section 3.1), the
      right choice for small fault bounds;
    * ``"sketch"`` — O(log^3 n)-bit labels independent of f
      (Section 3.2), also able to report a succinct s-t path;
    * ``"auto"`` — cycle-space while ``f <= log^2 n`` (where its labels
      are smaller), sketches beyond, mirroring the
      ``O(min{f + log n, log^3 n})`` statement of Theorem 1.3.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        scheme: str = "auto",
        seed: int = 0,
        units: Optional[int] = None,
    ):
        if scheme == "auto":
            log_n = max(1, math.ceil(math.log2(max(graph.n, 2))))
            scheme = "cycle_space" if f <= log_n * log_n else "sketch"
        self.scheme_name = scheme
        self.graph = graph
        self.f = f
        if scheme == "cycle_space":
            self._impl = CycleSpaceConnectivityScheme(graph, f, seed=seed)
        elif scheme == "sketch":
            self._impl = SketchConnectivityScheme(graph, seed=seed, units=units)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")

    @property
    def impl(self):
        """The underlying scheme object (for scheme-specific features)."""
        return self._impl

    def vertex_label(self, v: int):
        return self._impl.vertex_label(v)

    def edge_label(self, edge_index: int):
        return self._impl.edge_label(edge_index)

    def connected(self, s: int, t: int, faults: Iterable[int]) -> bool:
        """Is ``s`` connected to ``t`` in ``G \\ faults``? (w.h.p.)"""
        return self.query_many([(s, t)], list(faults))[0]

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[bool]:
        """Batched :meth:`connected` over many (s, t) pairs.

        ``faults`` is one shared iterable of edge indices, or a per-pair
        sequence of fault iterables.  Runs through the underlying
        scheme's packed-store batch decoder (``query_many``); answers
        equal looping :meth:`connected`.
        """
        if self.scheme_name == "cycle_space":
            # Normalize once for the per-pair budget check; the scheme's
            # own normalization of the same list is a no-op-shaped copy.
            per = normalize_faults(pairs, faults)
            for F in per:
                if len(F) > self.f:
                    raise ValueError(
                        f"fault set of size {len(F)} exceeds the bound "
                        f"f={self.f}"
                    )
            return self._impl.query_many(pairs, per)
        # Sketch path: hand the caller's faults straight through — the
        # scheme normalizes exactly once (shared sets stay aliased).
        return [
            r.connected
            for r in self._impl.query_many(pairs, faults, want_path=False)
        ]

    def max_vertex_label_bits(self) -> int:
        return self._impl.max_vertex_label_bits()

    def max_edge_label_bits(self) -> int:
        return self._impl.max_edge_label_bits()


class FaultTolerantDistance:
    """f-FT approximate distance labels (Theorem 1.4).

    ``estimate(s, t, F)`` returns a value within
    ``[dist, (8k-2)(|F|+1) dist]`` of the true ``G \\ F`` distance,
    w.h.p.; ``math.inf`` indicates disconnection.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int,
        seed: int = 0,
        base_scheme: str = "cycle_space",
        units: Optional[int] = None,
    ):
        self.graph = graph
        self.f = f
        self.k = k
        self._impl = DistanceLabelScheme(
            graph, f, k, seed=seed, base_scheme=base_scheme, units=units
        )

    @property
    def impl(self) -> DistanceLabelScheme:
        return self._impl

    def vertex_label(self, v: int):
        return self._impl.vertex_label(v)

    def edge_label(self, edge_index: int):
        return self._impl.edge_label(edge_index)

    def estimate(self, s: int, t: int, faults: Iterable[int]) -> float:
        return self._impl.query(s, t, faults)

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[float]:
        """Batched :meth:`estimate` over many (s, t) pairs.

        ``faults`` is one shared iterable of edge indices, or a per-pair
        sequence of fault iterables; answers equal looping
        :meth:`estimate`, served through the batched scale scan of
        :meth:`DistanceLabelScheme.query_many`.
        """
        return self._impl.query_many(pairs, faults)

    def stretch_bound(self, num_faults: int) -> float:
        return self._impl.stretch_bound(num_faults)

    def max_vertex_label_bits(self) -> int:
        return self._impl.max_vertex_label_bits()
