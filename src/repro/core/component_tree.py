"""Component-tree identification from ancestry labels (Claim 3.14, Figure 2).

Removing the faulty tree edges ``F_T`` splits the spanning tree into
``|F_T| + 1`` components.  Each component is represented by its highest
vertex: the root ``r`` for the top component, and the child endpoint of
a failed tree edge for every other component.  Claim 3.14 shows the
whole component tree — and the component of any labeled vertex — can be
recovered from the DFS-interval ancestry labels alone:

* sort the ``2(|F_T| + 1)`` interval endpoints and scan once to find
  each representative's parent component (O(f log f));
* locate the component of a vertex by binary searching its ``tin``
  (O(log f)).

A brute-force O(f^2) construction is included for cross-checking.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.graph.ancestry import AncLabel, is_ancestor

_ROOT_INTERVAL: AncLabel = (0, 1 << 60)


def orient_tree_edge(anc_a: AncLabel, anc_b: AncLabel) -> tuple[AncLabel, AncLabel]:
    """Return (child, parent) ancestry labels of a tree edge's endpoints.

    A tree edge always joins a vertex to its parent, so exactly one
    interval contains the other.
    """
    if is_ancestor(anc_a, anc_b):
        return anc_b, anc_a
    if is_ancestor(anc_b, anc_a):
        return anc_a, anc_b
    raise ValueError("labels are not parent/child intervals of a tree edge")


@dataclass(frozen=True)
class Component:
    """One component of T \\ F_T: its representative (highest vertex)
    interval, its parent component index (-1 for the root component), and
    an arbitrary caller reference (the failed edge that roots it)."""

    rep: AncLabel
    parent: int
    ref: Optional[object] = None


class ComponentForest:
    """The component tree of ``T \\ F_T`` plus O(log f) vertex location."""

    def __init__(self, components: list[Component], sorted_tuples: list[tuple[int, int, int]]):
        self.components = components
        self._tuples = sorted_tuples
        self._values = [t[0] for t in sorted_tuples]

    # ------------------------------------------------------------------
    # Construction (Claim 3.14)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, failed_children: Sequence[AncLabel], refs: Optional[Sequence[object]] = None
    ) -> "ComponentForest":
        """Build from the child-endpoint ancestry labels of F_T.

        Component 0 is always the root component (virtual representative
        interval covering all DFS times).  ``refs[i]`` is attached to the
        component rooted at ``failed_children[i]``.
        """
        if refs is None:
            refs = [None] * len(failed_children)
        reps: list[AncLabel] = [_ROOT_INTERVAL] + list(failed_children)
        comp_refs: list[Optional[object]] = [None] + list(refs)
        tuples: list[tuple[int, int, int]] = []
        for i, (tin, tout) in enumerate(reps):
            tuples.append((tin, i, 1))
            tuples.append((tout, i, 2))
        tuples.sort()
        parent = [-1] * len(reps)
        for pos, (_, i, b) in enumerate(tuples):
            if b != 1 or i == 0:
                continue
            _, u, prev_b = tuples[pos - 1]
            parent[i] = u if prev_b == 1 else parent[u]
        components = [
            Component(rep=reps[i], parent=parent[i], ref=comp_refs[i])
            for i in range(len(reps))
        ]
        return cls(components, tuples)

    @classmethod
    def build_bruteforce(
        cls, failed_children: Sequence[AncLabel], refs: Optional[Sequence[object]] = None
    ) -> "ComponentForest":
        """O(f^2) reference construction: each representative's parent is
        the component of its nearest proper ancestor representative."""
        if refs is None:
            refs = [None] * len(failed_children)
        reps: list[AncLabel] = [_ROOT_INTERVAL] + list(failed_children)
        parent = [-1] * len(reps)
        for i in range(1, len(reps)):
            best = 0
            for j in range(len(reps)):
                if i == j:
                    continue
                if is_ancestor(reps[j], reps[i]) and reps[j] != reps[i]:
                    if is_ancestor(reps[best], reps[j]):
                        best = j
            parent[i] = best
        comp_refs: list[Optional[object]] = [None] + list(refs)
        components = [
            Component(rep=reps[i], parent=parent[i], ref=comp_refs[i])
            for i in range(len(reps))
        ]
        tuples: list[tuple[int, int, int]] = []
        for i, (tin, tout) in enumerate(reps):
            tuples.append((tin, i, 1))
            tuples.append((tout, i, 2))
        tuples.sort()
        return cls(components, tuples)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.components)

    def locate(self, anc: AncLabel) -> int:
        """Component index of the vertex labeled ``anc`` (O(log f))."""
        pos = bisect.bisect_right(self._values, anc[0]) - 1
        if pos < 0:
            return 0
        _, u, b = self._tuples[pos]
        if b == 1:
            return u
        return self.components[u].parent

    def locate_linear(self, anc: AncLabel) -> int:
        """O(f) reference location: deepest representative ancestor."""
        best = 0
        for i, comp in enumerate(self.components):
            if is_ancestor(comp.rep, anc):
                if is_ancestor(self.components[best].rep, comp.rep):
                    best = i
        return best

    def children_of(self, comp_index: int) -> list[int]:
        return [
            i for i, c in enumerate(self.components) if c.parent == comp_index
        ]

    def edges(self) -> list[tuple[int, int]]:
        """Component-tree edges as (child component, parent component)."""
        return [
            (i, c.parent) for i, c in enumerate(self.components) if c.parent >= 0
        ]
