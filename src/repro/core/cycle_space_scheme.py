"""FT connectivity labels via cycle space sampling (Section 3.1).

The scheme (Theorem 3.6):

* every edge label carries ``(phi(e), ANC(u), ANC(v), tree-bit)`` —
  ``O(f + log n)`` bits with ``b = f + c log n`` cycle-space bits;
* every vertex label carries its ancestry label — ``O(log n)`` bits;
* the decoder determines whether ``s`` and ``t`` are disconnected by a
  fault set F by testing solvability of two GF(2) systems built from the
  augmented labels ``phi'(e)`` (Lemma 3.5), in time
  ``O((f + log n) f^2)``.

For disconnected inputs every label additionally records the connected
component id, and the scheme is applied per component (Section 3
preamble).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro._util import derive_seed
from repro.core._batch import normalize_faults
from repro.cycle_space.labels import CycleSpaceLabels
from repro.graph.ancestry import (
    AncestryLabeling,
    AncLabel,
    edge_on_root_path,
    stitched_intervals,
)
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.linalg.gf2 import gf2_solve
from repro.sizing.bits import bits_for_count


@dataclass(frozen=True)
class CSVertexLabel:
    """Vertex label: component id + ancestry label (O(log n) bits)."""

    component: int
    anc: AncLabel
    n: int

    def bit_length(self) -> int:
        return bits_for_count(self.component) + AncestryLabeling.bit_length(self.n)


@dataclass(frozen=True)
class CSEdgeLabel:
    """Edge label: ``(phi(e), ANC(u), ANC(v), tree-bit)`` plus component id.

    O(f + log n) bits: ``b = f + c log n`` bits of phi and two ancestry
    labels.
    """

    component: int
    phi: int
    b: int
    anc_u: AncLabel
    anc_v: AncLabel
    is_tree: bool
    n: int

    def bit_length(self) -> int:
        return (
            bits_for_count(self.component)
            + self.b
            + 2 * AncestryLabeling.bit_length(self.n)
            + 1
        )

    def identity(self) -> tuple[AncLabel, AncLabel]:
        """A decoder-visible identity used to deduplicate fault lists."""
        return (self.anc_u, self.anc_v) if self.anc_u <= self.anc_v else (
            self.anc_v,
            self.anc_u,
        )


@dataclass(frozen=True)
class CSDecodeResult:
    """Decoder output: verdict plus, when disconnected, the witnessing cut.

    ``cut_member_positions`` indexes into the (deduplicated) fault-label
    list handed to the decoder; the selected edges form an induced edge
    cut F' separating s from t (Corollary 3.4).
    """

    connected: bool
    cut_member_positions: Optional[tuple[int, ...]] = None


def side_of_vertex(anc_x: AncLabel, cut_tree_edges: Sequence[tuple[AncLabel, AncLabel]]) -> int:
    """Claim 3.3 side classification (Figure 1).

    Given the ancestry labels of the tree edges of an induced edge cut
    F', the side of vertex x is the parity of ``n_x(F')`` — the number
    of cut edges on the root-to-x tree path.
    """
    parity = 0
    for anc_u, anc_v in cut_tree_edges:
        if edge_on_root_path(anc_u, anc_v, anc_x):
            parity ^= 1
    return parity


class PreparedFaultSet:
    """Per-fault-set decode context for the cycle-space scheme.

    Output of :meth:`CycleSpaceConnectivityScheme.decode_partition`.
    Unlike the sketch/forest schemes, the Section 3.1 decoder cannot
    precompute a full vertex partition: the two flag bits of the
    Lemma 3.5 augmented columns depend on (s, t), so a GF(2) solve
    remains per query.  What *is* shared by all same-fault queries — the
    per-component fault filtering, the decoder-identity deduplication
    and the ``(phi, tree-bit, endpoint-interval)`` column bases — is
    hoisted here once.  :meth:`answer` reproduces
    :meth:`CycleSpaceConnectivityScheme.query_many` exactly, and the
    serving layer's partition cache memoizes these objects per
    canonical fault set.
    """

    __slots__ = ("faults", "_b", "_by_comp", "_comp_v", "_tin", "_tout")

    def __init__(self, scheme: "CycleSpaceConnectivityScheme", faults: tuple[int, ...]):
        comp_v, tin, tout, comp_e, phi, is_tree, anc_e, ident = (
            scheme._packed_store()
        )
        self.faults = faults
        self._b = scheme.b
        self._comp_v, self._tin, self._tout = comp_v, tin, tout
        by_comp: dict[int, list[tuple]] = {}
        seen: dict[int, set] = {}
        for ei in faults:
            c = comp_e[ei]
            keys = seen.setdefault(c, set())
            key = ident[ei]
            if key in keys:
                continue
            keys.add(key)
            au, av = anc_e[ei]
            by_comp.setdefault(c, []).append((phi[ei], is_tree[ei], au, av))
        self._by_comp = by_comp

    def connected(self, s: int, t: int) -> bool:
        """Exact replica of one ``query_many`` pair: build the Lemma 3.5
        augmented columns from the prepared bases and solve the two
        GF(2) systems."""
        comp_v, tin, tout = self._comp_v, self._tin, self._tout
        cs = comp_v[s]
        if cs != comp_v[t]:
            return False
        s_tin, s_tout = tin[s], tout[s]
        t_tin, t_tout = tin[t], tout[t]
        if s_tin == t_tin and s_tout == t_tout:
            return True
        base = self._by_comp.get(cs)
        if not base:
            return True
        b = self._b
        w_s = 1 << (b + 1)
        w_t = 1 << b
        columns: list[int] = []
        for phi_e, istree, au, av in base:
            col = phi_e
            if istree:
                on_s = (
                    au[0] <= s_tin
                    and s_tout <= au[1]
                    and av[0] <= s_tin
                    and s_tout <= av[1]
                )
                on_t = (
                    au[0] <= t_tin
                    and t_tout <= au[1]
                    and av[0] <= t_tin
                    and t_tout <= av[1]
                )
                if on_s and not on_t:
                    col |= w_s
                elif on_t and not on_s:
                    col |= w_t
            columns.append(col)
        for w in (w_s, w_t):
            if gf2_solve(columns, w) is not None:
                return False
        return True

    # uniform partition protocol: the native answer type is bool
    answer = connected

    def answer_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched :meth:`connected`; equals ``query_many`` exactly."""
        return [self.connected(s, t) for s, t in pairs]


class CycleSpaceConnectivityScheme:
    """The full Section 3.1 scheme: labeling plus both decoders."""

    def __init__(
        self,
        graph: Graph,
        f: int,
        seed: int = 0,
        c_log: int = 4,
        trees: Optional[Sequence[RootedTree]] = None,
        all_queries: bool = False,
        engine: str = "csr",
    ):
        """Assign labels for up to ``f`` edge faults.

        ``b = f + c_log * ceil(log2 n)`` cycle-space bits per edge, the
        paper's choice guaranteeing per-query error ``<= 2^f / 2^b =
        n^-c_log`` (Section 3.1.1).  With ``all_queries=True`` the width
        grows to ``b = (f + c_log) * ceil(log2 n)`` — the Section 3.1.1
        remark: since there are at most ``O(n^f)`` fault sets of size
        <= f, O(f log n) bits make the labels correct for *all* queries
        simultaneously w.h.p., not just per query.

        ``trees`` may supply pre-built spanning trees (one per
        component); otherwise BFS trees are used.

        ``engine`` selects the query path: ``"csr"`` (default) answers
        :meth:`query`/:meth:`query_many` from the packed label store,
        ``"reference"`` materializes per-object labels and runs the
        seed :meth:`decode` — identical answers either way (asserted by
        ``tests/test_query_many.py``).
        """
        if f < 0:
            raise ValueError("fault bound f must be >= 0")
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.graph = graph
        self.f = f
        self.seed = seed
        self.all_queries = all_queries
        n = max(graph.n, 2)
        log_n = max(1, math.ceil(math.log2(n)))
        if all_queries:
            self.b = (f + c_log) * log_n
        else:
            self.b = f + c_log * log_n
        if trees is None:
            self.trees, self.comp_of = spanning_forest(graph)
        else:
            self.trees = list(trees)
            comp_of = np.full(graph.n, -1, dtype=np.int64)
            for ci, tree in enumerate(self.trees):
                comp_of[tree.arrays().order] = ci
            self.comp_of = comp_of
        self._anc = [AncestryLabeling(tree) for tree in self.trees]
        self._labels = [
            CycleSpaceLabels.build(
                graph, tree, self.b, seed=derive_seed(seed, "cs", ci)
            )
            for ci, tree in enumerate(self.trees)
        ]
        self._qstore: Optional[tuple] = None

    def _packed_store(self) -> tuple:
        """Packed query-side label arrays (built once, lazily).

        Per vertex: component and DFS interval; per edge: component,
        phi word, tree bit, endpoint intervals and the dedup identity —
        the exact fields :meth:`decode` reads off label objects, held as
        flat lists so the batched query loop never materializes labels.
        """
        if self._qstore is None:
            graph = self.graph
            n, m = graph.n, graph.m
            comp_v = np.asarray(self.comp_of, dtype=np.int64).tolist()
            tin_np, tout_np = stitched_intervals(self._anc, n)
            tin = tin_np.tolist()
            tout = tout_np.tolist()
            comp_e = [0] * m
            phi = [0] * m
            is_tree = [False] * m
            anc_e = [None] * m
            ident = [None] * m
            for ei in range(m):
                e = graph.edge(ei)
                ci = comp_v[e.u]
                comp_e[ei] = ci
                phi[ei] = self._labels[ci].phi(ei)
                is_tree[ei] = self.trees[ci].is_tree_edge(ei)
                au = (tin[e.u], tout[e.u])
                av = (tin[e.v], tout[e.v])
                anc_e[ei] = (au, av)
                ident[ei] = (au, av) if au <= av else (av, au)
            self._qstore = (comp_v, tin, tout, comp_e, phi, is_tree, anc_e, ident)
        return self._qstore

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def vertex_label(self, v: int) -> CSVertexLabel:
        ci = int(self.comp_of[v])
        return CSVertexLabel(component=ci, anc=self._anc[ci].label(v), n=self.graph.n)

    def edge_label(self, edge_index: int) -> CSEdgeLabel:
        e = self.graph.edge(edge_index)
        ci = int(self.comp_of[e.u])
        anc = self._anc[ci]
        return CSEdgeLabel(
            component=ci,
            phi=self._labels[ci].phi(edge_index),
            b=self.b,
            anc_u=anc.label(e.u),
            anc_v=anc.label(e.v),
            is_tree=self.trees[ci].is_tree_edge(edge_index),
            n=self.graph.n,
        )

    def max_vertex_label_bits(self) -> int:
        return max(
            (self.vertex_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    def max_edge_label_bits(self) -> int:
        return max(
            (self.edge_label(e.index).bit_length() for e in self.graph.edges),
            default=0,
        )

    # ------------------------------------------------------------------
    # Decoding (Section 3.1.3 — linear systems over GF(2))
    # ------------------------------------------------------------------
    @staticmethod
    def _augmented_columns(
        s: CSVertexLabel, t: CSVertexLabel, faults: Sequence[CSEdgeLabel]
    ) -> list[int]:
        """Build the phi'(e) column vectors of Lemma 3.5.

        Layout: bit ``b+1`` is the "on r-s only" flag, bit ``b`` the
        "on r-t only" flag, low b bits are phi(e).
        """
        columns = []
        for lab in faults:
            prefix_s = lab.is_tree and edge_on_root_path(lab.anc_u, lab.anc_v, s.anc)
            prefix_t = lab.is_tree and edge_on_root_path(lab.anc_u, lab.anc_v, t.anc)
            col = lab.phi
            if prefix_s and not prefix_t:
                col |= 1 << (lab.b + 1)
            elif prefix_t and not prefix_s:
                col |= 1 << lab.b
            columns.append(col)
        return columns

    def decode(
        self,
        s_label: CSVertexLabel,
        t_label: CSVertexLabel,
        fault_labels: Iterable[CSEdgeLabel],
    ) -> CSDecodeResult:
        """Decide s-t connectivity in G \\ F from labels only.

        Returns connected=True/False; when disconnected, also the subset
        of fault labels forming the witnessing induced cut.
        """
        if s_label.component != t_label.component:
            return CSDecodeResult(connected=False)
        if s_label.anc == t_label.anc:
            return CSDecodeResult(connected=True)
        relevant: list[CSEdgeLabel] = []
        seen: set[tuple[AncLabel, AncLabel]] = set()
        for lab in fault_labels:
            if lab.component != s_label.component:
                continue
            key = lab.identity()
            if key in seen:
                continue
            seen.add(key)
            relevant.append(lab)
        if not relevant:
            return CSDecodeResult(connected=True)
        columns = self._augmented_columns(s_label, t_label, relevant)
        b = relevant[0].b
        for w in (1 << (b + 1), 1 << b):
            solution = gf2_solve(columns, w)
            if solution is not None:
                members = tuple(i for i, xi in enumerate(solution) if xi)
                return CSDecodeResult(connected=False, cut_member_positions=members)
        return CSDecodeResult(connected=True)

    def decode_bruteforce(
        self,
        s_label: CSVertexLabel,
        t_label: CSVertexLabel,
        fault_labels: Iterable[CSEdgeLabel],
    ) -> CSDecodeResult:
        """Exponential reference decoder (Section 3.1.2): enumerate all
        subsets F' of F, test the induced-cut condition via the label XOR
        and the side parity via Corollary 3.4.  For tests only."""
        if s_label.component != t_label.component:
            return CSDecodeResult(connected=False)
        if s_label.anc == t_label.anc:
            return CSDecodeResult(connected=True)
        relevant = [
            lab for lab in fault_labels if lab.component == s_label.component
        ]
        # Deduplicate as in the fast decoder.
        uniq: dict[tuple[AncLabel, AncLabel], CSEdgeLabel] = {}
        for lab in relevant:
            uniq.setdefault(lab.identity(), lab)
        labs = list(uniq.values())
        k = len(labs)
        for mask in range(1, 1 << k):
            subset = [labs[i] for i in range(k) if (mask >> i) & 1]
            if any(True for _ in subset):
                xor = 0
                for lab in subset:
                    xor ^= lab.phi
                if xor != 0:
                    continue
                tree_edges = [
                    (lab.anc_u, lab.anc_v) for lab in subset if lab.is_tree
                ]
                ns = side_of_vertex(s_label.anc, tree_edges)
                nt = side_of_vertex(t_label.anc, tree_edges)
                if ns != nt:
                    members = tuple(i for i in range(k) if (mask >> i) & 1)
                    return CSDecodeResult(connected=False, cut_member_positions=members)
        return CSDecodeResult(connected=True)

    # ------------------------------------------------------------------
    # Batched queries (packed label store)
    # ------------------------------------------------------------------
    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[bool]:
        """Batched full-pipeline queries on vertex pairs and edge indices.

        ``faults`` is one shared iterable of edge indices or a per-pair
        sequence of iterables.  Answers are identical to looping
        :meth:`query`: the same deduplication, the same Lemma 3.5
        augmented columns and the same GF(2) solves — read off the
        packed store instead of per-object labels (the solve itself is
        already O((f + log n) f^2) per query and stays per query).
        """
        per = normalize_faults(pairs, faults)
        if self.engine == "reference":
            return [
                self.decode(
                    self.vertex_label(s),
                    self.vertex_label(t),
                    [self.edge_label(ei) for ei in F],
                ).connected
                for (s, t), F in zip(pairs, per)
            ]
        comp_v, tin, tout, comp_e, phi, is_tree, anc_e, ident = (
            self._packed_store()
        )
        b = self.b
        w_s = 1 << (b + 1)
        w_t = 1 << b
        out: list[bool] = []
        for (s, t), F in zip(pairs, per):
            cs = comp_v[s]
            if cs != comp_v[t]:
                out.append(False)
                continue
            s_tin, s_tout = tin[s], tout[s]
            t_tin, t_tout = tin[t], tout[t]
            if s_tin == t_tin and s_tout == t_tout:
                out.append(True)
                continue
            columns: list[int] = []
            seen = set()
            for ei in F:
                if comp_e[ei] != cs:
                    continue
                key = ident[ei]
                if key in seen:
                    continue
                seen.add(key)
                col = phi[ei]
                if is_tree[ei]:
                    au, av = anc_e[ei]
                    on_s = (
                        au[0] <= s_tin
                        and s_tout <= au[1]
                        and av[0] <= s_tin
                        and s_tout <= av[1]
                    )
                    on_t = (
                        au[0] <= t_tin
                        and t_tout <= au[1]
                        and av[0] <= t_tin
                        and t_tout <= av[1]
                    )
                    if on_s and not on_t:
                        col |= w_s
                    elif on_t and not on_s:
                        col |= w_t
                columns.append(col)
            connected = True
            if columns:
                for w in (w_s, w_t):
                    if gf2_solve(columns, w) is not None:
                        connected = False
                        break
            out.append(connected)
        return out

    def decode_partition(self, faults: Iterable[int]) -> PreparedFaultSet:
        """The reusable per-fault-set decode context (edge indices).

        The cycle-space analogue of the sketch scheme's
        ``decode_partition``: everything that depends only on the fault
        set (component filtering, deduplication, phi columns) is
        computed once; the (s, t)-dependent GF(2) solves of Lemma 3.5
        stay per query inside :meth:`PreparedFaultSet.connected`.
        Answers equal :meth:`query_many` exactly.  Works on both
        engines (the packed store is engine-independent here).
        """
        order: list[int] = []
        seen: set[int] = set()
        for ei in faults:
            ei = int(ei)
            if ei not in seen:
                seen.add(ei)
                order.append(ei)
        return PreparedFaultSet(self, tuple(order))

    # ------------------------------------------------------------------
    # Convenience wrapper used by examples and benches
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, faults: Iterable[int]) -> bool:
        """Full-pipeline query: look up labels, decode, return connected.

        Delegates to the batched path with batch size 1 on the default
        engine; ``engine="reference"`` runs the seed label decoder.
        """
        if self.engine == "csr":
            return self.query_many([(s, t)], list(faults))[0]
        result = self.decode(
            self.vertex_label(s),
            self.vertex_label(t),
            [self.edge_label(ei) for ei in faults],
        )
        return result.connected
