"""FT approximate distance labels (Section 4, Theorem 1.4 / Lemma 4.3).

The transformation from FT connectivity labels to FT approximate
distance labels: for every distance scale ``i in 0..K`` with
``K = ceil(log2(n W))``,

* drop the *heavy* edges ``H_i`` (weight > 2^i),
* build a tree cover ``TC_i = TC(G \\ H_i, w, 2^i, k)``,
* apply the FT connectivity scheme on every cluster subgraph
  ``G_{i,j} = (G \\ H_i)[V(T_{i,j})]`` with the cover tree ``T_{i,j}``
  as its spanning tree.

A vertex label concatenates its connectivity labels over all clusters
containing it plus, per scale, the index ``i*(v)`` of the cluster whose
tree contains ``B_{2^i}(v)``.  The decoder scans the scales upward and
returns the estimate ``(4k-1)(|F|+1) 2^i`` at the first scale where
``s`` and ``t`` are connected in ``G_{i,i*(s)} \\ F``; the analysis of
Section 4 yields

    dist(s,t; G\\F) <= estimate <= (8k-2)(|F|+1) dist(s,t; G\\F).

``base_scheme`` selects the underlying connectivity labels:
``"cycle_space"`` (cheap, O(f + log n) bits per instance edge) or
``"sketch"`` (O(log^3 n) bits, supports succinct path output and hence
routing).  ``routing=True`` builds the Eq. (5)/(6) routing-augmented
variant with per-instance Thorup-Zwick tree routing (Γ-augmented when
``gamma_f`` is set) and ``copies`` independent sketch collections —
exactly the label stack the Section 5 schemes consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro._util import derive_seed
from repro._util.build_pool import BuildPool
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.sketch_scheme import RoutingAugmentation, SketchConnectivityScheme
from repro.graph.graph import Graph, InducedSubgraph
from repro.graph.spanning_tree import RootedTree
from repro.sizing.bits import bits_for_count, bits_for_weight_scales
from repro.trees.tree_cover import sparse_cover
from repro.trees.tree_routing import TreeRoutingScheme

InstanceKey = tuple[int, int]  # (scale i, cluster j)


class _EntityView:
    """Dict-like view of one entity's rows in a flat membership store.

    Supports exactly the mapping surface the decoders and the routing
    layer use on the old per-entity dicts: ``get``, ``[]``, ``items``,
    ``keys`` (so ``dict(view)`` works).  Creation is O(1); lookups are
    one ``searchsorted`` into the frozen column arrays.
    """

    __slots__ = ("_store", "_ent")

    def __init__(self, store, ent: int):
        self._store = store
        self._ent = ent

    def get(self, key, default=None):
        got = self._store.lookup(self._ent, key)
        return default if got is None else got

    def __getitem__(self, key):
        got = self._store.lookup(self._ent, key)
        if got is None:
            raise KeyError(key)
        return got

    def items(self):
        return self._store.rows_for(self._ent)

    def keys(self):
        return [k for k, _ in self._store.rows_for(self._ent)]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self):
        return len(self._store.rows_for(self._ent))


class FlatMembership:
    """Flat sorted ``(entity, scale, cluster) -> local id`` columns.

    Replaces the ``[{} for _ in range(n)]`` per-entity dict stores:
    rows are appended as whole clusters during construction (ascending
    ``(i, j)``, so one stable sort by entity at freeze time yields rows
    ordered by ``(entity, i, j)``), then frozen into four int64 columns
    plus a composite sort key for O(log N) ``searchsorted`` lookup.
    ``store[ent]`` returns a dict-like :class:`_EntityView`, keeping
    every existing ``vmem[v].get(key)`` call site unchanged.
    """

    __slots__ = (
        "_parts_ent", "_parts_i", "_parts_j", "_parts_local",
        "_ent", "_i", "_j", "_local", "_key", "_si", "_sj",
    )

    def __init__(self):
        self._parts_ent: Optional[list[np.ndarray]] = []
        self._parts_i: Optional[list[int]] = []
        self._parts_j: Optional[list[int]] = []
        self._parts_local: Optional[list[np.ndarray]] = []
        self._key: Optional[np.ndarray] = None

    def add_cluster(self, entities, i: int, j: int, locals_=None) -> None:
        """Append one cluster's rows; ``locals_`` defaults to
        ``0..len(entities)`` (the local-id enumeration of the cluster)."""
        ent = np.asarray(entities, dtype=np.int64)
        if locals_ is None:
            locals_ = np.arange(ent.size, dtype=np.int64)
        self._parts_ent.append(ent)
        self._parts_i.append(i)
        self._parts_j.append(j)
        self._parts_local.append(np.asarray(locals_, dtype=np.int64))

    def freeze(self, max_i: int, max_j: int) -> None:
        """Sort and seal the columns; no rows may be added afterwards."""
        self._si = np.int64(max_i + 2)
        self._sj = np.int64(max_j + 2)
        if self._parts_ent:
            ent = np.concatenate(self._parts_ent)
            is_ = np.concatenate(
                [
                    np.full(p.size, iv, dtype=np.int64)
                    for p, iv in zip(self._parts_ent, self._parts_i)
                ]
            )
            js = np.concatenate(
                [
                    np.full(p.size, jv, dtype=np.int64)
                    for p, jv in zip(self._parts_ent, self._parts_j)
                ]
            )
            local = np.concatenate(self._parts_local)
            # Stable by entity: clusters were appended in ascending
            # (i, j), so within an entity rows stay (i, j)-ascending —
            # the exact iteration order of the old insertion-order dicts.
            srt = np.argsort(ent, kind="stable")
            ent, is_, js, local = ent[srt], is_[srt], js[srt], local[srt]
        else:
            ent = is_ = js = local = np.zeros(0, dtype=np.int64)
        if ent.size and (
            int(ent.max()) + 1
        ) * int(self._si) * int(self._sj) >= 2**62:  # pragma: no cover
            raise OverflowError("membership composite key overflows int64")
        self._ent, self._i, self._j, self._local = ent, is_, js, local
        self._key = (ent * self._si + is_) * self._sj + js
        self._parts_ent = self._parts_i = None
        self._parts_j = self._parts_local = None

    def set_frozen(self, ent, i, j, local, max_i: int, max_j: int) -> None:
        """Install pre-sorted columns directly (snapshot restore)."""
        self._si = np.int64(max_i + 2)
        self._sj = np.int64(max_j + 2)
        self._ent = np.asarray(ent, dtype=np.int64)
        self._i = np.asarray(i, dtype=np.int64)
        self._j = np.asarray(j, dtype=np.int64)
        self._local = np.asarray(local, dtype=np.int64)
        self._key = (self._ent * self._si + self._i) * self._sj + self._j
        self._parts_ent = self._parts_i = None
        self._parts_j = self._parts_local = None

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(entity, scale, cluster, local)`` frozen columns."""
        return self._ent, self._i, self._j, self._local

    def lookup(self, ent: int, key: InstanceKey) -> Optional[int]:
        k = (np.int64(ent) * self._si + np.int64(key[0])) * self._sj + np.int64(
            key[1]
        )
        pos = int(np.searchsorted(self._key, k))
        if pos < self._key.size and self._key[pos] == k:
            return int(self._local[pos])
        return None

    def rows_for(self, ent: int) -> list[tuple[InstanceKey, int]]:
        lo = int(np.searchsorted(self._key, np.int64(ent) * self._si * self._sj))
        hi = int(
            np.searchsorted(self._key, np.int64(ent + 1) * self._si * self._sj)
        )
        return [
            ((int(self._i[r]), int(self._j[r])), int(self._local[r]))
            for r in range(lo, hi)
        ]

    def __getitem__(self, ent: int) -> _EntityView:
        return _EntityView(self, ent)


class FlatIStar:
    """Flat sorted ``(vertex, scale) -> home cluster`` columns.

    The per-vertex ``i*`` dicts, flattened: whole scales are appended at
    once from the cover's home arrays, frozen into three sorted columns.
    ``store[v]`` is a dict-like view keyed by scale.
    """

    __slots__ = ("_parts_v", "_parts_i", "_parts_j", "_v", "_i", "_j", "_key", "_si")

    def __init__(self):
        self._parts_v: Optional[list[np.ndarray]] = []
        self._parts_i: Optional[list[int]] = []
        self._parts_j: Optional[list[np.ndarray]] = []
        self._key: Optional[np.ndarray] = None

    def add_scale(self, vertices, homes, i: int) -> None:
        self._parts_v.append(np.asarray(vertices, dtype=np.int64))
        self._parts_i.append(i)
        self._parts_j.append(np.asarray(homes, dtype=np.int64))

    def freeze(self, max_i: int) -> None:
        self._si = np.int64(max_i + 2)
        if self._parts_v:
            v = np.concatenate(self._parts_v)
            is_ = np.concatenate(
                [
                    np.full(p.size, iv, dtype=np.int64)
                    for p, iv in zip(self._parts_v, self._parts_i)
                ]
            )
            j = np.concatenate(self._parts_j)
            srt = np.argsort(v, kind="stable")
            v, is_, j = v[srt], is_[srt], j[srt]
        else:
            v = is_ = j = np.zeros(0, dtype=np.int64)
        self._v, self._i, self._j = v, is_, j
        self._key = v * self._si + is_
        self._parts_v = self._parts_i = self._parts_j = None

    def set_frozen(self, v, i, j, max_i: int) -> None:
        """Install pre-sorted columns directly (snapshot restore)."""
        self._si = np.int64(max_i + 2)
        self._v = np.asarray(v, dtype=np.int64)
        self._i = np.asarray(i, dtype=np.int64)
        self._j = np.asarray(j, dtype=np.int64)
        self._key = self._v * self._si + self._i
        self._parts_v = self._parts_i = self._parts_j = None

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(vertex, scale, home cluster)`` frozen columns."""
        return self._v, self._i, self._j

    def lookup(self, v: int, i: int) -> Optional[int]:
        k = np.int64(v) * self._si + np.int64(i)
        pos = int(np.searchsorted(self._key, k))
        if pos < self._key.size and self._key[pos] == k:
            return int(self._j[pos])
        return None

    def rows_for(self, v: int) -> list[tuple[int, int]]:
        lo = int(np.searchsorted(self._key, np.int64(v) * self._si))
        hi = int(np.searchsorted(self._key, np.int64(v + 1) * self._si))
        return [(int(self._i[r]), int(self._j[r])) for r in range(lo, hi)]

    def __getitem__(self, v: int) -> _EntityView:
        return _EntityView(self, v)


def instance_wiring(graph: Graph, to_parent):
    """The global-facing ``(id_of, port_fn)`` closures of one cluster.

    Cluster instances label *local* vertices, but the identifiers and
    ports embedded into EIDs must be globally routable, so both hooks
    translate through the instance's vertex map onto the parent graph.
    Single source of truth for construction (:meth:`DistanceLabelScheme.
    _build_scale`) **and** snapshot restore (:mod:`repro.store.artifacts`)
    — the two must install byte-identical semantics.
    """

    def port_fn(lu: int, lv: int, _m=to_parent) -> int:
        return graph.port_of(_m[lu], _m[lv])

    def id_of(lv: int, _m=to_parent) -> int:
        return _m[lv]

    return id_of, port_fn


def routing_port_bits(n: int) -> int:
    """Fixed EID port-field width for an n-vertex parent graph (Eq. 5)."""
    return max(1, (max(n - 1, 1)).bit_length())


@dataclass
class LabelInstance:
    """One (scale, cluster) connectivity-labeling instance."""

    key: InstanceKey
    sub: InducedSubgraph
    tree: RootedTree  # local coordinates; spans sub.graph
    scheme: Union[SketchConnectivityScheme, CycleSpaceConnectivityScheme]
    tree_routing: Optional[TreeRoutingScheme]
    center_local: int
    radius: float


@dataclass(frozen=True)
class DistVertexLabel:
    """Distance label of a vertex: one connectivity label per cluster
    containing it, plus the per-scale home-cluster indices i*(v)."""

    v: int
    entries: dict
    i_star: dict[int, int]
    key_bits: int

    def bit_length(self) -> int:
        bits = len(self.i_star) * self.key_bits
        for _, entry in self.entries.items():
            bits += self.key_bits + entry.bit_length()
        return bits


@dataclass(frozen=True)
class DistEdgeLabel:
    """Distance label of an edge: connectivity labels per cluster."""

    u: int
    v: int
    entries: dict
    key_bits: int

    def bit_length(self) -> int:
        bits = 0
        for _, entry in self.entries.items():
            bits += self.key_bits + entry.bit_length()
        return bits


@dataclass(frozen=True)
class DistDecodeResult:
    """Estimate plus the instance that produced it (for routing).

    ``inner`` carries the underlying connectivity decode result — for
    the sketch base scheme this includes the Lemma 3.17 succinct path.
    """

    estimate: float
    scale: Optional[int] = None
    instance_key: Optional[InstanceKey] = None
    inner: Optional[object] = None

    @property
    def connected(self) -> bool:
        return not math.isinf(self.estimate)


class DistancePartition:
    """Per-fault-set serving state for the distance labels (Section 4).

    Output of :meth:`DistanceLabelScheme.decode_partition`: one
    connectivity partition per touched (scale, home-cluster) instance,
    computed lazily through the instance scheme's own
    ``decode_partition`` and memoized for the lifetime of this object —
    so a stream of same-fault queries pays each instance's Boruvka /
    column-preparation cost once.  :meth:`answer` reproduces
    :meth:`DistanceLabelScheme.query_many` exactly (the same upward
    scale scan, the same ``(4k+3)(|F|+1) 2^i`` estimate at the first
    connected scale).
    """

    __slots__ = ("scheme", "copy", "faults", "num_faults", "_instance_parts")

    def __init__(self, scheme: "DistanceLabelScheme", faults: tuple[int, ...], copy: int):
        self.scheme = scheme
        self.copy = copy
        self.faults = faults  # deduplicated, in presentation order
        self.num_faults = len(faults)  # the |F| of the estimate formula
        self._instance_parts: dict[InstanceKey, object] = {}

    def _part(self, key: InstanceKey):
        """The (scale, cluster) instance's partition, built on first use."""
        part = self._instance_parts.get(key)
        if part is None:
            scheme = self.scheme
            emem = scheme._edge_membership
            local = [
                le
                for le in (emem[ei].get(key) for ei in self.faults)
                if le is not None
            ]
            inst = scheme.instances[key].scheme
            if isinstance(inst, CycleSpaceConnectivityScheme):
                part = inst.decode_partition(local)
            else:
                part = inst.decode_partition(local, copy=self.copy)
            self._instance_parts[key] = part
        return part

    def answer(self, s: int, t: int) -> float:
        """The Section 4 estimate for one pair, off cached partitions.

        Scans scales upward exactly as :meth:`DistanceLabelScheme.decode`
        and returns ``estimate_at_scale(i, |F|)`` at the first scale
        whose home-cluster instance reports s-t connected under the
        instance-local faults; ``math.inf`` when no scale connects.
        """
        if s == t:
            return 0.0
        scheme = self.scheme
        vmem = scheme._vertex_membership
        i_star = scheme._i_star[s]
        for i in range(scheme.K + 1):
            j = i_star.get(i)
            if j is None:
                continue
            key = (i, j)
            ls = vmem[s].get(key)
            lt = vmem[t].get(key)
            if ls is None or lt is None:
                continue
            if self._part(key).connected(ls, lt):
                return scheme.estimate_at_scale(i, self.num_faults)
        return math.inf

    #: alias so the facade/serving layer can treat every partition alike
    estimate = answer

    def answer_many(self, pairs) -> list[float]:
        """Batched :meth:`answer`; equals ``query_many`` exactly."""
        return [self.answer(s, t) for s, t in pairs]


class DistanceLabelScheme:
    """The Section 4 scheme over all scales and clusters."""

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int,
        seed: int = 0,
        base_scheme: str = "sketch",
        copies: int = 1,
        routing: bool = False,
        gamma_f: Optional[int] = None,
        units: Optional[int] = None,
        engine: str = "csr",
        id_space: Optional[int] = None,
        build_workers: int = 1,
    ):
        if k < 1:
            raise ValueError("stretch parameter k must be >= 1")
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if id_space is None:
            id_space = graph.n
        if id_space < graph.n:
            raise ValueError("id_space must cover every vertex id")
        if any(e.weight < 1.0 for e in graph.edges):
            raise ValueError("Section 4 assumes edge weights in [1, W]")
        if base_scheme not in ("sketch", "cycle_space"):
            raise ValueError(f"unknown base scheme {base_scheme!r}")
        if routing and base_scheme != "sketch":
            raise ValueError("routing requires the sketch-based labels")
        self.graph = graph
        self.f = f
        self.k = k
        self.seed = seed
        self.base_scheme = base_scheme
        self.routing = routing
        self.copies = copies
        self.engine = engine
        #: identifier space threaded into every cluster instance; vertex
        #: ids are global, so widening it past ``graph.n`` (e.g. for a
        #: shared id universe across graphs) also widens the hash family
        #: the instances pick via ``family_for_key_space``.
        self.id_space = id_space
        self.K = bits_for_weight_scales(graph.n, graph.max_weight())
        self.instances: dict[InstanceKey, LabelInstance] = {}
        # Flat column stores in place of the old [{} for _ in range(n)]
        # per-entity dicts: appended cluster-by-cluster during the scale
        # loop, frozen once at the end (searchsorted lookups thereafter).
        self._vertex_membership = FlatMembership()
        self._edge_membership = FlatMembership()
        self._i_star = FlatIStar()
        self.build_workers = max(1, int(build_workers))
        # One pool shared by every (scale, cluster) instance: cluster
        # schemes farm their independent per-copy builds onto it instead
        # of forking a pool per instance.  Serial (workers=1) skips the
        # pool entirely and is the bit-identical reference path.
        pool = BuildPool(self.build_workers) if self.build_workers > 1 else None
        try:
            for i in range(self.K + 1):
                self._build_scale(i, units, gamma_f, pool)
        finally:
            if pool is not None:
                pool.close()
        max_clusters = max(
            (key[1] for key in self.instances), default=0
        )
        self._vertex_membership.freeze(self.K, max_clusters)
        self._edge_membership.freeze(self.K, max_clusters)
        self._i_star.freeze(self.K)
        self.key_bits = bits_for_count(self.K) + bits_for_count(max(max_clusters, 1))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_scale(
        self,
        i: int,
        units: Optional[int],
        gamma_f: Optional[int],
        pool: Optional[BuildPool] = None,
    ) -> None:
        rho = float(2**i)
        graph = self.graph
        # Weight thresholding over the CSR edge-weight array; the cover's
        # per-scale ball computations run through the batched SSSP kernel
        # inside sparse_cover.
        weights = graph.as_csr().edge_weight
        light = weights <= rho
        heavy_edges = set(np.flatnonzero(~light).tolist())
        cover = sparse_cover(graph, rho, self.k, forbidden_edges=heavy_edges)
        if self.engine == "csr":
            # Clusters are sliced straight off the CSR endpoint arrays
            # (one vectorized keep-mask pass per cluster) instead of the
            # per-edge Python scan of the reference induced_subgraph —
            # identical subgraphs, maps and port numbering either way.
            allowed = light
        else:
            allowed = set(np.flatnonzero(light).tolist())
        for j, ct in enumerate(cover.trees):
            key = (i, j)
            # csr: the int64 member array slices straight into the CSR
            # keep-mask pass; reference keeps the plain-int tuple so no
            # np.int64 leaks into the sequential maps.
            cluster_vs = ct.members if self.engine == "csr" else ct.vertices
            sub = graph.induced_subgraph(
                cluster_vs, allowed_edges=allowed, engine=self.engine
            )
            center_local = sub.vertex_from_parent[ct.center]
            tree = RootedTree.dijkstra(sub.graph, center_local)
            if len(tree.vertices) != sub.graph.n:  # pragma: no cover - defensive
                raise RuntimeError("cover cluster is not connected")
            to_parent = sub.vertex_to_parent
            id_of, port_fn = instance_wiring(graph, to_parent)
            tree_routing = None
            inst_seed = derive_seed(self.seed, "instance", i, j)
            if self.base_scheme == "cycle_space":
                scheme: Union[
                    SketchConnectivityScheme, CycleSpaceConnectivityScheme
                ] = CycleSpaceConnectivityScheme(
                    sub.graph,
                    self.f,
                    seed=inst_seed,
                    trees=[tree],
                    engine=self.engine,
                )
            else:
                aug = None
                if self.routing:
                    tree_routing = TreeRoutingScheme(
                        tree,
                        gamma_f=gamma_f,
                        id_of=id_of,
                        port_fn=port_fn,
                        id_space=self.id_space,
                    )
                    tr = tree_routing
                    aug = RoutingAugmentation(
                        port_bits=routing_port_bits(self.id_space),
                        tlabel_bits=tr.encoded_label_bits(),
                        tlabel_of=lambda lv, _tr=tr: _tr.encode_label(_tr.label(lv)),
                    )
                scheme = SketchConnectivityScheme(
                    sub.graph,
                    seed=inst_seed,
                    copies=self.copies,
                    units=units,
                    routing=aug,
                    trees=[tree],
                    id_of=id_of,
                    id_space=self.id_space,
                    port_fn=port_fn,
                    engine=self.engine,
                    _pool=pool,
                )
            self.instances[key] = LabelInstance(
                key=key,
                sub=sub,
                tree=tree,
                scheme=scheme,
                tree_routing=tree_routing,
                center_local=center_local,
                radius=ct.radius,
            )
            self._vertex_membership.add_cluster(to_parent, i, j)
            self._edge_membership.add_cluster(sub.edge_to_parent, i, j)
        hv, hi = cover.home_arrays()
        self._i_star.add_scale(hv, hi, i)

    def __digest_hints__(self) -> dict[int, str]:
        """Segment digests known from construction, merged over every
        (scale, cluster) instance (see
        :meth:`SketchConnectivityScheme.__digest_hints__`)."""
        hints: dict[int, str] = {}
        for inst in self.instances.values():
            collect = getattr(inst.scheme, "__digest_hints__", None)
            if collect is not None:
                hints.update(collect())
        return hints

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def vertex_label(self, v: int) -> DistVertexLabel:
        entries = {}
        for key, lv in self._vertex_membership[v].items():
            entries[key] = self.instances[key].scheme.vertex_label(lv)
        return DistVertexLabel(
            v=v,
            entries=entries,
            i_star=dict(self._i_star[v]),
            key_bits=self.key_bits,
        )

    def edge_label(self, edge_index: int) -> DistEdgeLabel:
        e = self.graph.edge(edge_index)
        entries = {}
        for key, le in self._edge_membership[edge_index].items():
            entries[key] = self.instances[key].scheme.edge_label(le)
        return DistEdgeLabel(u=e.u, v=e.v, entries=entries, key_bits=self.key_bits)

    def max_vertex_label_bits(self) -> int:
        return max(
            (self.vertex_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def estimate_at_scale(self, i: int, num_faults: int) -> float:
        """The scale-i estimate ``(4k+3)(|F|+1) 2^i``.

        The paper's constant is ``(4k-1)`` under a tree cover with radius
        ``(2k-1) rho`` (Prop. 4.2); our round-based Awerbuch-Peleg cover
        guarantees ``(2k+1) rho`` (see the note in
        :mod:`repro.trees.tree_cover`), so the realizable-path
        bound of Section 4 becomes ``2(2k+1)(|F|+1)2^i + |F| 2^i <=
        (4k+3)(|F|+1)2^i``.  Same shape, +4 in the constant.
        """
        return (4 * self.k + 3) * (num_faults + 1) * float(2**i)

    def decode(
        self,
        s_label: DistVertexLabel,
        t_label: DistVertexLabel,
        fault_labels: Iterable[DistEdgeLabel],
        copy: int = 0,
        want_path: bool = False,
    ):
        """Scan the scales upward; return the first connected scale's
        estimate (Section 4 decoding algorithm)."""
        faults = list(fault_labels)
        if s_label.v == t_label.v:
            return DistDecodeResult(estimate=0.0)
        num_faults = len({(lab.u, lab.v) for lab in faults})
        for i in range(self.K + 1):
            j = s_label.i_star.get(i)
            if j is None:
                continue
            key = (i, j)
            s_entry = s_label.entries.get(key)
            t_entry = t_label.entries.get(key)
            if s_entry is None or t_entry is None:
                continue
            f_entries = [lab.entries[key] for lab in faults if key in lab.entries]
            scheme = self.instances[key].scheme
            if isinstance(scheme, CycleSpaceConnectivityScheme):
                inner = scheme.decode(s_entry, t_entry, f_entries)
            else:
                inner = scheme.decode(
                    s_entry, t_entry, f_entries, copy=copy, want_path=want_path
                )
            if inner.connected:
                return DistDecodeResult(
                    estimate=self.estimate_at_scale(i, num_faults),
                    scale=i,
                    instance_key=key,
                    inner=inner,
                )
        return DistDecodeResult(estimate=math.inf)

    def query_many(
        self,
        pairs,
        faults=(),
        copy: int = 0,
    ) -> list[float]:
        """Batched estimates, answer-identical to looping :meth:`query`.

        Scales are scanned upward exactly as in :meth:`decode`, but at
        each scale the still-unresolved queries are grouped by their
        home-cluster instance and answered through that instance
        scheme's batched ``query_many`` (faults mapped to instance-local
        edge ids via the membership tables), so the underlying Boruvka
        or GF(2) decodes run over whole query groups at once.
        """
        from repro.core._batch import normalize_faults

        pairs = list(pairs)
        per = normalize_faults(pairs, faults)
        if self.engine == "reference":
            return [
                self.query(s, t, F, copy=copy)
                for (s, t), F in zip(pairs, per)
            ]
        results: list[Optional[float]] = [None] * len(pairs)
        nf: list[int] = []
        for qi, ((s, t), F) in enumerate(zip(pairs, per)):
            if s == t:
                results[qi] = 0.0
            nf.append(len(set(F)))
        pending = [qi for qi in range(len(pairs)) if results[qi] is None]
        for i in range(self.K + 1):
            if not pending:
                break
            groups: dict[InstanceKey, list[int]] = {}
            for qi in pending:
                s, t = pairs[qi]
                j = self._i_star[s].get(i)
                if j is None:
                    continue
                key = (i, j)
                ls = self._vertex_membership[s].get(key)
                lt = self._vertex_membership[t].get(key)
                if ls is None or lt is None:
                    continue
                groups.setdefault(key, []).append(qi)
            for key, qis in groups.items():
                scheme = self.instances[key].scheme
                vmem = self._vertex_membership
                emem = self._edge_membership
                sub_pairs = [
                    (vmem[pairs[qi][0]][key], vmem[pairs[qi][1]][key])
                    for qi in qis
                ]
                sub_faults = [
                    [
                        le
                        for le in (emem[ei].get(key) for ei in per[qi])
                        if le is not None
                    ]
                    for qi in qis
                ]
                if isinstance(scheme, CycleSpaceConnectivityScheme):
                    verdicts = scheme.query_many(sub_pairs, sub_faults)
                else:
                    verdicts = [
                        r.connected
                        for r in scheme.query_many(
                            sub_pairs, sub_faults, copy=copy, want_path=False
                        )
                    ]
                for qi, ok in zip(qis, verdicts):
                    if ok:
                        results[qi] = self.estimate_at_scale(i, nf[qi])
            pending = [qi for qi in pending if results[qi] is None]
        for qi in pending:
            results[qi] = math.inf
        return results  # type: ignore[return-value]

    def decode_partition(
        self, faults: Iterable[int], copy: int = 0
    ) -> DistancePartition:
        """Per-fault-set serving state over all scales and clusters.

        Returns a :class:`DistancePartition` whose per-instance
        connectivity partitions are built lazily (only the scales and
        home clusters the query stream actually touches) through the
        underlying scheme's ``decode_partition`` — the entry point the
        serving layer's partition cache memoizes.  Requires the
        vectorized engine, like the instance-level partitions it
        delegates to.
        """
        if self.engine == "reference":
            raise RuntimeError(
                "decode_partition requires the vectorized engine"
            )
        order: list[int] = []
        seen: set[int] = set()
        for ei in faults:
            ei = int(ei)
            if ei not in seen:
                seen.add(ei)
                order.append(ei)
        return DistancePartition(self, tuple(order), copy)

    # ------------------------------------------------------------------
    # Convenience wrapper used by examples and benches
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, faults: Iterable[int], copy: int = 0) -> float:
        """Full-pipeline estimate of dist(s, t; G \\ F)."""
        result = self.decode(
            self.vertex_label(s),
            self.vertex_label(t),
            [self.edge_label(ei) for ei in faults],
            copy=copy,
        )
        return result.estimate

    def stretch_bound(self, num_faults: int) -> float:
        """The Theorem 1.4 guarantee, with this construction's cover
        constant: ``(8k+6)(|F|+1)`` (paper: ``(8k-2)(|F|+1)``)."""
        return (8 * self.k + 6) * (num_faults + 1)
