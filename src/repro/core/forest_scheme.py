"""Deterministic FT connectivity labels for forests.

When the input graph is a forest, fault-tolerant connectivity labeling
is exact and deterministic with O(log n)-bit labels: removing F from a
tree disconnects ``s`` and ``t`` iff some failed tree edge lies on the
unique s-t tree path, which ancestry labels decide directly — a failed
edge (u, parent(u)) separates s from t iff it lies on exactly one of
the root-s / root-t paths.

This is both a useful special case (overlay/backbone trees) and a
deterministic comparator for the randomized general-graph schemes: it
has no error probability and the smallest possible labels, but it only
exists because forests have no recovery paths to find.  (The paper's
open-problems section notes that *deterministic* labels for general
graphs remain open.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core._batch import normalize_faults
from repro.graph.ancestry import (
    AncestryLabeling,
    AncLabel,
    edge_on_root_path,
    stitched_intervals,
)
from repro.graph.graph import Graph
from repro.graph.spanning_tree import spanning_forest
from repro.sizing.bits import bits_for_count


@dataclass(frozen=True)
class ForestVertexLabel:
    """Component id + ancestry interval: 2 log n + O(log n) bits."""

    component: int
    anc: AncLabel
    n: int

    def bit_length(self) -> int:
        return bits_for_count(self.component) + AncestryLabeling.bit_length(self.n)


@dataclass(frozen=True)
class ForestEdgeLabel:
    """Component id + the two endpoint intervals."""

    component: int
    anc_u: AncLabel
    anc_v: AncLabel
    n: int

    def bit_length(self) -> int:
        return bits_for_count(self.component) + 2 * AncestryLabeling.bit_length(self.n)


class ForestPartition:
    """Exact ``forest \\ F`` partition: equal group ids iff connected.

    Output of :meth:`ForestConnectivityScheme.decode_partition`.  The
    forest decoder is deterministic, so the partition is exact: after
    O(|F| n) vectorized setup every query is two array reads, and
    :meth:`answer_many` reproduces
    :meth:`ForestConnectivityScheme.query_many` exactly.  The serving
    layer's partition cache memoizes these per canonical fault set.
    """

    __slots__ = ("faults", "group_of")

    def __init__(self, faults: tuple[int, ...], group_of: np.ndarray):
        self.faults = faults
        self.group_of = group_of  # (n,) int64: vertex -> partition group

    def group(self, v: int) -> int:
        """Partition-group id of vertex ``v`` (equal iff connected)."""
        return int(self.group_of[v])

    def connected(self, s: int, t: int) -> bool:
        """Exact s-t connectivity in ``forest \\ F``, O(1) per query."""
        return bool(self.group_of[s] == self.group_of[t])

    # uniform partition protocol: the native answer type is bool
    answer = connected

    def answer_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched :meth:`connected`; equals ``query_many`` exactly."""
        g = self.group_of
        return [bool(g[s] == g[t]) for s, t in pairs]


class ForestConnectivityScheme:
    """Exact, deterministic f-FT connectivity labels for forests."""

    def __init__(self, graph: Graph):
        trees, self.comp_of = spanning_forest(graph)
        for tree in trees:
            spanned = len(tree.vertices)
            edges = sum(
                1
                for e in graph.edges
                if self.comp_of[e.u] == self.comp_of[tree.root]
            )
            if edges != spanned - 1:
                raise ValueError("graph is not a forest")
        self.graph = graph
        self.trees = trees
        self._anc = [AncestryLabeling(tree) for tree in trees]
        self._qstore: Optional[tuple] = None

    def vertex_label(self, v: int) -> ForestVertexLabel:
        ci = int(self.comp_of[v])
        return ForestVertexLabel(
            component=ci, anc=self._anc[ci].label(v), n=self.graph.n
        )

    def edge_label(self, edge_index: int) -> ForestEdgeLabel:
        e = self.graph.edge(edge_index)
        ci = int(self.comp_of[e.u])
        anc = self._anc[ci]
        return ForestEdgeLabel(
            component=ci,
            anc_u=anc.label(e.u),
            anc_v=anc.label(e.v),
            n=self.graph.n,
        )

    @staticmethod
    def decode(
        s_label: ForestVertexLabel,
        t_label: ForestVertexLabel,
        fault_labels: Iterable[ForestEdgeLabel],
    ) -> bool:
        """Exact s-t connectivity in ``forest \\ F`` from labels only.

        A failed edge separates s from t iff it lies on the s-t tree
        path, i.e. on exactly one of the root-s / root-t paths.
        """
        if s_label.component != t_label.component:
            return False
        for lab in fault_labels:
            if lab.component != s_label.component:
                continue
            on_s = edge_on_root_path(lab.anc_u, lab.anc_v, s_label.anc)
            on_t = edge_on_root_path(lab.anc_u, lab.anc_v, t_label.anc)
            if on_s != on_t:
                return False
        return True

    def _packed_store(self) -> tuple:
        """Packed label arrays: per-vertex (component, DFS interval)
        and per-edge (component, endpoint intervals), built once."""
        if self._qstore is None:
            graph = self.graph
            n = graph.n
            comp_v = np.asarray(self.comp_of, dtype=np.int64)
            tin, tout = stitched_intervals(self._anc, n)
            if graph.m:
                csr = graph.as_csr()
                eu, ev = csr.edge_u, csr.edge_v
                self._qstore = (
                    comp_v,
                    tin,
                    tout,
                    comp_v[eu],
                    tin[eu],
                    tout[eu],
                    tin[ev],
                    tout[ev],
                )
            else:
                z = np.zeros(0, dtype=np.int64)
                self._qstore = (comp_v, tin, tout, z, z, z, z, z)
        return self._qstore

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[bool]:
        """Batched exact queries, identical to looping :meth:`query`.

        The forest decoder is a pure interval predicate, so the whole
        batch vectorizes: for every (query, fault) cell, the failed
        edge separates s from t iff it lies on exactly one of the
        root-s / root-t paths — one boolean tensor reduction.
        """
        per = normalize_faults(pairs, faults)
        comp_v, tin, tout, comp_e, tin_u, tout_u, tin_v, tout_v = (
            self._packed_store()
        )
        ps = np.asarray([p[0] for p in pairs], dtype=np.int64)
        pt = np.asarray([p[1] for p in pairs], dtype=np.int64)
        same = comp_v[ps] == comp_v[pt]
        out = same.copy()
        # Flatten the (query, fault) incidence and evaluate every cell.
        lens = [len(F) for F in per]
        if sum(lens) and same.any():
            qs = np.repeat(np.arange(len(pairs), dtype=np.int64), lens)
            es = np.asarray(
                [ei for F in per for ei in F], dtype=np.int64
            )
            keep = same[qs] & (comp_e[es] == comp_v[ps[qs]])
            qs, es = qs[keep], es[keep]

            def on_path(x: np.ndarray) -> np.ndarray:
                xi, xo = tin[x][qs], tout[x][qs]
                return (
                    (tin_u[es] <= xi)
                    & (xo <= tout_u[es])
                    & (tin_v[es] <= xi)
                    & (xo <= tout_v[es])
                )

            cut = on_path(ps) != on_path(pt)
            bad = np.zeros(len(pairs), dtype=bool)
            np.logical_or.at(bad, qs, cut)
            out &= ~bad
        return out.tolist()

    def query(self, s: int, t: int, faults: Iterable[int]) -> bool:
        """Single query — the batched engine with batch size 1."""
        return self.query_many([(s, t)], list(faults))[0]

    def decode_partition(self, faults: Iterable[int]) -> ForestPartition:
        """The full ``forest \\ F`` partition for a set of edge indices.

        A failed edge (u, parent(u)) separates exactly the vertices
        whose root path crosses it, so the partition group of a vertex
        is its tree component plus the bit vector of "which failed
        edges lie on my root path" — computed here as one vectorized
        interval-containment pass per fault, with group ids compressed
        after every bit so arbitrarily many faults fit.  One O(|F| n)
        setup then answers all same-fault queries in O(1) each; the
        serving layer's partition cache memoizes the result.
        """
        comp_v, tin, tout, comp_e, tin_u, tout_u, tin_v, tout_v = (
            self._packed_store()
        )
        order: list[int] = []
        seen: set[int] = set()
        for ei in faults:
            ei = int(ei)
            if ei not in seen:
                seen.add(ei)
                order.append(ei)
        codes = comp_v.astype(np.int64)
        for ei in order:
            # The fault only cuts inside its own tree; masking by the
            # fault's component keeps numerically overlapping DFS
            # intervals of *other* trees from flipping foreign bits
            # (mirroring the component filter of query_many).
            on = (
                (comp_e[ei] == comp_v)
                & (tin_u[ei] <= tin)
                & (tout <= tout_u[ei])
                & (tin_v[ei] <= tin)
                & (tout <= tout_v[ei])
            )
            codes = np.unique(codes * 2 + on, return_inverse=True)[1]
        return ForestPartition(faults=tuple(order), group_of=codes)

    def max_vertex_label_bits(self) -> int:
        return max(
            (self.vertex_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    def max_edge_label_bits(self) -> int:
        return max(
            (self.edge_label(e.index).bit_length() for e in self.graph.edges),
            default=0,
        )
