"""Succinct s-t path descriptions (Lemma 3.17, Figure 3).

When the sketch-based decoder finds ``s`` and ``t`` connected in
``G \\ F``, it additionally outputs a labeled path
``P = [s, x1, y1, x2, y2, ..., yk, t]`` of O(f) segments that
alternate between

* **0-labeled segments** — real graph edges ``(x_i, y_i)`` (the recovery
  edges found through the sketches), carrying port numbers and the
  endpoints' tree-routing labels in routing mode; and
* **1-labeled segments** — tree paths ``(y_i, x_{i+1})`` inside a single
  surviving component of ``T \\ F``.

The routing schemes of Section 5 forward messages segment by segment;
``expand`` reconstructs the full vertex path for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree


@dataclass(frozen=True)
class PathSegment:
    """One segment of a succinct path.

    ``kind`` is ``"edge"`` (0-labeled: a graph edge) or ``"tree"``
    (1-labeled: the x-y path in T \\ F).  Ports/tree labels are present
    only when the scheme was built with routing augmentation.
    """

    kind: str
    x: int
    y: int
    port_x: Optional[int] = None
    port_y: Optional[int] = None
    tlabel_x: Optional[int] = None
    tlabel_y: Optional[int] = None
    eid: Optional[int] = None  # raw extended identifier of a 0-segment edge

    def reversed(self) -> "PathSegment":
        return PathSegment(
            kind=self.kind,
            x=self.y,
            y=self.x,
            port_x=self.port_y,
            port_y=self.port_x,
            tlabel_x=self.tlabel_y,
            tlabel_y=self.tlabel_x,
            eid=self.eid,
        )


@dataclass(frozen=True)
class SuccinctPath:
    """An alternating 0/1-labeled s-t path of O(f) segments."""

    s: int
    t: int
    segments: tuple[PathSegment, ...]

    def recovery_edges(self) -> list[tuple[int, int]]:
        """The 0-labeled (graph) edges, in path order."""
        return [(seg.x, seg.y) for seg in self.segments if seg.kind == "edge"]

    def reversed(self) -> "SuccinctPath":
        return SuccinctPath(
            s=self.t,
            t=self.s,
            segments=tuple(seg.reversed() for seg in reversed(self.segments)),
        )

    def expand(self, graph: Graph, tree: RootedTree) -> list[int]:
        """Reconstruct the full vertex path (verification helper).

        Raises ``ValueError`` if a 0-segment is not a real graph edge or
        the segments do not chain from s to t.
        """
        path = [self.s]
        for seg in self.segments:
            if path[-1] != seg.x:
                raise ValueError(
                    f"segment starts at {seg.x} but path is at {path[-1]}"
                )
            if seg.kind == "edge":
                if not graph.has_edge(seg.x, seg.y):
                    raise ValueError(f"({seg.x}, {seg.y}) is not a graph edge")
                path.append(seg.y)
            elif seg.kind == "tree":
                path.extend(tree.tree_path(seg.x, seg.y)[1:])
            else:
                raise ValueError(f"unknown segment kind {seg.kind!r}")
        if path[-1] != self.t:
            raise ValueError(f"path ends at {path[-1]}, expected {self.t}")
        return path

    def weighted_length(self, graph: Graph, tree: RootedTree) -> float:
        """Weighted length of the encoded path."""
        total = 0.0
        for seg in self.segments:
            if seg.kind == "edge":
                ei = graph.edge_index_between(seg.x, seg.y)
                if ei is None:
                    raise ValueError(f"({seg.x}, {seg.y}) is not a graph edge")
                total += graph.weight(ei)
            else:
                total += tree.tree_distance(seg.x, seg.y)
        return total

    def bit_length(self, n: int) -> int:
        """Header size of the description: O(f log n) bits."""
        from repro.sizing.bits import bits_for_id

        per_vertex = bits_for_id(n)
        bits = 2 * per_vertex  # s and t
        for seg in self.segments:
            bits += 1 + 2 * per_vertex  # kind bit + endpoints
            if seg.port_x is not None:
                bits += 2 * per_vertex  # ports
            if seg.tlabel_x is not None:
                bits += max(seg.tlabel_x.bit_length(), 1)
                bits += max((seg.tlabel_y or 0).bit_length(), 1)
        return bits
