"""FT connectivity labels via graph sketches (Section 3.2, Theorem 3.7).

Labeling (Section 3.2.1):

* every vertex label carries ``(ANC_T(u), ID(u))`` (Eq. 3), plus the
  tree-routing label ``L_T(u)`` in routing mode (Eq. 6);
* every non-tree edge label is its extended identifier ``EID_T(e)``;
* every tree edge label additionally carries the subtree sketch
  ``Sketch(V(T_child))``, the global sketch ``Sketch(V)``, and the seeds
  ``S_ID`` and ``S_h`` — O(log^3 n) bits in total.

Decoding (Section 3.2.2), given the labels of ``s``, ``t`` and the fault
set F:

1. identify the components of ``T \\ F_T`` from ancestry labels
   (Claim 3.14, :mod:`repro.core.component_tree`);
2. compute each component's sketch in G from the subtree sketches
   (Claim 3.15);
3. cancel the faulty edges out of the component sketches;
4. simulate Boruvka phases over the components, one fresh sketch unit
   per phase, until the components stop merging; ``s`` and ``t`` are
   connected iff their components merged.

When connected, the decoder also emits the succinct s-t path of
Lemma 3.17 (O(f) recovery-edge / tree-path segments), which the routing
schemes of Section 5 consume.

``copies`` builds the f' = f+1 independent sketch collections required
by the fault-tolerant routing scheme (Section 5.2): all copies share the
extended identifiers (same ``S_ID``) and differ only in the sketch seeds
``S_h^1..S_h^{f'}``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, NamedTuple, Optional, Sequence

import numpy as np

from repro._util import derive_seed
from repro._util.build_pool import BuildPool, split_ranges
from repro.obs import PhaseTimer
from repro.core._batch import normalize_faults
from repro.core.component_tree import ComponentForest, orient_tree_edge
from repro.core.path_description import PathSegment, SuccinctPath
from repro.graph.ancestry import AncestryLabeling, AncLabel, stitched_intervals
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.sketches.edge_ids import DecodedEid, ExtendedEdgeIds, UidScheme
from repro.sketches.hashing import PairwiseHashFamily, family_for_key_space
from repro.sketches.sketch import (
    MAX_SKETCH_ID_SPACE,
    MAX_SKETCH_ID_SPACE_M61,
    RaggedPrefix,
    SketchDims,
    VertexSketches,
    eids_to_word_matrix,
    prefix_store_task,
    word_matrix_to_eids,
)
from repro.sizing.bits import bits_for_count, bits_for_id
from repro.trees.union_find import UnionFind


def default_units(n: int) -> int:
    """Default number of basic sketch units L = Theta(log n)."""
    return 2 * max(2, math.ceil(math.log2(max(n, 4)))) + 8


@dataclass(frozen=True)
class RoutingAugmentation:
    """Extra fields embedded into EIDs for the routing schemes (Eq. 5).

    ``tlabel_of(v)`` returns the encoded Thorup-Zwick tree-routing label
    of ``v`` as an integer of at most ``tlabel_bits`` bits.
    """

    port_bits: int
    tlabel_bits: int
    tlabel_of: Callable[[int], int]


@dataclass(frozen=True)
class SketchContext:
    """Decoder-visible constants: what the seeds in the labels determine.

    Conceptually this is (S_ID, S_h^1.., n, m) — the decoder
    reconstructs the hash families and the EID codec from them.  It is
    shared by reference between labels and counted once per tree-edge
    label in the bit accounting.
    """

    dims: SketchDims
    eids: ExtendedEdgeIds
    sketchers: tuple[VertexSketches, ...]

    @property
    def copies(self) -> int:
        return len(self.sketchers)

    def seed_bits(self) -> int:
        return UidScheme.SEED_BITS + sum(s.family.seed_bits() for s in self.sketchers)


@dataclass(frozen=True)
class SkVertexLabel:
    """Vertex label (Eq. 3 / Eq. 6): component, id, ancestry, tree label."""

    component: int
    vid: int
    anc: AncLabel
    n: int
    tlabel: Optional[int] = None
    tlabel_bits: int = 0

    def bit_length(self) -> int:
        bits = (
            bits_for_count(self.component)
            + bits_for_id(self.n)
            + AncestryLabeling.bit_length(self.n)
        )
        if self.tlabel is not None:
            bits += self.tlabel_bits
        return bits


@dataclass(frozen=True)
class SkEdgeLabel:
    """Edge label: EID for non-tree edges; EID + sketches + seeds for
    tree edges (per-copy child-subtree sketch and the global sketch)."""

    component: int
    eid: int
    is_tree: bool
    context: SketchContext
    subtree: Optional[tuple[np.ndarray, ...]] = None
    global_sketch: Optional[tuple[np.ndarray, ...]] = None

    def bit_length(self) -> int:
        bits = bits_for_count(self.component) + self.context.eids.total_bits + 1
        if self.is_tree:
            cell_bits = self.context.eids.total_bits
            sketch_bits = self.context.dims.cell_count() * cell_bits
            bits += 2 * self.context.copies * sketch_bits  # subtree + global
            bits += self.context.seed_bits()
        return bits


@dataclass(frozen=True)
class SkDecodeResult:
    """Decoder verdict plus the Lemma 3.17 succinct path when connected."""

    connected: bool
    path: Optional[SuccinctPath] = None
    phases_used: int = 0


@dataclass(frozen=True)
class ConnectivityPartition:
    """The full G \\ F component structure over the T \\ F_T components.

    Output of :meth:`SketchConnectivityScheme.decode_partition_labels`:
    one decode answers *all* same-component queries for a fixed fault set —
    two labeled vertices are connected in ``G \\ F`` iff their groups
    match.  ``component`` is None when the queried vertex lies in a
    different connected component of G than the fault set's.
    """

    component: int  # the G-component this partition describes
    forest: ComponentForest
    group_of: tuple[int, ...]  # T\F_T component index -> group id

    def group(self, vertex_label: "SkVertexLabel") -> Optional[int]:
        """Group id of a labeled vertex (None if in another G-component)."""
        if vertex_label.component != self.component:
            return None
        return self.group_of[self.forest.locate(vertex_label.anc)]

    def same_component(
        self, a: "SkVertexLabel", b: "SkVertexLabel"
    ) -> bool:
        """Are the two labeled vertices connected in G \\ F?"""
        if a.component != b.component:
            return False
        if a.component != self.component:
            raise ValueError("partition was built for a different component")
        return self.group(a) == self.group(b)

    @property
    def group_count(self) -> int:
        return len(set(self.group_of))


class FaultSetPartition:
    """The ``G \\ F`` connectivity partition for one fault set, all
    components — the unit of work the serving layer caches.

    Output of :meth:`SketchConnectivityScheme.decode_partition`: one
    batched Boruvka decode answers *every* (s, t) query under the same
    fault set.  :meth:`answer`/:meth:`answer_many` reproduce
    :meth:`SketchConnectivityScheme.query_many` bit for bit — succinct
    paths and phase counts included — when ``query_many`` is handed the
    faults in this partition's (deduplicated) order; verdicts agree for
    any fault order.  :meth:`connected`/:meth:`group` answer in
    O(log f) per query without touching the sketches again
    (Claim 3.14 location + one union-find find).
    """

    __slots__ = ("scheme", "copy", "faults", "entries")

    def __init__(
        self,
        scheme: "SketchConnectivityScheme",
        copy: int,
        faults: tuple[int, ...],
        entries: dict,
    ):
        self.scheme = scheme
        self.copy = copy
        #: deduplicated fault edge indices, in presentation order
        self.faults = faults
        #: component -> (forest, union_find, merges, phases); components
        #: without failed tree edges are absent (their spanning tree is
        #: intact, so they stay one group)
        self.entries = entries

    def group(self, v: int) -> tuple[int, int]:
        """Partition-group id of vertex ``v``.

        Two vertices are connected in ``G \\ F`` iff their group ids are
        equal (w.h.p.; Claim 3.16).
        """
        st = self.scheme._packed_store()
        c = st.comp_v[v]
        if c < 0:
            raise ValueError("vertex is not spanned by a tree")
        entry = self.entries.get(c)
        if entry is None:
            return (c, 0)
        forest, uf, _, _ = entry
        return (c, uf.find(forest.locate((st.tin[v], st.tout[v]))))

    def connected(self, s: int, t: int) -> bool:
        """s-t connectivity in ``G \\ F`` (w.h.p.), O(log f) per query."""
        return self.group(s) == self.group(t)

    def answer(self, s: int, t: int, want_path: bool = True) -> SkDecodeResult:
        """The full decode result for one pair (batch of one)."""
        return self.answer_many([(s, t)], want_path=want_path)[0]

    def answer_many(
        self, pairs: Sequence[tuple[int, int]], want_path: bool = True
    ) -> list[SkDecodeResult]:
        """Decode results for many pairs off the precomputed partition.

        Identical to :meth:`SketchConnectivityScheme.query_many` on the
        same pairs with this partition's fault set (Lemma 3.17 paths
        assembled from the recorded merges), but with no per-query
        Boruvka work left — just locate + union-find.
        """
        scheme = self.scheme
        st = scheme._packed_store()
        comp_v, vid, tin, tout = st.comp_v, st.vid, st.tin, st.tout
        routing = scheme._routing
        tlabel_of = routing.tlabel_of if routing is not None else None
        entries = self.entries
        Result, Path, Segment = SkDecodeResult, SuccinctPath, PathSegment
        out: list[SkDecodeResult] = []
        for s, t in pairs:
            cs = comp_v[s]
            if cs < 0 or comp_v[t] < 0:
                raise ValueError("query vertex is not spanned by a tree")
            if cs != comp_v[t]:
                out.append(Result(connected=False))
                continue
            vs, vt = vid[s], vid[t]
            if vs == vt:
                out.append(Result(connected=True, path=Path(vs, vt, ())))
                continue
            entry = entries.get(cs)
            if entry is None:
                path = None
                if want_path:
                    path = Path(
                        vs,
                        vt,
                        (
                            Segment(
                                kind="tree",
                                x=vs,
                                y=vt,
                                tlabel_x=None if tlabel_of is None else tlabel_of(s),
                                tlabel_y=None if tlabel_of is None else tlabel_of(t),
                            ),
                        ),
                    )
                out.append(Result(connected=True, path=path))
                continue
            forest, uf, merges, phases = entry
            cs_loc = forest.locate((tin[s], tout[s]))
            ct_loc = forest.locate((tin[t], tout[t]))
            if not uf.same(cs_loc, ct_loc):
                out.append(Result(connected=False, phases_used=phases))
                continue
            path = None
            if want_path:
                s_lab = _PathEndpoint(
                    vs, None if tlabel_of is None else tlabel_of(s)
                )
                t_lab = _PathEndpoint(
                    vt, None if tlabel_of is None else tlabel_of(t)
                )
                path = scheme._build_path(
                    s_lab, t_lab, forest, merges, cs_loc, ct_loc
                )
            out.append(Result(connected=True, path=path, phases_used=phases))
        return out


class _PathEndpoint(NamedTuple):
    """The two fields of a vertex label the path assembler reads."""

    vid: int
    tlabel: Optional[int]


def _mix_words(words: np.ndarray, consts: np.ndarray) -> np.ndarray:
    """64-bit fingerprint per word row (odd-multiplier mix, wrapping).

    Used as a vectorized membership prefilter against the real-edge
    words; collisions are resolved by exact row comparison, so the mix
    only affects speed, never answers.
    """
    mixed = words[:, 0] * consts[0]
    for w in range(1, words.shape[1]):
        mixed = mixed ^ (words[:, w] * consts[w])
    return mixed


class _SplitForest:
    """Stand-in for :class:`ComponentForest` when ``|F_T| = 1``.

    A single failed tree edge splits T into the root component (0) and
    the failed edge's child subtree (1); locating a vertex is one
    interval-containment test.  This is by far the most common shape in
    the batched decoder, and skipping the generic endpoint-sort build
    measurably matters at 10^4 queries.
    """

    __slots__ = ("tin", "tout")

    def __init__(self, tin: int, tout: int):
        self.tin = tin
        self.tout = tout

    def locate(self, anc) -> int:
        return 1 if self.tin <= anc[0] and anc[1] <= self.tout else 0


@dataclass
class _PackedQueryStore:
    """Packed array label store backing the batched decoder.

    One contiguous tensor/array per label quantity, sliced per vertex or
    edge instead of materializing per-object labels: vertex side carries
    (component, identifier-space id, DFS-interval ancestry), edge side
    carries (component, tree bit, EID word rows, sampling key, child
    preorder interval, endpoint ancestry).  The plain-list mirrors exist
    because the per-query assembly phase reads single elements, where
    Python list indexing beats numpy scalar indexing severalfold.
    """

    comp_v: list  # vertex -> component (comp_of)
    vid: list  # vertex -> identifier-space id
    tin: list  # vertex -> DFS first visit time
    tout: list  # vertex -> DFS last visit time
    comp_e: list  # edge -> component
    is_tree: list  # edge -> tree bit
    child_a: list  # tree edge -> child-subtree prefix row (else -1)
    child_b: list  # tree edge -> one past the subtree interval
    child_tin: list  # tree edge -> child endpoint tin (else 0)
    child_tout: list
    e_tin_u: list  # edge -> endpoint ancestry (decoder's d.anc_u/d.anc_v)
    e_tout_u: list
    e_tin_v: list
    e_tout_v: list
    root_a: list  # component -> root-subtree prefix row interval
    root_b: list
    keys: np.ndarray  # (m,) int64 identifier-space sampling keys
    eid_words: np.ndarray  # (m, W) uint64 packed EIDs
    #: real-edge membership index: per-edge mixed 64-bit fingerprints of
    #: the EID word rows, sorted, plus the edge order.  A fingerprint
    #: hit (confirmed by exact word comparison) proves single-edge-ness
    #: without a PRF evaluation — the uid a stored edge row embeds
    #: matches by construction; misses go through the batched PRF test.
    mix_consts: np.ndarray  # (W,) odd uint64 mixing multipliers
    mixed_sorted: np.ndarray  # (m,) uint64 sorted fingerprints
    mixed_order: np.ndarray  # (m,) int64 edge index per sorted slot


@dataclass(frozen=True)
class PreloadedSketchArrays:
    """Construction-skipping payload for snapshot restores.

    Carries the two expensive-to-build array stores of the vectorized
    scheme — the packed EID word matrix and the per-copy prefix-XOR
    sketch stores — exactly as a prior construction produced them (and
    as the snapshot store persisted them; arrays may be read-only
    memory maps, the scheme only ever reads them).  A prefix entry is
    either the dense ``(rows, L, J+1, W)`` tensor or, for ragged-layout
    snapshots, the ``(keys, vals)`` change-point array pair the scheme
    rewraps into a :class:`repro.sketches.sketch.RaggedPrefix`.
    """

    eid_words: np.ndarray
    prefix: tuple


class SketchConnectivityScheme:
    """The full Section 3.2 scheme: labeling + Boruvka decoding."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        copies: int = 1,
        units: Optional[int] = None,
        routing: Optional[RoutingAugmentation] = None,
        trees: Optional[Sequence[RootedTree]] = None,
        id_of: Optional[Callable[[int], int]] = None,
        id_space: Optional[int] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
        engine: str = "csr",
        prefix_layout: Optional[str] = None,
        build_workers: int = 1,
        _preloaded: Optional[PreloadedSketchArrays] = None,
        _pool: Optional[BuildPool] = None,
    ):
        """``build_workers`` farms independent build units — per-copy
        sketch stores, or contiguous unit ranges of a single copy — onto
        a process pool (:class:`repro._util.build_pool.BuildPool`);
        workers return packed arrays the parent assembles in task order,
        so every ``build_workers`` value yields bit-identical labels and
        ``build_workers=1`` (the default) is the serial reference path.
        ``_pool`` (internal) lets an enclosing scheme share one pool
        across many small instances instead of forking per instance.

        ``id_of``/``id_space``/``port_fn`` translate instance-local
        vertices to global ids/ports when the scheme runs on a tree-cover
        cluster (see Section 4/5); by default they are the identity.

        ``engine="csr"`` (default) builds labels through the vectorized
        CSR kernels; ``engine="reference"`` is the sequential pure-Python
        construction — both produce bit-identical labels (asserted by
        ``tests/test_csr_equivalence.py``), and the benchmark baseline
        times one against the other.

        ``prefix_layout`` selects the prefix sketch store of the csr
        engine: ``"dense"`` (the padded tensor — bit-identical to every
        prior release), ``"ragged"`` (change-point storage, peak memory
        proportional to live sketch cells), or ``None`` (default) to
        pick dense for m31-sized identifier spaces and ragged beyond
        them.  Both layouts answer every query identically.

        ``_preloaded`` (internal; used by :mod:`repro.store`) skips the
        EID packing and sketch-tensor construction and installs the
        given arrays instead — the scheme then behaves exactly as if it
        had built them, which the snapshot round-trip tests assert."""
        if copies < 1:
            raise ValueError("need at least one sketch copy")
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        vectorized = engine == "csr"
        self.graph = graph
        self.seed = seed
        self.engine = engine
        self._identity_ids = id_of is None
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self._id_space = id_space if id_space is not None else graph.n
        #: closures cannot be persisted, so snapshots of standalone
        #: schemes require the default (identity) vertex/port wiring.
        self._custom_wiring = id_of is not None or port_fn is not None
        if self._id_space > MAX_SKETCH_ID_SPACE_M61:
            # Explicit failure instead of silently evaluating hash keys
            # outside the modulus domain.  Identifier spaces past the
            # m31 cap of 46341 ids auto-upgrade to the 2^61 - 1 family;
            # only its own ~1.5e9-id ceiling remains a hard error.
            raise ValueError(
                f"identifier space {self._id_space} exceeds the sketch "
                f"scheme cap of {MAX_SKETCH_ID_SPACE_M61} ids (edge "
                f"sampling keys must stay below the 2^61 - 1 hash "
                f"modulus of the widest family)"
            )
        wide = self._id_space > MAX_SKETCH_ID_SPACE
        if prefix_layout not in (None, "dense", "ragged"):
            raise ValueError(f"unknown prefix layout {prefix_layout!r}")
        self._prefix_layout = (
            prefix_layout
            if prefix_layout is not None
            else ("ragged" if wide else "dense")
        )
        self.build_workers = max(1, int(build_workers))
        #: per-segment BLAKE2b-128 digests computed by build workers,
        #: keyed by ``id(array)`` — save_snapshot forwards them so the
        #: writer can skip re-hashing segments a worker already hashed.
        self._prefix_digests: dict[int, str] = {}
        #: wall-clock seconds per construction phase (forest / eids /
        #: sketches) — the benchmark's ``phase_s`` attribution, recorded
        #: through an obs :class:`~repro.obs.PhaseTimer` (same keys as
        #: the pre-obs hand-rolled dict).
        _timer = PhaseTimer().start()
        self.build_phase_s: dict[str, float] = _timer.seconds
        if trees is None:
            self.trees, self.comp_of = spanning_forest(graph, engine=engine)
        else:
            self.trees = list(trees)
            comp_of = np.full(graph.n, -1, dtype=np.int64)
            for ci, tree in enumerate(self.trees):
                comp_of[tree.arrays().order] = ci
            self.comp_of = comp_of
        self._anc = [AncestryLabeling(tree, engine=engine) for tree in self.trees]
        self._routing = routing

        def anc_of(v: int) -> AncLabel:
            return self._anc[self.comp_of[v]].label(v)

        _timer.split("forest")
        uid_scheme = UidScheme(derive_seed(seed, "uid"))
        # The stitched (tin, tout) arrays let the batch EID packer gather
        # DFS timestamps with numpy indexing instead of per-vertex
        # anc_of calls; values agree with anc_of on every spanned vertex.
        anc_arrays = stitched_intervals(self._anc, graph.n) if vectorized else None
        if routing is None:
            eids = ExtendedEdgeIds(
                graph,
                uid_scheme,
                anc_of,
                id_of=id_of,
                id_space=id_space,
                anc_arrays=anc_arrays,
            )
        else:
            eids = ExtendedEdgeIds(
                graph,
                uid_scheme,
                anc_of,
                port_bits=routing.port_bits,
                tlabel_bits=routing.tlabel_bits,
                tlabel_of=routing.tlabel_of,
                id_of=id_of,
                id_space=id_space,
                port_fn=port_fn,
                anc_arrays=anc_arrays,
            )
        if _preloaded is not None:
            if not vectorized:
                raise ValueError("preloaded arrays require the csr engine")
            # Snapshot restore: the word matrix was persisted verbatim;
            # Python-int EIDs decode lazily from it when labels need
            # them (identical values either way).
            self._eid_words = _preloaded.eid_words
            self._eid_ints: Optional[list] = None
        elif vectorized and eids.word_batchable:
            self._eid_words = eids.eid_words_batch()
            self._eid_ints = None  # materialized on demand
        elif vectorized:
            # Wide-field layouts (e.g. big routing tree labels) can't go
            # through the word packer: batch the ints once and derive
            # the word matrix from them, rather than the reverse.
            self._eid_ints = eids.eid_batch()
            self._eid_words = eids_to_word_matrix(
                self._eid_ints, eids.codec.word_count
            )
        else:
            self._eid_words = None
            self._eid_ints = [eids.eid(ei) for ei in range(graph.m)]
        _timer.split("eids")
        levels = max(1, math.ceil(math.log2(max(graph.m, 2)))) + 1
        n_units = units if units is not None else default_units(graph.n)
        words = max(1, (eids.total_bits + 63) // 64)
        dims = SketchDims(units=n_units, levels=levels, words=words)
        # family_for_key_space keeps the legacy m31 family (bit-identical
        # labels) whenever the identifier space fits its 46341-id cap and
        # upgrades to the 2^61 - 1 split-multiply family beyond it; the
        # seed derivation is unchanged in both cases.
        sketchers = tuple(
            VertexSketches(
                graph,
                dims,
                family_for_key_space(
                    n_units,
                    levels - 1,
                    derive_seed(seed, "sketch_family", c),
                    self._id_space,
                ),
                id_of=id_of,
                key_space=id_space,
            )
            for c in range(copies)
        )
        self.context = SketchContext(dims=dims, eids=eids, sketchers=sketchers)
        # Subtree-aggregated sketches.  Reference engine: ``_agg[c][v]``
        # holds the sketch of subtree(v) (post-order accumulation).  CSR
        # engine: subtrees are contiguous preorder intervals, so we keep
        # per-copy *prefix-XOR* tensors over the forest preorder instead
        # (``_prefix[c][r]`` = XOR of the vertex sketches of the first
        # ``r`` preorder vertices) and materialize any subtree sketch as
        # the XOR of two rows on demand — one pass of sequential
        # accumulation replaces the whole bottom-up tree walk.
        self._agg: Optional[list[np.ndarray]] = None
        self._prefix: Optional[list[np.ndarray]] = None
        self._root_cache: dict[int, tuple] = {}
        # Packed query-side stores (lazy; vectorized engine only): the
        # per-vertex/per-edge label arrays the batched decoder reads
        # instead of materializing per-vertex label objects.
        self._qstore: Optional[_PackedQueryStore] = None
        self._vid_to_vertex: Optional[dict[int, int]] = None
        self._eid_to_edge: Optional[dict[int, int]] = None
        self._edge_decoded: dict[int, DecodedEid] = {}
        if vectorized:
            pre = np.full(graph.n, -1, dtype=np.int64)
            size_all = np.zeros(graph.n, dtype=np.int64)
            offset = 0
            for tree in self.trees:
                ta = tree.arrays()
                pre[ta.order] = offset + np.arange(ta.order.size, dtype=np.int64)
                size_all[ta.order] = ta.size[ta.order]
                offset += ta.order.size
            self._pre = pre
            self._size = size_all
            # Unspanned vertices (possible with explicitly provided
            # trees) scatter into a trailing trash row that no subtree
            # interval ever reads.
            if _preloaded is not None:
                # Ragged snapshots persist each copy as a (keys, vals)
                # pair; rewrap with the row stride this tree layout
                # implies (identical to the one the build produced).
                self._prefix = [
                    p
                    if isinstance(p, np.ndarray)
                    else RaggedPrefix(
                        rows=offset + 2,
                        units=n_units,
                        levels=levels,
                        width=words,
                        keys=p[0],
                        vals=p[1],
                    )
                    for p in _preloaded.prefix
                ]
                if self._prefix and not isinstance(self._prefix[0], np.ndarray):
                    self._prefix_layout = "ragged"
                else:
                    self._prefix_layout = "dense"
            else:
                row_of = np.where(pre >= 0, pre + 1, offset + 1)
                # The scatter layout is identical for every copy (only
                # the hash families differ), so compute it once.
                plan = sketchers[0].scatter_plan(row_of) if graph.m else None
                self._prefix = self._build_prefix_stores(
                    sketchers, plan, row_of, offset + 2, _pool
                )
        else:
            self._agg = []
            for c in range(copies):
                arr = sketchers[c].build_reference(lambda ei: self._eid_cache[ei])
                for tree in self.trees:
                    for v in tree.post_order():
                        p = tree.parent[v]
                        if p >= 0:
                            arr[p] ^= arr[v]
                self._agg.append(arr)
        _timer.split("sketches")

    def _build_prefix_stores(
        self,
        sketchers: Sequence[VertexSketches],
        plan,
        row_of: np.ndarray,
        rows: int,
        pool: Optional[BuildPool],
    ) -> list:
        """Per-copy prefix stores, serial or farmed onto a process pool.

        The work partition is deterministic and the assembly order is
        the serial order, so every configuration returns bit-identical
        arrays:

        * **copies > 1** — one task per copy (copies are independent
          given the shared scatter plan; Section 5.2's f' design);
        * **one copy, own pool** — contiguous unit ranges
          (:func:`repro.._util.build_pool.split_ranges`), concatenated
          in range order (unit chunks are already globally sorted);
        * **serial** (``build_workers=1``, no shared pool, or an empty
          graph) — the plain per-copy loop, the reference path.

        Full-copy worker tasks also return the BLAKE2b-128 digest of
        each output array (exactly the snapshot's segment digest), which
        lands in ``_prefix_digests`` for the snapshot writer.
        """
        copies = len(sketchers)
        layout = self._prefix_layout
        eid_words = self._eid_words
        units = self.context.dims.units
        levels = self.context.dims.levels
        width = self.context.dims.words
        build = (
            VertexSketches.build_prefix_ragged
            if layout == "ragged"
            else VertexSketches.build_prefix
        )
        shared = pool is not None and pool.workers > 1 and copies > 1
        own_workers = self.build_workers if self.graph.m else 1
        if not shared and own_workers <= 1:
            return [
                build(sketchers[c], eid_words, row_of=row_of, rows=rows, plan=plan)
                for c in range(copies)
            ]
        ctx = {
            "keys": plan.keys,
            "srows": plan.srows,
            "sedges": plan.sedges,
            "swords": plan.scatter_words(eid_words),
            "rows": rows,
            "units": units,
            "levels": levels,
            "width": width,
        }

        def wrap(keys64, vals):
            return RaggedPrefix(
                rows=rows,
                units=units,
                levels=levels,
                width=width,
                keys=keys64,
                vals=vals,
            )

        def assemble_copies(results) -> list:
            out = []
            for res in results:
                if layout == "ragged":
                    ks, vs, dk, dv = res
                    if dk is not None:
                        self._prefix_digests[id(ks)] = dk
                        self._prefix_digests[id(vs)] = dv
                    out.append(wrap(ks, vs))
                else:
                    arr, d = res
                    if d is not None:
                        self._prefix_digests[id(arr)] = d
                    out.append(arr)
            return out

        if shared:
            # Shared pools carry the context in the task (the pool was
            # forked before this instance existed); cluster instances
            # are small, so per-task pickling is cheap.
            tasks = [
                (ctx, sketchers[c].family, layout, 0, units) for c in range(copies)
            ]
            return assemble_copies(pool.map(prefix_store_task, tasks))
        with BuildPool(own_workers, payload=ctx) as own:
            if copies > 1:
                tasks = [
                    (None, sketchers[c].family, layout, 0, units)
                    for c in range(copies)
                ]
                return assemble_copies(own.map(prefix_store_task, tasks))
            # Single copy: partition the unit axis.  Over-split by 4x so
            # uneven per-unit costs still balance across workers.
            ranges = split_ranges(units, own_workers * 4)
            tasks = [
                (None, sketchers[0].family, layout, lo, hi) for lo, hi in ranges
            ]
            results = own.map(prefix_store_task, tasks)
        if layout == "ragged":
            ks = np.concatenate([r[0] for r in results])
            vs = np.concatenate([r[1] for r in results], axis=0)
            return [wrap(ks, vs)]
        return [np.concatenate([r[0] for r in results], axis=1)]

    @property
    def _eid_cache(self) -> list:
        """Packed EIDs by edge index (lazily decoded from the word
        matrix on the vectorized path — labels need Python ints, the
        sketch builder does not).  The word matrix itself stays live on
        the vectorized engine: it is the packed edge-label store the
        batched decoder cancels faults from."""
        if self._eid_ints is None:
            self._eid_ints = word_matrix_to_eids(self._eid_words)
        return self._eid_ints

    def _subtree_sketches(self, v: int) -> tuple[np.ndarray, ...]:
        """Per-copy sketch of subtree(v) (``Sketch(V(T_v))``).

        On the vectorized path a subtree sketch is the XOR of two
        prefix rows followed by the level suffix-XOR that turns
        exact-level cells into Eq. 2's cumulative cells.
        """
        if self._prefix is not None:
            a = int(self._pre[v])
            b = a + int(self._size[v])
            return tuple(
                VertexSketches.suffix_levels(
                    p[b] ^ p[a]
                    if isinstance(p, np.ndarray)
                    else p.full_row(b) ^ p.full_row(a)
                )
                for p in self._prefix
            )
        return tuple(agg[v] for agg in self._agg)

    def _packed_store(self) -> _PackedQueryStore:
        """The packed query-side label store (built once, lazily)."""
        if self._qstore is not None:
            return self._qstore
        if self._prefix is None:
            raise RuntimeError("packed store requires the vectorized engine")
        graph = self.graph
        n, m = graph.n, graph.m
        csr = graph.as_csr()
        if self._identity_ids:
            vid = np.arange(n, dtype=np.int64)
        else:
            id_of = self._id_of
            vid = np.fromiter((id_of(v) for v in range(n)), dtype=np.int64, count=n)
        tin, tout = stitched_intervals(self._anc, n)
        is_tree = np.zeros(m, dtype=bool)
        childv = np.full(m, -1, dtype=np.int64)
        for tree in self.trees:
            # Non-root preorder vertices ARE the child endpoints of the
            # tree edges (forest trees share full-n parent arrays, so a
            # parent >= 0 scan would pull in foreign components).
            ta = tree.arrays()
            vs = ta.order[1:]
            is_tree[ta.parent_edge[vs]] = True
            childv[ta.parent_edge[vs]] = vs
        tree_mask = childv >= 0
        cv = np.maximum(childv, 0)
        child_a = np.where(tree_mask, self._pre[cv], -1)
        child_b = np.where(tree_mask, self._pre[cv] + self._size[cv], -1)
        child_tin = np.where(tree_mask, tin[cv], 0)
        child_tout = np.where(tree_mask, tout[cv], 0)
        if m:
            gu = vid[csr.edge_u]
            gv = vid[csr.edge_v]
            keys = np.minimum(gu, gv) * np.int64(self._id_space) + np.maximum(gu, gv)
            comp_e = np.asarray(self.comp_of, dtype=np.int64)[csr.edge_u]
            e_tin_u, e_tout_u = tin[csr.edge_u], tout[csr.edge_u]
            e_tin_v, e_tout_v = tin[csr.edge_v], tout[csr.edge_v]
        else:
            keys = np.zeros(0, dtype=np.int64)
            comp_e = np.zeros(0, dtype=np.int64)
            e_tin_u = e_tout_u = e_tin_v = e_tout_v = np.zeros(0, dtype=np.int64)
        roots = [tree.root for tree in self.trees]
        root_a = [int(self._pre[r]) for r in roots]
        root_b = [int(self._pre[r] + self._size[r]) for r in roots]
        eid_words = self._eid_words
        if eid_words is None:  # pragma: no cover - defensive (always kept)
            eid_words = eids_to_word_matrix(
                self._eid_cache, self.context.eids.codec.word_count
            )
        width = eid_words.shape[1]
        mix_consts = (
            np.uint64(0x9E3779B97F4A7C15)
            * (2 * np.arange(width, dtype=np.uint64) + np.uint64(1))
        )
        mixed = _mix_words(eid_words, mix_consts)
        order = np.argsort(mixed, kind="stable")
        self._qstore = _PackedQueryStore(
            comp_v=list(self.comp_of),
            vid=vid.tolist(),
            tin=tin.tolist(),
            tout=tout.tolist(),
            comp_e=comp_e.tolist(),
            is_tree=is_tree.tolist(),
            child_a=child_a.tolist(),
            child_b=child_b.tolist(),
            child_tin=child_tin.tolist(),
            child_tout=child_tout.tolist(),
            e_tin_u=e_tin_u.tolist(),
            e_tout_u=e_tout_u.tolist(),
            e_tin_v=e_tin_v.tolist(),
            e_tout_v=e_tout_v.tolist(),
            root_a=root_a,
            root_b=root_b,
            keys=keys,
            eid_words=eid_words,
            mix_consts=mix_consts,
            mixed_sorted=mixed[order],
            mixed_order=order,
        )
        return self._qstore

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.store)
    # ------------------------------------------------------------------
    def __arrays__(self) -> dict[str, np.ndarray]:
        """The scheme's own packed array stores, for the snapshot store.

        Exactly the payload :class:`PreloadedSketchArrays` accepts back:
        the EID word matrix and the per-copy prefix sketch tensors.
        (Graph, tree and parameter state is persisted separately by
        :mod:`repro.store.artifacts` — it is shared across schemes.)
        """
        if self._prefix is None:
            raise RuntimeError(
                "only the vectorized (csr) engine has packed array stores"
            )
        out: dict[str, np.ndarray] = {"eid_words": self._eid_words}
        for c, p in enumerate(self._prefix):
            if isinstance(p, np.ndarray):
                out[f"prefix{c}"] = p
            else:
                out[f"prefix{c}_keys"] = p.keys
                out[f"prefix{c}_vals"] = p.vals
        return out

    def __digest_hints__(self) -> dict[int, str]:
        """Per-segment BLAKE2b-128 digests known from construction,
        keyed by ``id(array)`` — build workers fingerprint their output
        arrays, so the snapshot writer can skip re-hashing them."""
        return dict(self._prefix_digests)

    @property
    def hash_family(self) -> str:
        """``"m31"`` or ``"m61"`` — which Mersenne family the identifier
        space selected (persisted in snapshot meta for skew checks)."""
        return "m31" if self.context.sketchers[0].family.modulus == (1 << 31) - 1 else "m61"

    @property
    def prefix_layout(self) -> str:
        """``"dense"`` or ``"ragged"`` — the prefix store layout in use
        (``"dense"`` also for the reference engine's aggregate arrays)."""
        return self._prefix_layout

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def vertex_label(self, v: int) -> SkVertexLabel:
        ci = int(self.comp_of[v])
        tlabel = None
        tlabel_bits = 0
        if self._routing is not None:
            tlabel = self._routing.tlabel_of(v)
            tlabel_bits = self._routing.tlabel_bits
        return SkVertexLabel(
            component=ci,
            vid=self._id_of(v),
            anc=self._anc[ci].label(v),
            n=self._id_space,
            tlabel=tlabel,
            tlabel_bits=tlabel_bits,
        )

    def edge_label(self, edge_index: int) -> SkEdgeLabel:
        e = self.graph.edge(edge_index)
        ci = int(self.comp_of[e.u])
        tree = self.trees[ci]
        is_tree = tree.is_tree_edge(edge_index)
        subtree = None
        global_sketch = None
        if is_tree:
            child = tree.child_endpoint(edge_index)
            subtree = self._subtree_sketches(child)
            # The per-component global sketch is shared by all of the
            # tree's edge labels; cache it instead of re-materializing.
            global_sketch = self._root_cache.get(tree.root)
            if global_sketch is None:
                global_sketch = self._subtree_sketches(tree.root)
                self._root_cache[tree.root] = global_sketch
        return SkEdgeLabel(
            component=ci,
            eid=self._eid_cache[edge_index],
            is_tree=is_tree,
            context=self.context,
            subtree=subtree,
            global_sketch=global_sketch,
        )

    def max_vertex_label_bits(self) -> int:
        return max(
            (self.vertex_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    def max_edge_label_bits(self) -> int:
        # ``SkEdgeLabel.bit_length()`` is structural: it depends only on
        # the component index and tree/non-tree status, never on the
        # sketch contents.  Computing the maximum therefore must not go
        # through ``edge_label`` — materializing per-edge subtree
        # sketches (two ragged-prefix binary searches per tree edge)
        # costs minutes at n=10^6 for values bit_length never reads.
        m = self.graph.m
        if m == 0:
            return 0
        is_tree = np.zeros(m, dtype=bool)
        for tree in self.trees:
            ta = tree.arrays()
            children = ta.order[1:]
            if children.size:
                is_tree[ta.parent_edge[children]] = True
        comp_e = np.asarray(self.comp_of, dtype=np.int64)[
            self.graph.as_csr().edge_u
        ]
        best = 0
        if is_tree.any():
            label = SkEdgeLabel(
                component=int(comp_e[is_tree].max()),
                eid=0,
                is_tree=True,
                context=self.context,
            )
            best = max(best, label.bit_length())
        if not is_tree.all():
            label = SkEdgeLabel(
                component=int(comp_e[~is_tree].max()),
                eid=0,
                is_tree=False,
                context=self.context,
            )
            best = max(best, label.bit_length())
        return best

    # ------------------------------------------------------------------
    # Decoding (Section 3.2.2)
    # ------------------------------------------------------------------
    def decode(
        self,
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        fault_labels: Iterable[SkEdgeLabel],
        copy: int = 0,
        want_path: bool = True,
    ) -> SkDecodeResult:
        """Decide s-t connectivity in ``G \\ F`` from labels only.

        ``copy`` selects which of the f' independent sketch collections
        to consume (the FT routing scheme uses a fresh copy per retry
        iteration).

        On the vectorized engine the labels are mapped back onto the
        packed store and the query runs through the batched decoder with
        batch size 1; labels that do not resolve against the store
        (foreign or corrupted), and the ``engine="reference"`` scheme,
        take the retained seed decoder — both produce bit-identical
        results (``tests/test_query_many.py``).
        """
        if self._prefix is not None:
            prepared = self._prepare_label_query(s_label, t_label, fault_labels)
            if prepared is not None:
                return self._decode_batch(
                    [prepared], copy=copy, want_path=want_path
                )[0]
        return self._decode_labels(s_label, t_label, fault_labels, copy, want_path)

    def _prepare_label_query(
        self,
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        fault_labels: Iterable[SkEdgeLabel],
    ) -> Optional[tuple[int, int, list[int]]]:
        """Map a label-level query onto store indices (None = fall back)."""
        st = self._packed_store()
        if self._vid_to_vertex is None:
            self._vid_to_vertex = {g: v for v, g in enumerate(st.vid)}
        s = self._vid_to_vertex.get(s_label.vid)
        t = self._vid_to_vertex.get(t_label.vid)
        if s is None or t is None:
            return None
        if (
            st.comp_v[s] != s_label.component
            or (st.tin[s], st.tout[s]) != s_label.anc
            or st.comp_v[t] != t_label.component
            or (st.tin[t], st.tout[t]) != t_label.anc
        ):
            return None
        if self._eid_to_edge is None:
            self._eid_to_edge = {e: i for i, e in enumerate(self._eid_cache)}
        edge_of = self._eid_to_edge.get
        comp = s_label.component
        faults: list[int] = []
        for lab in fault_labels:
            if lab.component != comp:
                continue  # the decoder drops other components' labels
            ei = edge_of(lab.eid)
            if ei is None:
                return None  # unknown EID: let the seed decoder judge it
            faults.append(ei)
        return s, t, faults

    def _decode_labels(
        self,
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        fault_labels: Iterable[SkEdgeLabel],
        copy: int = 0,
        want_path: bool = True,
    ) -> SkDecodeResult:
        """The seed (sequential, label-object) decoder."""
        if s_label.component != t_label.component:
            return SkDecodeResult(connected=False)
        if s_label.vid == t_label.vid:
            return SkDecodeResult(
                connected=True, path=SuccinctPath(s_label.vid, t_label.vid, ())
            )
        faults: list[SkEdgeLabel] = []
        seen: set[int] = set()
        for lab in fault_labels:
            if lab.component != s_label.component or lab.eid in seen:
                continue
            seen.add(lab.eid)
            faults.append(lab)
        tree_faults = [lab for lab in faults if lab.is_tree]
        if not tree_faults:
            # T is intact: same component implies connected via the tree.
            path = self._direct_tree_path(s_label, t_label) if want_path else None
            return SkDecodeResult(connected=True, path=path)

        forest, uf, merges, phases = self._simulate_boruvka(
            faults, tree_faults, copy
        )
        cs = forest.locate(s_label.anc)
        ct = forest.locate(t_label.anc)
        if not uf.same(cs, ct):
            return SkDecodeResult(connected=False, phases_used=phases)
        path = None
        if want_path:
            path = self._build_path(s_label, t_label, forest, merges, cs, ct)
        return SkDecodeResult(connected=True, path=path, phases_used=phases)

    def _simulate_boruvka(
        self,
        faults: Sequence[SkEdgeLabel],
        tree_faults: Sequence[SkEdgeLabel],
        copy: int,
    ) -> tuple[ComponentForest, UnionFind, list, int]:
        """Steps 1-4 of the decoder (Section 3.2.2): component tree,
        component sketches, fault cancellation, Boruvka merging."""
        ctx = tree_faults[0].context
        sketcher = ctx.sketchers[copy]
        decoded_faults = [ctx.eids.try_decode(lab.eid) for lab in faults]
        if any(d is None for d in decoded_faults):
            raise ValueError("fault label carries a corrupted EID")

        # Step 1: components of T \ F_T.
        children: list[AncLabel] = []
        refs: list[int] = []
        for pos, lab in enumerate(faults):
            if not lab.is_tree:
                continue
            d = decoded_faults[pos]
            child_anc, _ = orient_tree_edge(d.anc_u, d.anc_v)
            children.append(child_anc)
            refs.append(pos)
        forest = ComponentForest.build(children, refs=refs)

        # Step 2: per-component sketches in G (Claim 3.15).
        num_comps = len(forest)
        prime = [None] * num_comps  # Sketch'(C_j)
        for j in range(1, num_comps):
            pos = forest.components[j].ref
            prime[j] = faults[pos].subtree[copy]
        prime[0] = tree_faults[0].global_sketch[copy]
        comp_sketch: list[np.ndarray] = [None] * num_comps
        for j in range(num_comps):
            sketch = prime[j].copy()
            for child in forest.children_of(j):
                sketch ^= prime[child]
            comp_sketch[j] = sketch

        # Step 3: cancel faulty edges out of the component sketches.
        for pos, lab in enumerate(faults):
            d = decoded_faults[pos]
            cu = forest.locate(d.anc_u)
            cv = forest.locate(d.anc_v)
            if cu != cv:
                sketcher.cancel_edge(comp_sketch[cu], d.u, d.v, lab.eid)
                sketcher.cancel_edge(comp_sketch[cv], d.u, d.v, lab.eid)

        # Step 4: Boruvka phases over the components, one fresh unit each.
        uf = UnionFind(num_comps)
        sketch_of: dict[int, np.ndarray] = {j: comp_sketch[j] for j in range(num_comps)}
        merges: list[tuple[DecodedEid, int, int]] = []
        phases = 0
        for unit in range(ctx.dims.units):
            roots = sorted({uf.find(j) for j in range(num_comps)})
            if len(roots) == 1:
                break
            phases += 1
            candidates: list[DecodedEid] = []
            for r in roots:
                d = VertexSketches.extract_outgoing(sketch_of[r], unit, ctx.eids)
                if d is not None:
                    candidates.append(d)
            for d in candidates:
                cu = forest.locate(d.anc_u)
                cv = forest.locate(d.anc_v)
                ru, rv = uf.find(cu), uf.find(cv)
                if ru == rv:
                    continue
                merged = sketch_of.pop(ru) ^ sketch_of.pop(rv)
                uf.union(ru, rv)
                sketch_of[uf.find(ru)] = merged
                merges.append((d, cu, cv))
        return forest, uf, merges, phases

    def decode_partition_labels(
        self,
        component: int,
        fault_labels: Iterable[SkEdgeLabel],
        copy: int = 0,
    ) -> ConnectivityPartition:
        """One decode, all queries — from labels only, one G-component.

        Returns a :class:`ConnectivityPartition` over the queried
        G-component; any two vertex labels of that component can then be
        tested for connectivity in O(log f) without re-decoding.  (The
        per-query w.h.p. guarantee of Theorem 3.7 applies to the fault
        set as a whole.)  The store-level sibling serving the batched
        engine is :meth:`decode_partition`.
        """
        faults: list[SkEdgeLabel] = []
        seen: set[int] = set()
        for lab in fault_labels:
            if lab.component != component or lab.eid in seen:
                continue
            seen.add(lab.eid)
            faults.append(lab)
        tree_faults = [lab for lab in faults if lab.is_tree]
        if not tree_faults:
            forest = ComponentForest.build([])
            return ConnectivityPartition(
                component=component, forest=forest, group_of=(0,)
            )
        forest, uf, _, _ = self._simulate_boruvka(faults, tree_faults, copy)
        group_of = tuple(uf.find(j) for j in range(len(forest)))
        return ConnectivityPartition(
            component=component, forest=forest, group_of=group_of
        )

    def decode_partition(
        self, faults: Iterable[int], copy: int = 0
    ) -> "FaultSetPartition":
        """One Boruvka decode, all same-fault queries (Claim 3.16).

        Factored out of :meth:`query_many`: the per-component
        ``(forest, union_find, merges, phases)`` state the batched
        decoder computes for a hard query is a pure function of the
        fault set, so computing it once per fault set answers *every*
        (s, t) pair under those faults.  ``faults`` are edge indices;
        the returned :class:`FaultSetPartition` covers all graph
        components (the per-query w.h.p. guarantee of Theorem 3.7
        applies to the fault set as a whole).

        This is the entry point the serving layer's partition cache
        (:mod:`repro.serving.partition_cache`) memoizes.  Requires the
        vectorized engine — the packed store is the partition's
        substrate; the label-level sibling is
        :meth:`decode_partition_labels`.
        """
        st = self._packed_store()
        comp_e, is_tree = st.comp_e, st.is_tree
        order: list[int] = []
        seen: set[int] = set()
        per_comp: dict[int, tuple[list[int], list[int]]] = {}
        for ei in faults:
            ei = int(ei)
            if ei in seen:
                continue
            seen.add(ei)
            order.append(ei)
            c = comp_e[ei]
            bucket = per_comp.get(c)
            if bucket is None:
                bucket = per_comp[c] = ([], [])
            bucket[0].append(ei)
            if is_tree[ei]:
                bucket[1].append(ei)
        tasks = [(c, fl, tf) for c, (fl, tf) in per_comp.items() if tf]
        parts = self._partition_batch(tasks, copy=copy) if tasks else []
        entries = {c: parts[i] for i, (c, _fl, _tf) in enumerate(tasks)}
        return FaultSetPartition(self, copy, tuple(order), entries)

    # ------------------------------------------------------------------
    # Path construction (Lemma 3.17)
    # ------------------------------------------------------------------
    def _direct_tree_path(
        self, s_label: SkVertexLabel, t_label: SkVertexLabel
    ) -> SuccinctPath:
        segment = PathSegment(
            kind="tree",
            x=s_label.vid,
            y=t_label.vid,
            tlabel_x=s_label.tlabel,
            tlabel_y=t_label.tlabel,
        )
        return SuccinctPath(s_label.vid, t_label.vid, (segment,))

    @staticmethod
    def _build_path(
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        forest: ComponentForest,
        merges: Sequence[tuple[DecodedEid, int, int]],
        cs: int,
        ct: int,
    ) -> SuccinctPath:
        """Assemble the alternating 0/1-labeled path from the merge forest."""
        if cs == ct:
            segment = PathSegment(
                kind="tree",
                x=s_label.vid,
                y=t_label.vid,
                tlabel_x=s_label.tlabel,
                tlabel_y=t_label.tlabel,
            )
            return SuccinctPath(s_label.vid, t_label.vid, (segment,))
        adjacency: dict[int, list[tuple[int, DecodedEid]]] = {}
        for d, cu, cv in merges:
            adjacency.setdefault(cu, []).append((cv, d))
            adjacency.setdefault(cv, []).append((cu, d))
        # BFS over the merge forest from cs to ct.
        prev: dict[int, tuple[int, DecodedEid]] = {}
        queue = deque([cs])
        visited = {cs}
        while queue:
            c = queue.popleft()
            if c == ct:
                break
            for nxt, d in adjacency.get(c, ()):  # noqa: B905
                if nxt in visited:
                    continue
                visited.add(nxt)
                prev[nxt] = (c, d)
                queue.append(nxt)
        if ct not in visited:
            raise RuntimeError("merge forest inconsistent with connectivity verdict")
        hops: list[tuple[int, int, DecodedEid]] = []  # (from_comp, to_comp, edge)
        c = ct
        while c != cs:
            pc, d = prev[c]
            hops.append((pc, c, d))
            c = pc
        hops.reverse()
        segments: list[PathSegment] = []
        current_vertex = s_label.vid
        current_tlabel = s_label.tlabel
        for from_comp, to_comp, d in hops:
            # Orient the recovery edge: x in from_comp, y in to_comp.
            if forest.locate(d.anc_u) == from_comp:
                x, y = d.u, d.v
                anc_x, port_x, tl_x = d.anc_u, d.port_u, d.tlabel_u
                port_y, tl_y = d.port_v, d.tlabel_v
            else:
                x, y = d.v, d.u
                anc_x, port_x, tl_x = d.anc_v, d.port_v, d.tlabel_v
                port_y, tl_y = d.port_u, d.tlabel_u
            if current_vertex != x:
                segments.append(
                    PathSegment(
                        kind="tree",
                        x=current_vertex,
                        y=x,
                        tlabel_x=current_tlabel,
                        tlabel_y=tl_x,
                    )
                )
            segments.append(
                PathSegment(
                    kind="edge",
                    x=x,
                    y=y,
                    port_x=port_x,
                    port_y=port_y,
                    tlabel_x=tl_x,
                    tlabel_y=tl_y,
                    eid=d.raw,
                )
            )
            current_vertex = y
            current_tlabel = tl_y
        if current_vertex != t_label.vid:
            segments.append(
                PathSegment(
                    kind="tree",
                    x=current_vertex,
                    y=t_label.vid,
                    tlabel_x=current_tlabel,
                    tlabel_y=t_label.tlabel,
                )
            )
        return SuccinctPath(s_label.vid, t_label.vid, tuple(segments))

    # ------------------------------------------------------------------
    # Batched decoding (the packed-store query engine)
    # ------------------------------------------------------------------
    def query_many(
        self,
        pairs: Sequence[tuple[int, int]],
        faults=(),
        copy: int = 0,
        want_path: bool = True,
        chunk: int = 2048,
    ) -> list[SkDecodeResult]:
        """Batched full-pipeline queries on vertex pairs and edge indices.

        ``faults`` is either one iterable of edge indices shared by all
        pairs, or a sequence of per-pair iterables (one fault set per
        query).  Answers are bit-identical to looping :meth:`query` —
        including succinct paths and phase counts — which the
        ``tests/test_query_many.py`` equivalence suite asserts against
        both engines.

        On the vectorized engine all queries of a chunk run through one
        batched Boruvka simulation: component sketches are assembled
        from the prefix tensor with two gathers, fault cancellation is
        one exact-level scatter, and each phase validates the candidate
        words of *every* live component at once
        (:meth:`ExtendedEdgeIds.try_decode_words`).  ``chunk`` bounds
        the live sketch matrix (~2 sketch rows per fault per query).  On
        ``engine="reference"`` the seed decoder runs per query.
        """
        pairs = list(pairs)
        per = normalize_faults(pairs, faults)
        if self._prefix is None:
            return [
                self._decode_labels(
                    self.vertex_label(s),
                    self.vertex_label(t),
                    [self.edge_label(ei) for ei in F],
                    copy,
                    want_path,
                )
                for (s, t), F in zip(pairs, per)
            ]
        out: list[SkDecodeResult] = []
        chunk = max(1, chunk)
        for lo in range(0, len(pairs), chunk):
            out.extend(
                self._decode_batch(
                    [
                        (s, t, F)
                        for (s, t), F in zip(
                            pairs[lo : lo + chunk], per[lo : lo + chunk]
                        )
                    ],
                    copy=copy,
                    want_path=want_path,
                )
            )
        return out

    def _decode_batch(
        self,
        queries: Sequence[tuple[int, int, list[int]]],
        copy: int = 0,
        want_path: bool = True,
    ) -> list[SkDecodeResult]:
        """One batched Boruvka simulation over ``(s, t, F)`` queries."""
        st = self._packed_store()
        comp_v, vid = st.comp_v, st.vid
        tin, tout = st.tin, st.tout
        comp_e, is_tree = st.comp_e, st.is_tree
        routing = self._routing

        results: list[Optional[SkDecodeResult]] = [None] * len(queries)
        # ---- assembly: trivial verdicts out, hard queries flattened --
        Result, Path, Segment = SkDecodeResult, SuccinctPath, PathSegment
        tlabel_of = routing.tlabel_of if routing is not None else None
        hard: list[tuple] = []  # (qi, s, t, comp, faults, tree_faults)
        hard_append = hard.append
        for qi, (s, t, F) in enumerate(queries):
            cs = comp_v[s]
            if cs < 0 or comp_v[t] < 0:
                raise ValueError("query vertex is not spanned by a tree")
            if cs != comp_v[t]:
                results[qi] = Result(connected=False)
                continue
            vs = vid[s]
            vt = vid[t]
            if vs == vt:
                results[qi] = Result(connected=True, path=Path(vs, vt, ()))
                continue
            fl: list[int] = []
            tf: list[int] = []
            if F:
                seen = set()
                add = seen.add
                for ei in F:
                    if comp_e[ei] != cs or ei in seen:
                        continue
                    add(ei)
                    fl.append(ei)
                    if is_tree[ei]:
                        tf.append(ei)
            if not tf:
                path = None
                if want_path:
                    path = Path(
                        vs,
                        vt,
                        (
                            Segment(
                                kind="tree",
                                x=vs,
                                y=vt,
                                tlabel_x=None if tlabel_of is None else tlabel_of(s),
                                tlabel_y=None if tlabel_of is None else tlabel_of(t),
                            ),
                        ),
                    )
                results[qi] = Result(connected=True, path=path)
                continue
            hard_append((qi, s, t, cs, fl, tf))
        if not hard:
            return results  # type: ignore[return-value]

        parts = self._partition_batch(
            [(cs, fl, tf) for _qi, _s, _t, cs, fl, tf in hard], copy=copy
        )

        # ---- verdicts and Lemma 3.17 paths ---------------------------
        for h, (qi, s, t, cs, fl, tf) in enumerate(hard):
            forest, uf, merges, phases = parts[h]
            cs_loc = forest.locate((tin[s], tout[s]))
            ct_loc = forest.locate((tin[t], tout[t]))
            if not uf.same(cs_loc, ct_loc):
                results[qi] = Result(connected=False, phases_used=phases)
                continue
            path = None
            if want_path:
                # _build_path only consumes the endpoints' vids and tree
                # labels; a slim stand-in avoids two frozen-dataclass
                # constructions per query.
                s_lab = _PathEndpoint(
                    vid[s], None if tlabel_of is None else tlabel_of(s)
                )
                t_lab = _PathEndpoint(
                    vid[t], None if tlabel_of is None else tlabel_of(t)
                )
                path = self._build_path(
                    s_lab, t_lab, forest, merges, cs_loc, ct_loc
                )
            results[qi] = Result(connected=True, path=path, phases_used=phases)
        return results  # type: ignore[return-value]

    def _partition_batch(
        self,
        tasks: Sequence[tuple[int, list[int], list[int]]],
        copy: int = 0,
    ) -> list[tuple]:
        """Vectorized Boruvka runs over many fault-set tasks at once.

        Each task is ``(component, faults, tree_faults)`` with ``faults``
        already deduplicated and restricted to ``component``, and
        ``tree_faults`` its non-empty tree-edge subset.  The result is
        one ``(forest, union_find, merges, phases)`` tuple per task —
        Steps 1-4 of the Section 3.2.2 decoder (component tree of
        Claim 3.14, component sketches of Claim 3.15, fault
        cancellation, Boruvka merging with Lemma 3.10 word validation).

        A task's outcome is a pure function of the task itself; batching
        only amortizes the array work.  That purity is what makes
        fault-set partitions cacheable and shardable — both
        :meth:`query_many` (one task per hard query) and
        :meth:`decode_partition` (one task per touched component, reused
        for every query) are thin wrappers over this engine.
        """
        st = self._packed_store()

        # ---- component structure: forests, gather lists, cancellations
        # A component's sketch is never materialized over all L units:
        # Sketch(C_j) is the XOR of prefix rows (its own preorder
        # interval plus the children components' intervals, Claim 3.15)
        # and of its cancelled fault words, and each Boruvka phase only
        # reads ONE unit — so every component carries a prefix-row
        # gather list and a cancellation list, merging is list
        # concatenation, and the per-phase unit slice is one segmented
        # XOR reduction over the live roots' lists.
        child_tin, child_tout = st.child_tin, st.child_tout
        child_a, child_b = st.child_a, st.child_b
        e_tin_u, e_tout_u = st.e_tin_u, st.e_tout_u
        e_tin_v, e_tout_v = st.e_tin_v, st.e_tout_v
        forests: list = []
        ncomps: list[int] = []
        grows: list[list[list[int]]] = []  # per query, per comp: rows
        gevs: list[list[list[int]]] = []  # per query, per comp: event ids
        ev_edges: list[int] = []  # event id -> cancelled edge
        for cs, fl, tf in tasks:
            nc = len(tf) + 1
            ncomps.append(nc)
            ra, rb = st.root_a[cs], st.root_b[cs]
            if nc == 2:
                # Single tree fault: two components, one containment
                # test per locate, gather lists known outright.
                ei0 = tf[0]
                ca, cb = child_a[ei0], child_b[ei0]
                qrows = [[rb, ra, cb, ca], [cb, ca]]
                qevs: list[list[int]] = [[], []]
                ctin, ctout = child_tin[ei0], child_tout[ei0]
                forests.append(_SplitForest(ctin, ctout))
                for ei in fl:
                    cu = (
                        1
                        if ctin <= e_tin_u[ei] and e_tout_u[ei] <= ctout
                        else 0
                    )
                    cv = (
                        1
                        if ctin <= e_tin_v[ei] and e_tout_v[ei] <= ctout
                        else 0
                    )
                    if cu != cv:
                        ev = len(ev_edges)
                        ev_edges.append(ei)
                        qevs[0].append(ev)
                        qevs[1].append(ev)
                grows.append(qrows)
                gevs.append(qevs)
                continue
            forest = ComponentForest.build(
                [(child_tin[ei], child_tout[ei]) for ei in tf]
            )
            forests.append(forest)
            comps = forest.components
            own_a = [ra] + [child_a[ei] for ei in tf]
            own_b = [rb] + [child_b[ei] for ei in tf]
            qrows = [[own_b[j], own_a[j]] for j in range(nc)]
            for j in range(1, nc):
                qrows[comps[j].parent] += (own_b[j], own_a[j])
            qevs = [[] for _ in range(nc)]
            locate = forest.locate
            for ei in fl:
                cu = locate((e_tin_u[ei], e_tout_u[ei]))
                cv = locate((e_tin_v[ei], e_tout_v[ei]))
                if cu != cv:
                    ev = len(ev_edges)
                    ev_edges.append(ei)
                    qevs[cu].append(ev)
                    qevs[cv].append(ev)
            grows.append(qrows)
            gevs.append(qevs)
        H = len(tasks)

        # ---- per-chunk event tables (one hash evaluation per edge) ---
        ctx = self.context
        dims = ctx.dims
        units, levels, width = dims.units, dims.levels, dims.words
        prefix = self._prefix[copy]
        sketcher = ctx.sketchers[copy]
        if ev_edges:
            ee = np.asarray(ev_edges, dtype=np.int64)
            # Exact sampling depth per (event, unit): cancelling edge e
            # from cumulative cells (i, j <= ml_i) is one XOR into the
            # exact cell (i, ml_i) before the suffix fold.
            ev_ml = sketcher.max_levels_many(st.keys[ee])
            ev_words = st.eid_words[ee]
        else:
            ev_ml = ev_words = None

        # ---- Boruvka phases, one fresh unit per phase ----------------
        eids = ctx.eids
        edge_decoded = self._edge_decoded
        eid_cache = self._eid_cache
        mixed_sorted, mixed_order = st.mixed_sorted, st.mixed_order
        mix_consts = st.mix_consts
        m_edges = mixed_sorted.size
        ufs = [UnionFind(nc) for nc in ncomps]
        roots_of = [list(range(nc)) for nc in ncomps]
        phases = [0] * H
        merges: list[list[tuple[DecodedEid, int, int]]] = [[] for _ in range(H)]
        alive = list(range(H))
        for unit in range(units):
            seg: list[int] = [0]
            flat_rows: list[int] = []
            ev_flat: list[int] = []
            ev_tgt: list[int] = []
            ext_meta: list[tuple[int, int]] = []  # (query, root) per extraction
            still: list[int] = []
            for h in alive:
                roots = roots_of[h]
                if len(roots) == 1:
                    continue
                phases[h] += 1
                qrows = grows[h]
                qevs = gevs[h]
                for r in roots:
                    i = len(ext_meta)
                    ext_meta.append((h, r))
                    flat_rows += qrows[r]
                    seg.append(len(flat_rows))
                    evs = qevs[r]
                    if evs:
                        ev_flat += evs
                        ev_tgt += [i] * len(evs)
                still.append(h)
            alive = still
            R = len(ext_meta)
            if not R:
                break
            fr_idx = np.asarray(flat_rows, dtype=np.int64)
            if isinstance(prefix, np.ndarray):
                slab = prefix[fr_idx, unit]
            else:
                slab = prefix.gather(fr_idx, unit)
            cand = np.bitwise_xor.reduceat(
                slab, np.asarray(seg[:-1], dtype=np.int64), axis=0
            )
            flat = cand.reshape(R * levels, width)
            if ev_flat:
                evi = np.asarray(ev_flat, dtype=np.int64)
                tgt = (
                    np.asarray(ev_tgt, dtype=np.int64) * levels
                    + ev_ml[evi, unit]
                )
                for w in range(width):
                    np.bitwise_xor.at(flat[:, w], tgt, ev_words[evi, w])
            rev = cand[:, ::-1, :]
            np.bitwise_xor.accumulate(rev, axis=1, out=rev)
            # Real-edge membership by fingerprint (exact-compare
            # confirmed); a hit is a valid single-edge EID without any
            # PRF work — successful extractions are exactly such rows.
            hit_ei = None
            nz = (flat != 0).any(axis=1)
            if m_edges:
                mixed = _mix_words(flat, mix_consts)
                pos = np.searchsorted(mixed_sorted, mixed)
                pos_c = np.minimum(pos, m_edges - 1)
                cand_ei = mixed_order[pos_c]
                hit = (
                    nz
                    & (mixed_sorted[pos_c] == mixed)
                    & (flat == st.eid_words[cand_ei]).all(axis=1)
                )
                hit_ei = cand_ei
            else:  # pragma: no cover - hard queries imply edges
                hit = np.zeros(R * levels, dtype=bool)
            # Unknown nonzero words take the deduplicated PRF test of
            # Lemma 3.10 (it is a pure function of the word value).
            need = nz & ~hit
            prf_dec: dict[int, DecodedEid] = {}
            valid_flat = hit
            if need.any():
                rows_nz = np.flatnonzero(need)
                sub = flat[rows_nz]
                if width == 1:
                    _, uidx, u_inv = np.unique(
                        sub[:, 0], return_index=True, return_inverse=True
                    )
                else:
                    void = sub.view(np.dtype((np.void, width * 8))).ravel()
                    _, uidx, u_inv = np.unique(
                        void, return_index=True, return_inverse=True
                    )
                v2, d2 = eids.try_decode_words(sub[uidx])
                ok = v2[u_inv]
                if ok.any():
                    valid_flat = hit.copy()
                    valid_flat[rows_nz] = ok
                    for fr, k in zip(
                        rows_nz[ok].tolist(), u_inv[ok].tolist()
                    ):
                        prf_dec[fr] = d2[k]
            valid = valid_flat.reshape(R, levels)
            has = valid.any(axis=1)
            if not has.any():
                continue
            first = np.argmax(valid, axis=1).tolist()
            for i in np.flatnonzero(has).tolist():
                h, _r = ext_meta[i]
                fr = i * levels + first[i]
                d = prf_dec.get(fr)
                if d is None:
                    ei = int(hit_ei[fr])
                    d = edge_decoded.get(ei)
                    if d is None:
                        d = eids.try_decode(eid_cache[ei])
                        edge_decoded[ei] = d
                forest = forests[h]
                cu = forest.locate(d.anc_u)
                cv = forest.locate(d.anc_v)
                uf = ufs[h]
                ru, rv = uf.find(cu), uf.find(cv)
                if ru == rv:
                    continue
                uf.union(ru, rv)
                keep = uf.find(ru)
                lose = rv if keep == ru else ru
                # Merged sketch = XOR of the constituents' sketches:
                # concatenate gather and cancellation lists instead of
                # folding full sketch rows.
                qrows = grows[h]
                qrows[keep] = qrows[keep] + qrows[lose]
                qevs = gevs[h]
                if qevs[lose]:
                    qevs[keep] = qevs[keep] + qevs[lose]
                roots_of[h].remove(lose)
                merges[h].append((d, cu, cv))

        return [(forests[h], ufs[h], merges[h], phases[h]) for h in range(H)]

    def _tlabel(self, v: int) -> Optional[int]:
        return self._routing.tlabel_of(v) if self._routing is not None else None

    def edge_for_eid(self, eid: int) -> Optional[int]:
        """Edge index behind a packed EID, or ``None`` if the EID does
        not belong to this scheme's store (foreign or corrupted).

        The packed routing engine uses this both to materialize the
        label of a 0-segment fault and to map the learned fault onto a
        store edge index for its partition-cache retry decodes — the
        same resolution :meth:`decode` performs internally.
        """
        if self._eid_to_edge is None:
            self._eid_to_edge = {e: i for i, e in enumerate(self._eid_cache)}
        return self._eid_to_edge.get(eid)

    def label_for_eid(self, eid: int, component: int = 0) -> SkEdgeLabel:
        """The edge label behind a packed EID (packed-store lookup).

        Used by the routing engine to turn an EID learned from a path
        description back into a label; unknown EIDs fall back to a bare
        non-tree label carrying the given component, mirroring the
        engine's previous reconstruction.
        """
        ei = self.edge_for_eid(eid)
        if ei is not None:
            return self.edge_label(ei)
        return SkEdgeLabel(
            component=component, eid=eid, is_tree=False, context=self.context
        )

    # ------------------------------------------------------------------
    # Convenience wrapper used by examples and benches
    # ------------------------------------------------------------------
    def query(
        self, s: int, t: int, faults: Iterable[int], copy: int = 0
    ) -> SkDecodeResult:
        """Full-pipeline query on edge indices (label lookup + decode).

        Delegates to the batched engine with batch size 1 on the
        vectorized scheme; the reference scheme runs the seed decoder.
        """
        if self._prefix is not None:
            return self._decode_batch(
                [(int(s), int(t), list(faults))], copy=copy, want_path=True
            )[0]
        return self._decode_labels(
            self.vertex_label(s),
            self.vertex_label(t),
            [self.edge_label(ei) for ei in faults],
            copy,
            True,
        )
