"""FT connectivity labels via graph sketches (Section 3.2, Theorem 3.7).

Labeling (Section 3.2.1):

* every vertex label carries ``(ANC_T(u), ID(u))`` (Eq. 3), plus the
  tree-routing label ``L_T(u)`` in routing mode (Eq. 6);
* every non-tree edge label is its extended identifier ``EID_T(e)``;
* every tree edge label additionally carries the subtree sketch
  ``Sketch(V(T_child))``, the global sketch ``Sketch(V)``, and the seeds
  ``S_ID`` and ``S_h`` — O(log^3 n) bits in total.

Decoding (Section 3.2.2), given the labels of ``s``, ``t`` and the fault
set F:

1. identify the components of ``T \\ F_T`` from ancestry labels
   (Claim 3.14, :mod:`repro.core.component_tree`);
2. compute each component's sketch in G from the subtree sketches
   (Claim 3.15);
3. cancel the faulty edges out of the component sketches;
4. simulate Boruvka phases over the components, one fresh sketch unit
   per phase, until the components stop merging; ``s`` and ``t`` are
   connected iff their components merged.

When connected, the decoder also emits the succinct s-t path of
Lemma 3.17 (O(f) recovery-edge / tree-path segments), which the routing
schemes of Section 5 consume.

``copies`` builds the f' = f+1 independent sketch collections required
by the fault-tolerant routing scheme (Section 5.2): all copies share the
extended identifiers (same ``S_ID``) and differ only in the sketch seeds
``S_h^1..S_h^{f'}``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro._util import derive_seed
from repro.core.component_tree import ComponentForest, orient_tree_edge
from repro.core.path_description import PathSegment, SuccinctPath
from repro.graph.ancestry import AncestryLabeling, AncLabel
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.sketches.edge_ids import DecodedEid, ExtendedEdgeIds, UidScheme
from repro.sketches.hashing import PairwiseHashFamily
from repro.sketches.sketch import (
    SketchDims,
    VertexSketches,
    eids_to_word_matrix,
    word_matrix_to_eids,
)
from repro.sizing.bits import bits_for_count, bits_for_id
from repro.trees.union_find import UnionFind


def default_units(n: int) -> int:
    """Default number of basic sketch units L = Theta(log n)."""
    return 2 * max(2, math.ceil(math.log2(max(n, 4)))) + 8


@dataclass(frozen=True)
class RoutingAugmentation:
    """Extra fields embedded into EIDs for the routing schemes (Eq. 5).

    ``tlabel_of(v)`` returns the encoded Thorup-Zwick tree-routing label
    of ``v`` as an integer of at most ``tlabel_bits`` bits.
    """

    port_bits: int
    tlabel_bits: int
    tlabel_of: Callable[[int], int]


@dataclass(frozen=True)
class SketchContext:
    """Decoder-visible constants: what the seeds in the labels determine.

    Conceptually this is (S_ID, S_h^1.., n, m) — the decoder
    reconstructs the hash families and the EID codec from them.  It is
    shared by reference between labels and counted once per tree-edge
    label in the bit accounting.
    """

    dims: SketchDims
    eids: ExtendedEdgeIds
    sketchers: tuple[VertexSketches, ...]

    @property
    def copies(self) -> int:
        return len(self.sketchers)

    def seed_bits(self) -> int:
        return UidScheme.SEED_BITS + sum(s.family.seed_bits() for s in self.sketchers)


@dataclass(frozen=True)
class SkVertexLabel:
    """Vertex label (Eq. 3 / Eq. 6): component, id, ancestry, tree label."""

    component: int
    vid: int
    anc: AncLabel
    n: int
    tlabel: Optional[int] = None
    tlabel_bits: int = 0

    def bit_length(self) -> int:
        bits = (
            bits_for_count(self.component)
            + bits_for_id(self.n)
            + AncestryLabeling.bit_length(self.n)
        )
        if self.tlabel is not None:
            bits += self.tlabel_bits
        return bits


@dataclass(frozen=True)
class SkEdgeLabel:
    """Edge label: EID for non-tree edges; EID + sketches + seeds for
    tree edges (per-copy child-subtree sketch and the global sketch)."""

    component: int
    eid: int
    is_tree: bool
    context: SketchContext
    subtree: Optional[tuple[np.ndarray, ...]] = None
    global_sketch: Optional[tuple[np.ndarray, ...]] = None

    def bit_length(self) -> int:
        bits = bits_for_count(self.component) + self.context.eids.total_bits + 1
        if self.is_tree:
            cell_bits = self.context.eids.total_bits
            sketch_bits = self.context.dims.cell_count() * cell_bits
            bits += 2 * self.context.copies * sketch_bits  # subtree + global
            bits += self.context.seed_bits()
        return bits


@dataclass(frozen=True)
class SkDecodeResult:
    """Decoder verdict plus the Lemma 3.17 succinct path when connected."""

    connected: bool
    path: Optional[SuccinctPath] = None
    phases_used: int = 0


@dataclass(frozen=True)
class ConnectivityPartition:
    """The full G \\ F component structure over the T \\ F_T components.

    Output of :meth:`SketchConnectivityScheme.decode_partition`: one
    decode answers *all* same-component queries for a fixed fault set —
    two labeled vertices are connected in ``G \\ F`` iff their groups
    match.  ``component`` is None when the queried vertex lies in a
    different connected component of G than the fault set's.
    """

    component: int  # the G-component this partition describes
    forest: ComponentForest
    group_of: tuple[int, ...]  # T\F_T component index -> group id

    def group(self, vertex_label: "SkVertexLabel") -> Optional[int]:
        """Group id of a labeled vertex (None if in another G-component)."""
        if vertex_label.component != self.component:
            return None
        return self.group_of[self.forest.locate(vertex_label.anc)]

    def same_component(
        self, a: "SkVertexLabel", b: "SkVertexLabel"
    ) -> bool:
        """Are the two labeled vertices connected in G \\ F?"""
        if a.component != b.component:
            return False
        if a.component != self.component:
            raise ValueError("partition was built for a different component")
        return self.group(a) == self.group(b)

    @property
    def group_count(self) -> int:
        return len(set(self.group_of))


class SketchConnectivityScheme:
    """The full Section 3.2 scheme: labeling + Boruvka decoding."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        copies: int = 1,
        units: Optional[int] = None,
        routing: Optional[RoutingAugmentation] = None,
        trees: Optional[Sequence[RootedTree]] = None,
        id_of: Optional[Callable[[int], int]] = None,
        id_space: Optional[int] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
        engine: str = "csr",
    ):
        """``id_of``/``id_space``/``port_fn`` translate instance-local
        vertices to global ids/ports when the scheme runs on a tree-cover
        cluster (see Section 4/5); by default they are the identity.

        ``engine="csr"`` (default) builds labels through the vectorized
        CSR kernels; ``engine="reference"`` is the sequential pure-Python
        construction — both produce bit-identical labels (asserted by
        ``tests/test_csr_equivalence.py``), and the benchmark baseline
        times one against the other."""
        if copies < 1:
            raise ValueError("need at least one sketch copy")
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        vectorized = engine == "csr"
        self.graph = graph
        self.seed = seed
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self._id_space = id_space if id_space is not None else graph.n
        if trees is None:
            self.trees, self.comp_of = spanning_forest(graph, engine=engine)
        else:
            self.trees = list(trees)
            self.comp_of = [-1] * graph.n
            for ci, tree in enumerate(self.trees):
                for v in tree.vertices:
                    self.comp_of[v] = ci
        self._anc = [AncestryLabeling(tree, engine=engine) for tree in self.trees]
        self._routing = routing

        def anc_of(v: int) -> AncLabel:
            return self._anc[self.comp_of[v]].label(v)

        uid_scheme = UidScheme(derive_seed(seed, "uid"))
        if routing is None:
            eids = ExtendedEdgeIds(
                graph, uid_scheme, anc_of, id_of=id_of, id_space=id_space
            )
        else:
            eids = ExtendedEdgeIds(
                graph,
                uid_scheme,
                anc_of,
                port_bits=routing.port_bits,
                tlabel_bits=routing.tlabel_bits,
                tlabel_of=routing.tlabel_of,
                id_of=id_of,
                id_space=id_space,
                port_fn=port_fn,
            )
        if vectorized and eids.word_batchable:
            self._eid_words = eids.eid_words_batch()
            self._eid_ints: Optional[list] = None  # materialized on demand
        elif vectorized:
            # Wide-field layouts (e.g. big routing tree labels) can't go
            # through the word packer: batch the ints once and derive
            # the word matrix from them, rather than the reverse.
            self._eid_ints = eids.eid_batch()
            self._eid_words = eids_to_word_matrix(
                self._eid_ints, eids.codec.word_count
            )
        else:
            self._eid_words = None
            self._eid_ints = [eids.eid(ei) for ei in range(graph.m)]
        levels = max(1, math.ceil(math.log2(max(graph.m, 2)))) + 1
        n_units = units if units is not None else default_units(graph.n)
        words = max(1, (eids.total_bits + 63) // 64)
        dims = SketchDims(units=n_units, levels=levels, words=words)
        sketchers = tuple(
            VertexSketches(
                graph,
                dims,
                PairwiseHashFamily(
                    n_units, levels - 1, derive_seed(seed, "sketch_family", c)
                ),
                id_of=id_of,
                key_space=id_space,
            )
            for c in range(copies)
        )
        self.context = SketchContext(dims=dims, eids=eids, sketchers=sketchers)
        # Subtree-aggregated sketches.  Reference engine: ``_agg[c][v]``
        # holds the sketch of subtree(v) (post-order accumulation).  CSR
        # engine: subtrees are contiguous preorder intervals, so we keep
        # per-copy *prefix-XOR* tensors over the forest preorder instead
        # (``_prefix[c][r]`` = XOR of the vertex sketches of the first
        # ``r`` preorder vertices) and materialize any subtree sketch as
        # the XOR of two rows on demand — one pass of sequential
        # accumulation replaces the whole bottom-up tree walk.
        self._agg: Optional[list[np.ndarray]] = None
        self._prefix: Optional[list[np.ndarray]] = None
        self._root_cache: dict[int, tuple] = {}
        if vectorized:
            pre = np.full(graph.n, -1, dtype=np.int64)
            size_all = np.zeros(graph.n, dtype=np.int64)
            offset = 0
            for tree in self.trees:
                ta = tree.arrays()
                pre[ta.order] = offset + np.arange(ta.order.size, dtype=np.int64)
                size_all[ta.order] = ta.size[ta.order]
                offset += ta.order.size
            self._pre = pre
            self._size = size_all
            # Unspanned vertices (possible with explicitly provided
            # trees) scatter into a trailing trash row that no subtree
            # interval ever reads.
            row_of = np.where(pre >= 0, pre + 1, offset + 1)
            # The scatter layout is identical for every copy (only the
            # hash families differ), so compute it once.
            plan = sketchers[0].scatter_plan(row_of) if graph.m else None
            self._prefix = [
                sketchers[c].build_prefix(
                    self._eid_words, row_of=row_of, rows=offset + 2, plan=plan
                )
                for c in range(copies)
            ]
            if self._eid_ints is not None:
                # Ints are already materialized (wide-field layout); the
                # word matrix has no reader after the builds above.
                self._eid_words = None
        else:
            self._agg = []
            for c in range(copies):
                arr = sketchers[c].build_reference(lambda ei: self._eid_cache[ei])
                for tree in self.trees:
                    for v in tree.post_order():
                        p = tree.parent[v]
                        if p >= 0:
                            arr[p] ^= arr[v]
                self._agg.append(arr)

    @property
    def _eid_cache(self) -> list:
        """Packed EIDs by edge index (lazily decoded from the word
        matrix on the vectorized path — labels need Python ints, the
        sketch builder does not)."""
        if self._eid_ints is None:
            self._eid_ints = word_matrix_to_eids(self._eid_words)
            # The word matrix's only post-construction reader is this
            # decode; drop it so both representations don't stay live.
            self._eid_words = None
        return self._eid_ints

    def _subtree_sketches(self, v: int) -> tuple[np.ndarray, ...]:
        """Per-copy sketch of subtree(v) (``Sketch(V(T_v))``).

        On the vectorized path a subtree sketch is the XOR of two
        prefix rows followed by the level suffix-XOR that turns
        exact-level cells into Eq. 2's cumulative cells.
        """
        if self._prefix is not None:
            a = int(self._pre[v])
            b = a + int(self._size[v])
            return tuple(
                VertexSketches.suffix_levels(p[b] ^ p[a]) for p in self._prefix
            )
        return tuple(agg[v] for agg in self._agg)

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def vertex_label(self, v: int) -> SkVertexLabel:
        ci = self.comp_of[v]
        tlabel = None
        tlabel_bits = 0
        if self._routing is not None:
            tlabel = self._routing.tlabel_of(v)
            tlabel_bits = self._routing.tlabel_bits
        return SkVertexLabel(
            component=ci,
            vid=self._id_of(v),
            anc=self._anc[ci].label(v),
            n=self._id_space,
            tlabel=tlabel,
            tlabel_bits=tlabel_bits,
        )

    def edge_label(self, edge_index: int) -> SkEdgeLabel:
        e = self.graph.edge(edge_index)
        ci = self.comp_of[e.u]
        tree = self.trees[ci]
        is_tree = tree.is_tree_edge(edge_index)
        subtree = None
        global_sketch = None
        if is_tree:
            child = tree.child_endpoint(edge_index)
            subtree = self._subtree_sketches(child)
            # The per-component global sketch is shared by all of the
            # tree's edge labels; cache it instead of re-materializing.
            global_sketch = self._root_cache.get(tree.root)
            if global_sketch is None:
                global_sketch = self._subtree_sketches(tree.root)
                self._root_cache[tree.root] = global_sketch
        return SkEdgeLabel(
            component=ci,
            eid=self._eid_cache[edge_index],
            is_tree=is_tree,
            context=self.context,
            subtree=subtree,
            global_sketch=global_sketch,
        )

    def max_vertex_label_bits(self) -> int:
        return max(
            (self.vertex_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    def max_edge_label_bits(self) -> int:
        return max(
            (self.edge_label(e.index).bit_length() for e in self.graph.edges),
            default=0,
        )

    # ------------------------------------------------------------------
    # Decoding (Section 3.2.2)
    # ------------------------------------------------------------------
    def decode(
        self,
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        fault_labels: Iterable[SkEdgeLabel],
        copy: int = 0,
        want_path: bool = True,
    ) -> SkDecodeResult:
        """Decide s-t connectivity in ``G \\ F`` from labels only.

        ``copy`` selects which of the f' independent sketch collections
        to consume (the FT routing scheme uses a fresh copy per retry
        iteration).
        """
        if s_label.component != t_label.component:
            return SkDecodeResult(connected=False)
        if s_label.vid == t_label.vid:
            return SkDecodeResult(
                connected=True, path=SuccinctPath(s_label.vid, t_label.vid, ())
            )
        faults: list[SkEdgeLabel] = []
        seen: set[int] = set()
        for lab in fault_labels:
            if lab.component != s_label.component or lab.eid in seen:
                continue
            seen.add(lab.eid)
            faults.append(lab)
        tree_faults = [lab for lab in faults if lab.is_tree]
        if not tree_faults:
            # T is intact: same component implies connected via the tree.
            path = self._direct_tree_path(s_label, t_label) if want_path else None
            return SkDecodeResult(connected=True, path=path)

        forest, uf, merges, phases = self._simulate_boruvka(
            faults, tree_faults, copy
        )
        cs = forest.locate(s_label.anc)
        ct = forest.locate(t_label.anc)
        if not uf.same(cs, ct):
            return SkDecodeResult(connected=False, phases_used=phases)
        path = None
        if want_path:
            path = self._build_path(s_label, t_label, forest, merges, cs, ct)
        return SkDecodeResult(connected=True, path=path, phases_used=phases)

    def _simulate_boruvka(
        self,
        faults: Sequence[SkEdgeLabel],
        tree_faults: Sequence[SkEdgeLabel],
        copy: int,
    ) -> tuple[ComponentForest, UnionFind, list, int]:
        """Steps 1-4 of the decoder (Section 3.2.2): component tree,
        component sketches, fault cancellation, Boruvka merging."""
        ctx = tree_faults[0].context
        sketcher = ctx.sketchers[copy]
        decoded_faults = [ctx.eids.try_decode(lab.eid) for lab in faults]
        if any(d is None for d in decoded_faults):
            raise ValueError("fault label carries a corrupted EID")

        # Step 1: components of T \ F_T.
        children: list[AncLabel] = []
        refs: list[int] = []
        for pos, lab in enumerate(faults):
            if not lab.is_tree:
                continue
            d = decoded_faults[pos]
            child_anc, _ = orient_tree_edge(d.anc_u, d.anc_v)
            children.append(child_anc)
            refs.append(pos)
        forest = ComponentForest.build(children, refs=refs)

        # Step 2: per-component sketches in G (Claim 3.15).
        num_comps = len(forest)
        prime = [None] * num_comps  # Sketch'(C_j)
        for j in range(1, num_comps):
            pos = forest.components[j].ref
            prime[j] = faults[pos].subtree[copy]
        prime[0] = tree_faults[0].global_sketch[copy]
        comp_sketch: list[np.ndarray] = [None] * num_comps
        for j in range(num_comps):
            sketch = prime[j].copy()
            for child in forest.children_of(j):
                sketch ^= prime[child]
            comp_sketch[j] = sketch

        # Step 3: cancel faulty edges out of the component sketches.
        for pos, lab in enumerate(faults):
            d = decoded_faults[pos]
            cu = forest.locate(d.anc_u)
            cv = forest.locate(d.anc_v)
            if cu != cv:
                sketcher.cancel_edge(comp_sketch[cu], d.u, d.v, lab.eid)
                sketcher.cancel_edge(comp_sketch[cv], d.u, d.v, lab.eid)

        # Step 4: Boruvka phases over the components, one fresh unit each.
        uf = UnionFind(num_comps)
        sketch_of: dict[int, np.ndarray] = {j: comp_sketch[j] for j in range(num_comps)}
        merges: list[tuple[DecodedEid, int, int]] = []
        phases = 0
        for unit in range(ctx.dims.units):
            roots = sorted({uf.find(j) for j in range(num_comps)})
            if len(roots) == 1:
                break
            phases += 1
            candidates: list[DecodedEid] = []
            for r in roots:
                d = VertexSketches.extract_outgoing(sketch_of[r], unit, ctx.eids)
                if d is not None:
                    candidates.append(d)
            for d in candidates:
                cu = forest.locate(d.anc_u)
                cv = forest.locate(d.anc_v)
                ru, rv = uf.find(cu), uf.find(cv)
                if ru == rv:
                    continue
                merged = sketch_of.pop(ru) ^ sketch_of.pop(rv)
                uf.union(ru, rv)
                sketch_of[uf.find(ru)] = merged
                merges.append((d, cu, cv))
        return forest, uf, merges, phases

    def decode_partition(
        self,
        component: int,
        fault_labels: Iterable[SkEdgeLabel],
        copy: int = 0,
    ) -> ConnectivityPartition:
        """One decode, all queries: the G \\ F component structure.

        Returns a :class:`ConnectivityPartition` over the queried
        G-component; any two vertex labels of that component can then be
        tested for connectivity in O(log f) without re-decoding.  (The
        per-query w.h.p. guarantee of Theorem 3.7 applies to the fault
        set as a whole.)
        """
        faults: list[SkEdgeLabel] = []
        seen: set[int] = set()
        for lab in fault_labels:
            if lab.component != component or lab.eid in seen:
                continue
            seen.add(lab.eid)
            faults.append(lab)
        tree_faults = [lab for lab in faults if lab.is_tree]
        if not tree_faults:
            forest = ComponentForest.build([])
            return ConnectivityPartition(
                component=component, forest=forest, group_of=(0,)
            )
        forest, uf, _, _ = self._simulate_boruvka(faults, tree_faults, copy)
        group_of = tuple(uf.find(j) for j in range(len(forest)))
        return ConnectivityPartition(
            component=component, forest=forest, group_of=group_of
        )

    # ------------------------------------------------------------------
    # Path construction (Lemma 3.17)
    # ------------------------------------------------------------------
    def _direct_tree_path(
        self, s_label: SkVertexLabel, t_label: SkVertexLabel
    ) -> SuccinctPath:
        segment = PathSegment(
            kind="tree",
            x=s_label.vid,
            y=t_label.vid,
            tlabel_x=s_label.tlabel,
            tlabel_y=t_label.tlabel,
        )
        return SuccinctPath(s_label.vid, t_label.vid, (segment,))

    @staticmethod
    def _build_path(
        s_label: SkVertexLabel,
        t_label: SkVertexLabel,
        forest: ComponentForest,
        merges: Sequence[tuple[DecodedEid, int, int]],
        cs: int,
        ct: int,
    ) -> SuccinctPath:
        """Assemble the alternating 0/1-labeled path from the merge forest."""
        if cs == ct:
            segment = PathSegment(
                kind="tree",
                x=s_label.vid,
                y=t_label.vid,
                tlabel_x=s_label.tlabel,
                tlabel_y=t_label.tlabel,
            )
            return SuccinctPath(s_label.vid, t_label.vid, (segment,))
        adjacency: dict[int, list[tuple[int, DecodedEid]]] = {}
        for d, cu, cv in merges:
            adjacency.setdefault(cu, []).append((cv, d))
            adjacency.setdefault(cv, []).append((cu, d))
        # BFS over the merge forest from cs to ct.
        prev: dict[int, tuple[int, DecodedEid]] = {}
        queue = deque([cs])
        visited = {cs}
        while queue:
            c = queue.popleft()
            if c == ct:
                break
            for nxt, d in adjacency.get(c, ()):  # noqa: B905
                if nxt in visited:
                    continue
                visited.add(nxt)
                prev[nxt] = (c, d)
                queue.append(nxt)
        if ct not in visited:
            raise RuntimeError("merge forest inconsistent with connectivity verdict")
        hops: list[tuple[int, int, DecodedEid]] = []  # (from_comp, to_comp, edge)
        c = ct
        while c != cs:
            pc, d = prev[c]
            hops.append((pc, c, d))
            c = pc
        hops.reverse()
        segments: list[PathSegment] = []
        current_vertex = s_label.vid
        current_tlabel = s_label.tlabel
        for from_comp, to_comp, d in hops:
            # Orient the recovery edge: x in from_comp, y in to_comp.
            if forest.locate(d.anc_u) == from_comp:
                x, y = d.u, d.v
                anc_x, port_x, tl_x = d.anc_u, d.port_u, d.tlabel_u
                port_y, tl_y = d.port_v, d.tlabel_v
            else:
                x, y = d.v, d.u
                anc_x, port_x, tl_x = d.anc_v, d.port_v, d.tlabel_v
                port_y, tl_y = d.port_u, d.tlabel_u
            if current_vertex != x:
                segments.append(
                    PathSegment(
                        kind="tree",
                        x=current_vertex,
                        y=x,
                        tlabel_x=current_tlabel,
                        tlabel_y=tl_x,
                    )
                )
            segments.append(
                PathSegment(
                    kind="edge",
                    x=x,
                    y=y,
                    port_x=port_x,
                    port_y=port_y,
                    tlabel_x=tl_x,
                    tlabel_y=tl_y,
                    eid=d.raw,
                )
            )
            current_vertex = y
            current_tlabel = tl_y
        if current_vertex != t_label.vid:
            segments.append(
                PathSegment(
                    kind="tree",
                    x=current_vertex,
                    y=t_label.vid,
                    tlabel_x=current_tlabel,
                    tlabel_y=t_label.tlabel,
                )
            )
        return SuccinctPath(s_label.vid, t_label.vid, tuple(segments))

    # ------------------------------------------------------------------
    # Convenience wrapper used by examples and benches
    # ------------------------------------------------------------------
    def query(
        self, s: int, t: int, faults: Iterable[int], copy: int = 0
    ) -> SkDecodeResult:
        """Full-pipeline query on edge indices (label lookup + decode)."""
        return self.decode(
            self.vertex_label(s),
            self.vertex_label(t),
            [self.edge_label(ei) for ei in faults],
            copy=copy,
        )
