"""Cycle space sampling [Pritchard & Thurimella, TALG '11].

The substrate behind the first FT connectivity labeling scheme
(Section 3.1 / Appendix B of the paper): b-bit edge labels ``phi(e)``
such that ``XOR_{e in F} phi(e) = 0`` with probability 1 when F is an
induced edge cut and probability ``2^-b`` otherwise (Lemma 1.7).
"""

from repro.cycle_space.circulation import random_binary_circulation
from repro.cycle_space.labels import CycleSpaceLabels

__all__ = ["random_binary_circulation", "CycleSpaceLabels"]
