"""Random binary circulations (Appendix B of the paper, following [PT11]).

A *binary circulation* is an edge set in which every vertex has even
degree.  The fundamental cycles of a spanning tree form a basis of the
cycle space, so a uniformly random circulation is obtained by picking
each non-tree edge independently with probability 1/2 and adding every
tree edge that lies on an odd number of the chosen fundamental cycles.

The tree-edge parities are computed with a single subtree aggregation:
a tree edge (v, parent(v)) lies on the fundamental cycle of a non-tree
edge e iff exactly one endpoint of e is in the subtree of v, so the
parity at v is the XOR of per-endpoint indicator bits aggregated over
the subtree (endpoints inside the subtree twice cancel).
"""

from __future__ import annotations

from repro._util import rng_from
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree


def random_binary_circulation(
    graph: Graph, tree: RootedTree, seed: int = 0
) -> set[int]:
    """Sample a uniformly random binary circulation of ``tree``'s component.

    Returns the set of edge indices in the circulation.  Only edges with
    both endpoints in the tree's component participate.
    """
    rng = rng_from(seed, "circulation")
    in_comp = tree.in_tree
    chosen_nontree: set[int] = set()
    acc = [0] * graph.n  # per-vertex parity accumulator
    for e in graph.edges:
        if e.index in tree.tree_edge_indices:
            continue
        if not (in_comp[e.u] and in_comp[e.v]):
            continue
        if int(rng.integers(0, 2)) == 1:
            chosen_nontree.add(e.index)
            acc[e.u] ^= 1
            acc[e.v] ^= 1
    circulation = set(chosen_nontree)
    # Subtree XOR aggregation in post-order.
    sub = list(acc)
    for v in tree.post_order():
        p = tree.parent[v]
        if p >= 0:
            if sub[v]:
                circulation.add(tree.parent_edge[v])
            sub[p] ^= sub[v]
    return circulation
