"""Cycle-space edge labels (Lemma 1.7 of the paper).

``CycleSpaceLabels.build`` assigns every edge a b-bit label ``phi(e)``
equal to the characteristic vector of the edge over b independent random
binary circulations.  For any edge subset F:

* if F is an induced edge cut, ``XOR_{e in F} phi(e) = 0`` always;
* otherwise the XOR is 0 with probability ``2^-b``.

Assignment runs in O((m + n) b) word operations: every non-tree edge
draws a random b-bit word, and tree-edge words are the XOR of incident
subtree accumulators (one post-order pass), mirroring the paper's
fundamental-cycle computation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro._util import rng_from
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree


class CycleSpaceLabels:
    """b-bit cycle-space labels ``phi(e)`` for one spanning-tree component."""

    def __init__(self, graph: Graph, tree: RootedTree, b: int, phi: Sequence[int]):
        self.graph = graph
        self.tree = tree
        self.b = b
        self._phi = list(phi)

    @classmethod
    def build(cls, graph: Graph, tree: RootedTree, b: int, seed: int = 0) -> "CycleSpaceLabels":
        """Assign labels for the component spanned by ``tree``.

        Edges outside the component get label 0 (they are never part of
        a same-component query).
        """
        if b < 1:
            raise ValueError("label width b must be >= 1")
        rng = rng_from(seed, "cycle_space_labels", b)
        in_comp = tree.in_tree
        phi = [0] * graph.m
        acc = [0] * graph.n
        nbytes = (b + 7) // 8
        mask = (1 << b) - 1
        for e in graph.edges:
            if e.index in tree.tree_edge_indices:
                continue
            if not (in_comp[e.u] and in_comp[e.v]):
                continue
            value = int.from_bytes(rng.bytes(nbytes), "big") & mask
            phi[e.index] = value
            acc[e.u] ^= value
            acc[e.v] ^= value
        sub = list(acc)
        for v in tree.post_order():
            p = tree.parent[v]
            if p >= 0:
                phi[tree.parent_edge[v]] = sub[v]
                sub[p] ^= sub[v]
        return cls(graph, tree, b, phi)

    def phi(self, edge_index: int) -> int:
        """The b-bit label of an edge (as an int)."""
        return self._phi[edge_index]

    def xor_over(self, edge_indices: Iterable[int]) -> int:
        value = 0
        for ei in edge_indices:
            value ^= self._phi[ei]
        return value

    def looks_like_induced_cut(self, edge_indices: Iterable[int]) -> bool:
        """Lemma 1.7 test: XOR of labels is zero.

        Always true for induced edge cuts; false positives occur with
        probability 2^-b for other sets.
        """
        return self.xor_over(edge_indices) == 0

    def bit_length(self) -> int:
        """Per-edge label size in bits."""
        return self.b
