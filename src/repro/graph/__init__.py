"""Graph substrate: weighted port-numbered graphs, trees, ancestry labels.

``Graph`` is the mutable pure-Python builder; ``CsrGraph`` (obtained via
``Graph.as_csr()``) is its frozen array view backing the vectorized
kernels of :mod:`repro.graph.csr` — see ``src/repro/graph/README.md``
for the split.
"""

from repro.graph.graph import Edge, Graph, InducedSubgraph
from repro.graph.components import connected_components, is_connected
from repro.graph.csr import CsrGraph
from repro.graph.spanning_tree import RootedTree, TreeArrays, spanning_forest
from repro.graph.ancestry import AncestryLabeling, is_ancestor

__all__ = [
    "Edge",
    "Graph",
    "InducedSubgraph",
    "CsrGraph",
    "connected_components",
    "is_connected",
    "RootedTree",
    "TreeArrays",
    "spanning_forest",
    "AncestryLabeling",
    "is_ancestor",
]
