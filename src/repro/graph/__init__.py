"""Graph substrate: weighted port-numbered graphs, trees, ancestry labels."""

from repro.graph.graph import Edge, Graph, InducedSubgraph
from repro.graph.components import connected_components, is_connected
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.graph.ancestry import AncestryLabeling, is_ancestor

__all__ = [
    "Edge",
    "Graph",
    "InducedSubgraph",
    "connected_components",
    "is_connected",
    "RootedTree",
    "spanning_forest",
    "AncestryLabeling",
    "is_ancestor",
]
