"""Ancestry labels for trees (Lemma 3.1, [KNR92]).

Each vertex receives the pair of first/last DFS visit times
``(DFS1(v), DFS2(v))``; ``u`` is an ancestor of ``v`` iff ``u``'s
interval contains ``v``'s.  Labels take ``2 * ceil(log2(2n))`` bits and
ancestor queries take O(1) time, exactly as Lemma 3.1 requires.

The decoding algorithm of the sketch-based scheme (Claim 3.14) relies on
the specific DFS-interval structure of these labels (sorting the interval
endpoints reconstructs the component tree), which is why this module
exposes raw ``(tin, tout)`` tuples rather than opaque labels.

Memory model: the canonical interval store is a numpy ``(tin, tout)``
pair (:meth:`AncestryLabeling.interval_arrays`); the ``_tin``/``_tout``
list attributes the sequential path builds are lazy views on the array
engine.  Trees belonging to one :class:`~repro.graph.spanning_tree.Forest`
share a single full-n interval pair computed in closed form for the
whole forest at once — O(n) for any number of components, each
component's times independently spanning ``1..2n_comp`` exactly as a
per-tree DFS would assign them.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.graph import csr as csrk
from repro.graph.spanning_tree import RootedTree


AncLabel = tuple[int, int]


def is_ancestor(a: AncLabel, b: AncLabel) -> bool:
    """True iff the vertex labeled ``a`` is an ancestor of (or equals) ``b``."""
    return a[0] <= b[0] and b[1] <= a[1]


def strict_ancestor(a: AncLabel, b: AncLabel) -> bool:
    """True iff ``a`` is a proper ancestor of ``b``."""
    return is_ancestor(a, b) and a != b


class AncestryLabeling:
    """DFS interval labels for one rooted tree.

    ``label(v)`` returns ``(tin, tout)`` with times in ``1..2n``; the
    label of a vertex outside the tree's component is undefined and
    querying it raises ``ValueError``.
    """

    def __init__(self, tree: RootedTree, engine: str = "csr"):
        """``engine="csr"`` derives the DFS visit times in closed form
        from the tree's array view (see
        :func:`repro.graph.csr.dfs_interval_labels`), sharing one
        forest-wide store when the tree is a forest component;
        ``engine="reference"`` is the sequential DFS producing identical
        labels."""
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.tree = tree
        n = tree.graph.n
        self._tin_np: Optional[np.ndarray] = None
        self._tout_np: Optional[np.ndarray] = None
        self._tin_list: Optional[list[int]] = None
        self._tout_list: Optional[list[int]] = None
        #: True when ``interval_arrays()`` is a forest-wide store whose
        #: slots are meaningful at EVERY vertex (each carrying its own
        #: component's times) rather than zero outside this tree.
        self.shared = False
        if engine == "csr":
            forest = tree._forest
            if forest is not None:
                self._tin_np, self._tout_np = forest.interval_store()
                self.shared = forest.comp_count > 1
            else:
                arr = tree.arrays()
                self._tin_np, self._tout_np = csrk.dfs_interval_labels(
                    arr.order, arr.depth, arr.size, n
                )
            self.max_time = 2 * tree.arrays().order.shape[0]
            return
        tin = [0] * n
        tout = [0] * n
        time = 0
        # Iterative DFS producing first/last visit times.
        stack: list[tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                time += 1
                tout[v] = time
                continue
            time += 1
            tin[v] = time
            stack.append((v, True))
            for c in reversed(tree.children[v]):
                stack.append((c, False))
        self._tin_list = tin
        self._tout_list = tout
        self.max_time = time

    # -- canonical numpy store -----------------------------------------
    def interval_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(tin, tout)`` int64 arrays.

        Zero outside the tree's component — except when :attr:`shared`
        is true (forest-wide store), where every vertex carries its own
        component's times; mask by component before trusting foreign
        slots in that case.
        """
        if self._tin_np is None:
            self._tin_np = np.array(self._tin_list, dtype=np.int64)
            self._tout_np = np.array(self._tout_list, dtype=np.int64)
        return self._tin_np, self._tout_np

    # -- lazy list compatibility views ---------------------------------
    def _materialize_lists(self) -> None:
        tin, tout = self._tin_np, self._tout_np
        if self.shared:
            # Mask foreign components back to the classic zero padding.
            mask = self.tree._forest.comp_of == self.tree._comp
            tin = np.where(mask, tin, 0)
            tout = np.where(mask, tout, 0)
        self._tin_list = tin.tolist()
        self._tout_list = tout.tolist()

    @property
    def _tin(self) -> list[int]:
        if self._tin_list is None:
            self._materialize_lists()
        return self._tin_list

    @property
    def _tout(self) -> list[int]:
        if self._tout_list is None:
            self._materialize_lists()
        return self._tout_list

    def label(self, v: int) -> AncLabel:
        if self._tin_list is not None:
            ti = self._tin_list[v]
            if ti == 0 and v != self.tree.root:
                raise ValueError(f"vertex {v} is not spanned by the tree")
            return (ti, self._tout_list[v])
        if not self.tree.spans(v):
            raise ValueError(f"vertex {v} is not spanned by the tree")
        return (int(self._tin_np[v]), int(self._tout_np[v]))

    def labels(self, vertices: Sequence[int]) -> list[AncLabel]:
        return [self.label(v) for v in vertices]

    def is_ancestor_vertices(self, u: int, v: int) -> bool:
        """Ancestor test on vertex ids (convenience for tests)."""
        return is_ancestor(self.label(u), self.label(v))

    @staticmethod
    def bit_length(n: int) -> int:
        """Label size in bits for an n-vertex tree: two DFS timestamps."""
        return 2 * max(1, math.ceil(math.log2(max(2 * n, 2))))


def stitched_intervals(
    ancs: Sequence[AncestryLabeling], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """One full-n ``(tin, tout)`` pair covering a whole forest.

    ``tin[v]``/``tout[v]`` are ``v``'s DFS times in its OWN component
    tree (0 where no tree spans ``v``).  When the labelings already
    share a forest-wide store this is that store, returned as-is;
    otherwise the per-tree arrays are scattered together — never summed,
    so the result is safe whether or not stores alias each other.
    """
    if ancs and ancs[0].shared:
        return ancs[0].interval_arrays()
    tin = np.zeros(n, dtype=np.int64)
    tout = np.zeros(n, dtype=np.int64)
    for anc in ancs:
        t_i, t_o = anc.interval_arrays()
        order = anc.tree.arrays().order
        tin[order] = t_i[order]
        tout[order] = t_o[order]
    return tin, tout


def edge_on_root_path(anc_u: AncLabel, anc_v: AncLabel, anc_x: AncLabel) -> bool:
    """True iff the tree edge with endpoint labels (anc_u, anc_v) lies on
    the root-to-x tree path.

    A tree edge (u, v) is on the root-x path iff both endpoints are
    ancestors of x (Section 3.1.2 of the paper).
    """
    return is_ancestor(anc_u, anc_x) and is_ancestor(anc_v, anc_x)
