"""Ancestry labels for trees (Lemma 3.1, [KNR92]).

Each vertex receives the pair of first/last DFS visit times
``(DFS1(v), DFS2(v))``; ``u`` is an ancestor of ``v`` iff ``u``'s
interval contains ``v``'s.  Labels take ``2 * ceil(log2(2n))`` bits and
ancestor queries take O(1) time, exactly as Lemma 3.1 requires.

The decoding algorithm of the sketch-based scheme (Claim 3.14) relies on
the specific DFS-interval structure of these labels (sorting the interval
endpoints reconstructs the component tree), which is why this module
exposes raw ``(tin, tout)`` tuples rather than opaque labels.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.graph import csr as csrk
from repro.graph.spanning_tree import RootedTree

AncLabel = tuple[int, int]


def is_ancestor(a: AncLabel, b: AncLabel) -> bool:
    """True iff the vertex labeled ``a`` is an ancestor of (or equals) ``b``."""
    return a[0] <= b[0] and b[1] <= a[1]


def strict_ancestor(a: AncLabel, b: AncLabel) -> bool:
    """True iff ``a`` is a proper ancestor of ``b``."""
    return is_ancestor(a, b) and a != b


class AncestryLabeling:
    """DFS interval labels for one rooted tree.

    ``label(v)`` returns ``(tin, tout)`` with times in ``1..2n``; the
    label of a vertex outside the tree's component is undefined and
    querying it raises ``KeyError``-like errors through normal indexing.
    """

    def __init__(self, tree: RootedTree, engine: str = "csr"):
        """``engine="csr"`` derives the DFS visit times in closed form
        from the tree's array view (see
        :func:`repro.graph.csr.dfs_interval_labels`);
        ``engine="reference"`` is the sequential DFS producing identical
        labels."""
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.tree = tree
        n = tree.graph.n
        if engine == "csr":
            arr = tree.arrays()
            tin, tout = csrk.dfs_interval_labels(arr.order, arr.depth, arr.size, n)
            self._tin = tin.tolist()
            self._tout = tout.tolist()
            self.max_time = 2 * len(arr.order)
            return
        self._tin = [0] * n
        self._tout = [0] * n
        time = 0
        # Iterative DFS producing first/last visit times.
        stack: list[tuple[int, bool]] = [(tree.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                time += 1
                self._tout[v] = time
                continue
            time += 1
            self._tin[v] = time
            stack.append((v, True))
            for c in reversed(tree.children[v]):
                stack.append((c, False))
        self.max_time = time

    def label(self, v: int) -> AncLabel:
        if self._tin[v] == 0 and v != self.tree.root:
            raise ValueError(f"vertex {v} is not spanned by the tree")
        return (self._tin[v], self._tout[v])

    def labels(self, vertices: Sequence[int]) -> list[AncLabel]:
        return [self.label(v) for v in vertices]

    def is_ancestor_vertices(self, u: int, v: int) -> bool:
        """Ancestor test on vertex ids (convenience for tests)."""
        return is_ancestor(self.label(u), self.label(v))

    @staticmethod
    def bit_length(n: int) -> int:
        """Label size in bits for an n-vertex tree: two DFS timestamps."""
        return 2 * max(1, math.ceil(math.log2(max(2 * n, 2))))


def edge_on_root_path(anc_u: AncLabel, anc_v: AncLabel, anc_x: AncLabel) -> bool:
    """True iff the tree edge with endpoint labels (anc_u, anc_v) lies on
    the root-to-x tree path.

    A tree edge (u, v) is on the root-x path iff both endpoints are
    ancestors of x (Section 3.1.2 of the paper).
    """
    return is_ancestor(anc_u, anc_x) and is_ancestor(anc_v, anc_x)
