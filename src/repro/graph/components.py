"""Connected components with optional forbidden (faulty) edge sets.

This is the exact, non-succinct substrate used (a) to apply the labeling
schemes per connected component, as prescribed in the preamble of
Section 3 of the paper, and (b) as ground truth in tests and benches.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.graph import Graph


def connected_components(
    graph: Graph, forbidden: Iterable[int] = (), engine: str = "csr"
) -> tuple[list[int], int]:
    """Label vertices by connected component of ``G \\ forbidden``.

    Returns ``(labels, count)`` where ``labels[v]`` is a component id in
    ``0..count-1``, assigned in order of the smallest vertex of each
    component (deterministic).  Both engines produce identical labels;
    ``"csr"`` runs the shared-array BFS kernel (one vectorized pass, no
    Python adjacency materialization), ``"reference"`` is the original
    queue-based traversal.
    """
    skip = set(forbidden)
    if engine == "csr":
        from repro.graph import csr as csrk

        mask = csrk.forbidden_mask(graph.m, skip)
        parts = csrk.bfs_forest(graph.as_csr(), mask)
        comp_of, roots = parts[3], parts[4]
        return comp_of.tolist(), int(roots.shape[0])
    labels = [-1] * graph.n
    count = 0
    for start in graph.vertices():
        if labels[start] != -1:
            continue
        labels[start] = count
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v, ei in graph.incident(u):
                if ei in skip or labels[v] != -1:
                    continue
                labels[v] = count
                queue.append(v)
        count += 1
    return labels, count


def is_connected(graph: Graph, forbidden: Iterable[int] = ()) -> bool:
    """True iff ``G \\ forbidden`` is connected (vacuously true for n<=1)."""
    if graph.n <= 1:
        return True
    _, count = connected_components(graph, forbidden)
    return count == 1
