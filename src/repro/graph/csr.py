"""Array-resident CSR view of a :class:`~repro.graph.graph.Graph` plus
the vectorized graph/tree kernels the label constructions run on.

The pure-Python :class:`Graph` stays the *mutable builder* and the
correctness reference; :class:`CsrGraph` is an immutable compressed
sparse row snapshot of it (``indptr``/``neighbors``/``edge_ids`` in
port order, per-edge endpoint and weight arrays) built once via
``Graph.as_csr()`` and cached until the next ``add_edge``.

Kernels provided here (all operating on numpy arrays):

* :func:`bfs_tree` — level-synchronous BFS producing the *same*
  parent/parent-edge assignment as the sequential port-order BFS of
  :meth:`RootedTree.bfs` (first hit in queue x port order wins);
* :func:`shortest_distances` — batched truncated SSSP from many
  sources at once (segmented-min Bellman-Ford rounds over the arc
  arrays).  Distances agree exactly with heap Dijkstra because both
  compute the same prefix sums along shortest paths;
* :func:`depth_layers` / :func:`subtree_sizes` / :func:`subtree_xor`
  / :func:`dfs_interval_labels` — per-depth-layer tree kernels used
  by ancestry labels, heavy-light decomposition and the subtree
  sketch aggregation (bottom-up XOR without a per-vertex Python loop);
* :func:`xor_scatter` — segmented XOR reduction (sort + ``reduceat``)
  backing :func:`subtree_xor`'s wide-row folds.  (The sketch builders
  scatter narrow per-word rows instead, where a plain ``ufunc.at`` is
  the faster primitive.)

Everything is deterministic: ties and orders mirror the pure-Python
implementations bit for bit, which the ``tests/test_csr_kernels.py``
property tests assert on random generator workloads.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.graph import Graph


class CsrGraph:
    """Frozen CSR adjacency snapshot of a :class:`Graph`.

    Attributes
    ----------
    n, m: vertex / edge counts at snapshot time.
    indptr: ``(n+1,)`` int64; slots of vertex ``u`` are
        ``indptr[u]:indptr[u+1]``, in *port order*.
    neighbors / edge_ids: ``(2m,)`` int64 slot arrays; slot
        ``indptr[u] + p`` holds ``via_port(u, p)``.
    edge_u, edge_v, edge_weight: ``(m,)`` per-edge endpoint and weight
        arrays indexed by dense edge index.
    """

    def __init__(self, graph: "Graph"):
        self.n = graph.n
        self.m = graph.m
        raw = getattr(graph, "_edge_arrays", None)
        if raw is not None:
            # Array-built graph: derive the CSR slots straight from the
            # edge columns without touching the (lazy) Python adjacency.
            # Port order is per-vertex edge-insertion order, i.e. sort
            # by (endpoint, edge index) — identical to the incidence
            # lists add_edge would have produced.
            eu, ev, ew = raw
            ends = np.concatenate((eu, ev))
            other = np.concatenate((ev, eu))
            eids = np.concatenate(
                (np.arange(self.m, dtype=np.int64),) * 2
            )
            order = np.lexsort((eids, ends))
            deg = np.bincount(ends, minlength=self.n)
            self.indptr = np.concatenate(([0], np.cumsum(deg)))
            self.neighbors = other[order]
            self.edge_ids = eids[order]
            self.edge_u = eu
            self.edge_v = ev
            self.edge_weight = ew
        else:
            adj = [graph.incident(u) for u in graph.vertices()]
            deg = np.fromiter(
                (len(row) for row in adj), dtype=np.int64, count=self.n
            )
            self.indptr = np.concatenate(([0], np.cumsum(deg)))
            total = int(self.indptr[-1])
            self.neighbors = np.fromiter(
                (v for row in adj for v, _ in row), dtype=np.int64, count=total
            )
            self.edge_ids = np.fromiter(
                (ei for row in adj for _, ei in row), dtype=np.int64, count=total
            )
            edges = graph.edges
            self.edge_u = np.fromiter(
                (e.u for e in edges), dtype=np.int64, count=self.m
            )
            self.edge_v = np.fromiter(
                (e.v for e in edges), dtype=np.int64, count=self.m
            )
            self.edge_weight = np.fromiter(
                (e.weight for e in edges), dtype=np.float64, count=self.m
            )
        for arr in (
            self.indptr,
            self.neighbors,
            self.edge_ids,
            self.edge_u,
            self.edge_v,
            self.edge_weight,
        ):
            arr.setflags(write=False)
        self._relax: Optional[tuple] = None
        self._lists: Optional[tuple] = None

    def adjacency_lists(self) -> tuple[list, list, list, list]:
        """Plain-list mirrors ``(indptr, neighbors, edge_ids, weights)``.

        Cached; used by the sequential fallbacks of the hybrid kernels,
        where per-element Python indexing into lists beats numpy scalar
        indexing by an order of magnitude.
        """
        if self._lists is None:
            self._lists = (
                self.indptr.tolist(),
                self.neighbors.tolist(),
                self.edge_ids.tolist(),
                self.edge_weight.tolist(),
            )
        return self._lists

    # ------------------------------------------------------------------
    # Relaxation structure for the batched SSSP kernel
    # ------------------------------------------------------------------
    def _relaxation(self) -> tuple:
        """Arc arrays sorted by head vertex, with segment boundaries.

        Each undirected edge contributes two directed arcs
        ``tail -> head``; sorting by head lets one ``minimum.reduceat``
        per round compute, for every head vertex, the best incoming
        relaxation.  Built lazily, reused across calls.
        """
        if self._relax is None:
            head = np.concatenate((self.edge_v, self.edge_u))
            tail = np.concatenate((self.edge_u, self.edge_v))
            aeid = np.concatenate(
                (np.arange(self.m, dtype=np.int64),) * 2
            )
            order = np.argsort(head, kind="stable")
            head = head[order]
            tail = tail[order]
            aeid = aeid[order]
            starts = np.flatnonzero(np.r_[True, head[1:] != head[:-1]])
            targets = head[starts]
            weights = self.edge_weight[aeid]
            self._relax = (head, tail, aeid, weights, starts, targets)
        return self._relax


def forbidden_mask(m: int, forbidden: Iterable[int] = ()) -> Optional[np.ndarray]:
    """Boolean length-``m`` mask of forbidden edge indices (None if empty)."""
    fb = list(forbidden) if not isinstance(forbidden, (set, frozenset)) else forbidden
    if not fb:
        return None
    mask = np.zeros(m, dtype=bool)
    mask[np.fromiter(fb, dtype=np.int64, count=len(fb))] = True
    return mask


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
def bfs_tree(
    csr: CsrGraph, root: int, forbidden: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous BFS of the component of ``root``.

    Returns ``(parent, parent_edge, depth, order)`` with -1 outside the
    component; ``order`` is the BFS discovery order.  Parent assignment
    matches sequential FIFO BFS over port-ordered adjacency: within a
    level, candidates expand in (queue order, port order) and the first
    sighting of a vertex wins.

    Hybrid: each level is expanded with one vectorized pass, but once
    frontiers stay tiny (high-diameter regions, where per-level numpy
    call overhead dominates) the walk switches to a sequential FIFO over
    cached adjacency lists — the switch preserves the exact FIFO state,
    so the resulting tree is identical either way.
    """
    n = csr.n
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    order_parts = _bfs_component(csr, root, parent, parent_edge, depth, forbidden)
    return parent, parent_edge, depth, np.concatenate(order_parts)


def _bfs_component(
    csr: CsrGraph,
    root: int,
    parent: np.ndarray,
    parent_edge: np.ndarray,
    depth: np.ndarray,
    forbidden: Optional[np.ndarray],
) -> list[np.ndarray]:
    """Expand the component of ``root`` into the caller's output arrays.

    The hybrid level-synchronous walk of :func:`bfs_tree`, factored out
    so :func:`bfs_forest` can run every component against ONE shared set
    of full-n arrays (vertices with ``depth >= 0`` are treated as
    visited, which is exactly right: components are vertex-disjoint, so
    previously finished components never shadow a reachable vertex).
    Returns the discovery-order parts of this component.
    """
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    order_parts = [frontier]
    indptr, nbrs, eids = csr.indptr, csr.neighbors, csr.edge_ids
    d = 0
    narrow_levels = 0
    while frontier.size:
        if frontier.size < 32:
            narrow_levels += 1
            if narrow_levels >= 4:
                _bfs_sequential_tail(
                    csr, frontier, parent, parent_edge, depth, order_parts, forbidden
                )
                break
        else:
            narrow_levels = 0
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        seg = np.repeat(np.arange(frontier.size), counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        slots = starts[seg] + within
        cand = nbrs[slots]
        ce = eids[slots]
        keep = depth[cand] < 0
        if forbidden is not None:
            keep &= ~forbidden[ce]
        if not keep.any():
            break
        cand = cand[keep]
        ce = ce[keep]
        src = frontier[seg[keep]]
        uniq, first = np.unique(cand, return_index=True)
        parent[uniq] = src[first]
        parent_edge[uniq] = ce[first]
        d += 1
        depth[uniq] = d
        frontier = uniq[np.argsort(first, kind="stable")]
        order_parts.append(frontier)
    return order_parts


def bfs_forest(
    csr: CsrGraph, forbidden: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """BFS spanning forest of every component in one shared-array pass.

    Tree-for-tree identical to calling :func:`bfs_tree` from the
    smallest unvisited vertex id until the graph is exhausted, but all
    components write into ONE set of full-n arrays: O(n) memory for the
    whole forest instead of O(components * n) separate outputs.  The
    unvisited scan pointer only moves forward, so the root discovery
    adds O(n) total on top of the O(n + m) BFS work.

    Returns ``(parent, parent_edge, depth, comp_of, roots, members,
    comp_start)``: ``comp_of[v]`` is the component index of ``v``,
    ``roots[c]`` its smallest vertex id, and
    ``members[comp_start[c]:comp_start[c+1]]`` component ``c``'s
    vertices in BFS discovery order (``members[comp_start[c]] ==
    roots[c]``).
    """
    n = csr.n
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    comp_of = np.full(n, -1, dtype=np.int64)
    roots: list[int] = []
    starts: list[int] = [0]
    parts_all: list[np.ndarray] = []
    filled = 0
    scan = 0
    while True:
        while scan < n and depth[scan] >= 0:
            scan += 1
        if scan >= n:
            break
        parts = _bfs_component(csr, scan, parent, parent_edge, depth, forbidden)
        ci = len(roots)
        for part in parts:
            comp_of[part] = ci
            filled += part.size
        parts_all.extend(parts)
        roots.append(scan)
        starts.append(filled)
    members = (
        np.concatenate(parts_all) if parts_all else np.zeros(0, dtype=np.int64)
    )
    return (
        parent,
        parent_edge,
        depth,
        comp_of,
        np.asarray(roots, dtype=np.int64),
        members,
        np.asarray(starts, dtype=np.int64),
    )


def _bfs_sequential_tail(
    csr: CsrGraph,
    frontier: np.ndarray,
    parent: np.ndarray,
    parent_edge: np.ndarray,
    depth: np.ndarray,
    order_parts: list,
    forbidden: Optional[np.ndarray],
) -> None:
    """Finish a BFS sequentially from the current frontier (FIFO order)."""
    from collections import deque

    indptr, nbrs, eids, _ = csr.adjacency_lists()
    forb = forbidden
    queue = deque(frontier.tolist())
    tail: list[int] = []
    while queue:
        u = queue.popleft()
        du = depth[u]
        for slot in range(indptr[u], indptr[u + 1]):
            v = nbrs[slot]
            if depth[v] >= 0:
                continue
            ei = eids[slot]
            if forb is not None and forb[ei]:
                continue
            parent[v] = u
            parent_edge[v] = ei
            depth[v] = du + 1
            queue.append(v)
            tail.append(v)
    if tail:
        order_parts.append(np.array(tail, dtype=np.int64))


# ----------------------------------------------------------------------
# Batched truncated SSSP (the "batched Dijkstra" kernel)
# ----------------------------------------------------------------------
def shortest_distances(
    csr: CsrGraph,
    sources: Sequence[int],
    radius: float = math.inf,
    forbidden: Optional[np.ndarray] = None,
    allowed: Optional[np.ndarray] = None,
    chunk: int = 256,
    max_rounds: Optional[int] = None,
    rounds_out: Optional[list] = None,
) -> Optional[np.ndarray]:
    """Exact truncated shortest-path distances from many sources at once.

    Returns a ``(len(sources), n)`` float64 matrix with ``inf`` beyond
    ``radius`` (vertices enter a ball iff their distance is at most the
    radius, matching truncated Dijkstra: prefixes of a within-radius
    shortest path are themselves within radius).  ``forbidden`` masks
    edges out; ``allowed`` restricts the walk to a vertex subset.

    Memory note: the dense result matrix is allocated up front —
    ``chunk`` bounds only the per-round relaxation temporaries, not the
    output.  Callers who cannot afford O(len(sources) * n) floats must
    batch their sources and consume each batch's rows before the next
    (see ``_cover_component`` in :mod:`repro.trees.tree_cover`).

    Implementation: segmented-min label-correcting rounds over the arc
    arrays — each round relaxes every arc for a chunk of sources in one
    gather + ``minimum.reduceat`` + compare, so the per-round cost is a
    few vectorized passes instead of a Python heap loop per source.
    The number of rounds equals the hop depth of the shortest paths, so
    the kernel shines on low-diameter instances; ``max_rounds`` lets
    callers cap that and receive ``None`` instead of paying
    O(hops * m) on a deep instance (see :func:`truncated_balls` for the
    hybrid that falls back to heap Dijkstra).
    """
    src = np.asarray(list(sources), dtype=np.int64)
    dist = np.full((src.size, csr.n), math.inf, dtype=np.float64)
    if src.size == 0:
        return dist
    dist[np.arange(src.size), src] = 0.0
    if csr.m == 0:
        return dist
    head, tail, aeid, weights, starts, targets = csr._relaxation()
    w = weights
    if forbidden is not None:
        w = np.where(forbidden[aeid], math.inf, w)
    if allowed is not None:
        w = np.where(~allowed[tail] | ~allowed[head], math.inf, w)
    bounded = math.isfinite(radius)
    for c0 in range(0, src.size, chunk):
        sub = dist[c0 : c0 + chunk]
        rounds = 0
        while True:
            if max_rounds is not None and rounds >= max_rounds:
                return None
            rounds += 1
            cand = sub[:, tail] + w
            segmin = np.minimum.reduceat(cand, starts, axis=1)
            if bounded:
                segmin[segmin > radius] = math.inf
            cur = sub[:, targets]
            improved = segmin < cur
            if not improved.any():
                break
            sub[:, targets] = np.where(improved, segmin, cur)
        if rounds_out is not None:
            rounds_out.append(rounds)
    return dist


def frontier_balls(
    csr: CsrGraph,
    sources: Sequence[int],
    radius: float,
    forbidden: Optional[np.ndarray] = None,
    chunk: int = 256,
) -> list[dict[int, float]]:
    """Truncated SSSP balls via batched delta-stepping-style frontiers.

    Same output as per-source truncated heap Dijkstra (vertex->distance
    dicts), but all sources of a chunk advance together: each iteration
    selects the pending (source, vertex) states within one bucket width
    ``delta`` of the global minimum tentative distance, expands them
    with one vectorized adjacency gather (the :func:`bfs_tree` slot
    idiom) and scatter-mins the relaxations.  ``delta`` is the minimum
    edge weight, so the bucket minimum is always final (the Dijkstra
    argument); states improved after expansion simply re-enter the
    pending set, and the loop stops at the relaxation fixpoint — exact
    distances regardless of bucketing.

    Unlike :func:`shortest_distances` the per-iteration work scales with
    the *frontier*, not with ``m``: on high-diameter families (paths,
    rings, grids — hop depth ~ ball radius) this replaces both the
    O(hops * m) dense rounds and the per-source Python heap loops.

    ``chunk`` is a floor: the kernel widens it so the per-chunk state
    stays near a fixed memory budget — the bucket count per chunk is
    ~radius/delta regardless of how many sources ride along, so wider
    chunks amortize the per-bucket call overhead that would otherwise
    dominate on high-diameter instances.
    """
    out: list[dict[int, float]] = []
    src = np.asarray(list(sources), dtype=np.int64)
    if src.size == 0:
        return out
    n = csr.n
    if csr.m == 0:
        return [{int(s): 0.0} for s in src]
    chunk = min(src.size, max(chunk, int(2 * 10**7) // max(n, 1)))
    indptr, nbrs, eids = csr.indptr, csr.neighbors, csr.edge_ids
    ew = csr.edge_weight
    if forbidden is not None:
        ew = np.where(forbidden, math.inf, ew)
    ew_slot = ew[eids]  # per-adjacency-slot weight; saves a gather per bucket
    finite_w = ew[np.isfinite(ew)]
    delta = float(finite_w.min()) if finite_w.size else 1.0
    if delta <= 0:  # pragma: no cover - weights are validated positive
        delta = 1.0
    # One state buffer for the whole call: a large inf-fill costs real
    # time, so chunks reset only the entries they touched (every finite
    # state is enumerated anyway when the output dicts are built).
    dist = np.full(chunk * n, math.inf, dtype=np.float64)
    for c0 in range(0, src.size, chunk):
        part = src[c0 : c0 + chunk]
        S = part.size
        flat0 = np.arange(S, dtype=np.int64) * n + part
        dist[flat0] = 0.0
        pending = flat0
        while pending.size:
            dp = dist[pending]
            cur = dp.min()
            sel = dp <= cur + delta
            if sel.all():
                # Common case (every pending state fits one bucket —
                # always true on unit-weight graphs, where winners land
                # exactly delta above the previous bucket): skip the
                # three boolean partition passes.
                act = pending
                dact = dp
                pending = pending[:0]
            else:
                act = pending[sel]
                dact = dp[sel]
                pending = pending[~sel]
            u = act % n
            qbase = act - u  # qi * n
            starts = indptr[u]
            counts = indptr[u + 1] - starts
            total = int(counts.sum())
            if total == 0:
                continue
            # Expansion slots are the concatenated contiguous CSR ranges
            # [starts, starts + counts): one arange shifted per segment.
            # Per-state values broadcast with np.repeat directly (same
            # result as gathering through a segment-id array, one pass
            # fewer), and the arithmetic runs in place.
            offs = np.cumsum(counts)
            offs -= counts
            slots = np.arange(total, dtype=np.int64)
            slots += np.repeat(starts - offs, counts)
            nd = np.repeat(dact, counts)
            nd += ew_slot[slots]
            cand = np.repeat(qbase, counts)
            cand += nbrs[slots]
            keep = (nd <= radius) & (nd < dist[cand])
            cand = cand[keep]
            if cand.size == 0:
                continue
            nd = nd[keep]
            np.minimum.at(dist, cand, nd)
            # A slot's relaxation "won" iff its value is the new state.
            # Winners MUST be deduplicated before re-entering the
            # pending set: on tie-heavy graphs (unit-weight grids) every
            # tied predecessor in the bucket produces one winning slot
            # for the same state, and without the unique() the
            # duplicates re-expand together next bucket and compound
            # exponentially with the frontier depth.  A state improved
            # again in a later bucket still enqueues a second entry
            # (classic lazy deletion) — that re-expansion is a bounded
            # no-op, unlike same-bucket tie fan-in.
            # Dedup is sort + neighbour-diff rather than np.unique: the
            # hash-based unique of numpy >= 2.3 costs ~5x the sort on
            # the many small winner arrays this loop emits.
            winners = cand[nd == dist[cand]]
            if winners.size:
                winners.sort()
                mask = np.empty(winners.size, dtype=bool)
                mask[0] = True
                np.not_equal(winners[1:], winners[:-1], out=mask[1:])
                uniq = winners[mask]
                pending = (
                    uniq if not pending.size else np.concatenate((pending, uniq))
                )
        for i in range(S):
            row = dist[i * n : (i + 1) * n]
            idx = np.flatnonzero(np.isfinite(row))
            out.append(dict(zip(idx.tolist(), row[idx].tolist())))
            row[idx] = math.inf  # reset for the next chunk
    return out


def truncated_balls(
    csr: CsrGraph,
    sources: Sequence[int],
    radius: float,
    forbidden: Optional[np.ndarray] = None,
    chunk: int = 256,
    round_budget: int = 48,
    engine: str = "auto",
) -> list[dict[int, float]]:
    """Radius-``radius`` ball of each source, as vertex->distance dicts.

    ``engine`` selects the kernel; every engine produces identical ball
    contents and distances (asserted by ``tests/test_csr_kernels.py``),
    the choice affects speed only:

    * ``"auto"`` (default): the hybrid.  A small probe chunk through
      the dense segmented-min kernel measures hop depth and ball size;
      the dense kernel serves the rest when balls are large relative to
      their hop depth (it pays ~rounds x m per chunk regardless of
      output), otherwise the batched frontier kernel takes over —
      high-diameter families no longer fall back to per-source Python
      heap Dijkstra.
    * ``"dense"``: always the segmented-min kernel
      (:func:`shortest_distances`).
    * ``"frontier"``: always the delta-stepping-style frontier kernel
      (:func:`frontier_balls`).
    * ``"reference"``: per-source sequential heap Dijkstra — the seed
      implementation, retained as the exactness baseline.
    """
    if engine not in ("auto", "dense", "frontier", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    src = list(sources)
    if engine == "reference":
        return [_dijkstra_ball(csr, s, radius, forbidden) for s in src]
    if engine == "frontier":
        return frontier_balls(csr, src, radius, forbidden=forbidden, chunk=chunk)
    if engine == "dense":
        block = shortest_distances(
            csr, src, radius=radius, forbidden=forbidden, chunk=chunk
        )
        return [
            {
                int(v): float(block[i, v])
                for v in np.flatnonzero(np.isfinite(block[i]))
            }
            for i in range(len(src))
        ]
    out: list[dict[int, float]] = []
    # Probe on a small first chunk (round budget capped, so hop-deep
    # balls bail early), then decide the engine deterministically from
    # the probe's shape: the dense kernel pays ~rounds x m work per
    # chunk regardless of output, while the frontier kernel pays
    # ~frontier work per bucket, so dense only wins when balls are large
    # relative to their hop depth.  Both produce identical balls — a
    # deterministic rule keeps repeated constructions reproducible in
    # time as well as in output.
    probe = src[: min(16, chunk)]
    rounds_seen: list = []
    dist = shortest_distances(
        csr,
        probe,
        radius=radius,
        forbidden=forbidden,
        chunk=chunk,
        max_rounds=round_budget,
        rounds_out=rounds_seen,
    )
    if dist is None:
        use_kernel = False
        out.extend(frontier_balls(csr, probe, radius, forbidden, chunk=chunk))
    else:
        sizes = np.isfinite(dist).sum(axis=1)
        for i in range(len(probe)):
            row = dist[i]
            idx = np.flatnonzero(np.isfinite(row))
            out.append(dict(zip(idx.tolist(), row[idx].tolist())))
        mean_ball = float(sizes.mean()) if sizes.size else 0.0
        rounds = max(rounds_seen) if rounds_seen else 1
        use_kernel = mean_ball >= rounds * csr.m / 64
    for c0 in range(len(probe), len(src), chunk):
        part = src[c0 : c0 + chunk]
        if use_kernel:
            block = shortest_distances(
                csr,
                part,
                radius=radius,
                forbidden=forbidden,
                chunk=chunk,
                max_rounds=round_budget,
            )
            if block is not None:
                for i in range(len(part)):
                    row = block[i]
                    idx = np.flatnonzero(np.isfinite(row))
                    out.append(dict(zip(idx.tolist(), row[idx].tolist())))
                continue
            use_kernel = False
        out.extend(frontier_balls(csr, part, radius, forbidden, chunk=chunk))
    return out


def _dijkstra_ball(
    csr: CsrGraph, source: int, radius: float, forbidden: Optional[np.ndarray]
) -> dict[int, float]:
    """Sequential truncated heap Dijkstra over the cached list view."""
    import heapq

    indptr, nbrs, eids, weights = csr.adjacency_lists()
    forb = forbidden
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for slot in range(indptr[u], indptr[u + 1]):
            ei = eids[slot]
            if forb is not None and forb[ei]:
                continue
            v = nbrs[slot]
            nd = d + weights[ei]
            if nd <= radius and nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


# ----------------------------------------------------------------------
# Tree kernels (per-depth-layer array passes)
# ----------------------------------------------------------------------
def depth_layers(depth: np.ndarray) -> list[np.ndarray]:
    """Group in-tree vertices (``depth >= 0``) by depth, ascending.

    Depth levels of a forest are contiguous from 0, so ``layers[d]``
    holds exactly the vertices at depth ``d``.
    """
    order = np.argsort(depth, kind="stable")
    d = depth[order]
    lo = int(np.searchsorted(d, 0))
    order, d = order[lo:], d[lo:]
    if order.size == 0:
        return []
    bounds = np.flatnonzero(np.r_[True, d[1:] != d[:-1]])
    return np.split(order, bounds[1:])


def subtree_sizes(
    parent: np.ndarray, depth: np.ndarray, layers: Optional[list[np.ndarray]] = None
) -> np.ndarray:
    """Subtree vertex counts (0 outside the forest), bottom-up by layer."""
    if layers is None:
        layers = depth_layers(depth)
    size = (depth >= 0).astype(np.int64)
    for vs in reversed(layers[1:]):
        np.add.at(size, parent[vs], size[vs])
    return size


def xor_scatter(acc: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
    """``acc[index[i]] ^= values[i]`` with duplicate indices, vectorized.

    ``acc`` is 2-D ``(n, width)`` uint64; duplicates are XOR-folded via
    a stable sort + ``bitwise_xor.reduceat``.  Worth it for *wide* rows
    (``subtree_xor`` folds whole sketch rows); for narrow rows a plain
    ``ufunc.at`` has less overhead.
    """
    if index.size == 0:
        return
    order = np.argsort(index, kind="stable")
    si = index[order]
    sv = values[order]
    starts = np.flatnonzero(np.r_[True, si[1:] != si[:-1]])
    acc[si[starts]] ^= np.bitwise_xor.reduceat(sv, starts, axis=0)


def subtree_xor(
    parent: np.ndarray,
    layers: list[np.ndarray],
    values: np.ndarray,
    copy: bool = True,
) -> np.ndarray:
    """Row ``v`` of the result is the XOR of ``values`` over subtree(v).

    One bottom-up pass per depth layer: children of that layer XOR-fold
    into their parents (Claim 3.12's Õ(n) subtree computation, with the
    per-vertex Python loop replaced by segmented reductions).  With
    ``copy=False`` the aggregation happens in place in ``values``.
    """
    agg = values.copy() if copy else values
    flat = agg.reshape(agg.shape[0], -1)
    for vs in reversed(layers[1:]):
        xor_scatter(flat, parent[vs], flat[vs])
    return agg


def tree_depths(parent: np.ndarray, root: int) -> np.ndarray:
    """Hop depths from a parent array by pointer doubling.

    ``parent[v]`` is the tree parent (-1 for the root and for vertices
    outside the component).  Returns -1 outside the tree and the exact
    hop count to ``root`` inside it, in O(log height) vectorized rounds
    — depth never needs the O(height) layer recursion, so it is safe to
    compute even on path-shaped trees before deciding which engine
    builds the rest of the tree.
    """
    n = parent.shape[0]
    sent = n  # virtual self-looping sink absorbing finished chains
    anc = np.where(parent >= 0, parent, sent)
    anc = np.append(anc, sent)
    hops = (np.append(parent, -1) >= 0).astype(np.int64)
    while True:
        active = anc[:n] != sent
        if not active.any():
            break
        hops[:n] += hops[anc[:n]]
        anc[:n] = anc[anc[:n]]
    depth = hops[:n]
    depth[(parent < 0)] = -1
    if 0 <= root < n:
        depth[root] = 0
    return depth


def induced_edge_arrays(
    csr: CsrGraph,
    vertices: Sequence[int],
    allowed: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized edge selection for an induced subgraph.

    Returns ``(vlist, local_u, local_v, weights, kept_edges)`` where
    ``vlist`` is the sorted vertex set, ``kept_edges`` the parent edge
    indices (ascending — the insertion order
    :meth:`Graph.induced_subgraph` uses, so ports match), and
    ``local_u``/``local_v`` the endpoints renumbered into ``vlist``
    positions.  ``allowed`` optionally masks parent edges in.
    """
    vlist = np.unique(np.asarray(list(vertices), dtype=np.int64))
    local = np.full(csr.n, -1, dtype=np.int64)
    local[vlist] = np.arange(vlist.size, dtype=np.int64)
    keep = (local[csr.edge_u] >= 0) & (local[csr.edge_v] >= 0)
    if allowed is not None:
        keep &= allowed
    kept = np.flatnonzero(keep)
    return (
        vlist,
        local[csr.edge_u[kept]],
        local[csr.edge_v[kept]],
        csr.edge_weight[kept],
        kept,
    )


def dfs_interval_labels(
    order: np.ndarray,
    depth: np.ndarray,
    size: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """First/last DFS visit times from preorder rank, depth and size.

    For a DFS that respects ``order`` (the tree's preorder): when vertex
    ``v`` is entered, every earlier preorder vertex has been entered and
    all of them except ``v``'s ``depth[v]`` proper ancestors have been
    exited, hence ``tin(v) = 2 * pre(v) - depth(v) + 1`` and
    ``tout(v) = tin(v) + 2 * size(v) - 1`` (times in ``1..2n_comp``,
    identical to the sequential DFS of Lemma 3.1's labeling).
    """
    tin = np.zeros(n, dtype=np.int64)
    tout = np.zeros(n, dtype=np.int64)
    pre = np.arange(order.size, dtype=np.int64)
    tin[order] = 2 * pre - depth[order] + 1
    tout[order] = tin[order] + 2 * size[order] - 1
    return tin, tout
