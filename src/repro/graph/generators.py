"""Synthetic graph workloads.

The paper proves worst-case bounds; the reproduction measures them on
synthetic families that exercise the relevant regimes:

* ``random_connected_graph`` — sparse Erdos-Renyi-style graphs (random
  spanning tree + random chords), the generic workload.
* ``grid_graph`` / ``torus_graph`` — bounded-degree, high-diameter
  topologies where tree covers have many scales.
* ``hypercube_graph`` — low-diameter, log-degree.
* ``ring_of_cliques`` — graphs with small cuts, adversarial for
  connectivity under faults.
* ``random_tree_with_chords`` — near-tree graphs where most edges are
  bridges (cut detection is the hard case).
* ``lower_bound_graph`` — the Theorem 1.6 construction (f+1 disjoint
  s-t paths of length L), used by the stretch lower-bound bench.
* ``with_random_weights`` — re-weight any of the above for the weighted
  distance/routing experiments (weights in [1, W], "positive polynomial
  weights" per the paper).
"""

from __future__ import annotations

from repro._util import rng_from
from repro.graph.graph import Graph


def _bulk(n: int, us: list, vs: list) -> Graph:
    """Array-resident unit-weight graph from endpoint lists.

    The generators below draw edges with the exact accept/reject RNG
    sequences they always used (so every seeded workload is unchanged
    edge-for-edge), but collect endpoints in plain lists and bulk-build
    once — the result carries numpy edge columns instead of O(n + m)
    eager Python containers (see :meth:`Graph.from_edge_arrays`).
    """
    return Graph.from_edge_arrays(n, us, vs, [1.0] * len(us))


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform-ish random tree: each vertex v>0 picks a random earlier parent."""
    rng = rng_from(seed, "random_tree", n)
    us: list[int] = []
    vs: list[int] = []
    for v in range(1, n):
        us.append(int(rng.integers(0, v)))
        vs.append(v)
    return _bulk(n, us, vs)


def random_connected_graph(n: int, extra_edges: int, seed: int = 0) -> Graph:
    """Random connected graph: random tree plus ``extra_edges`` random chords."""
    rng = rng_from(seed, "random_connected", n, extra_edges)
    tree_rng = rng_from(seed, "random_tree", n)
    us: list[int] = []
    vs: list[int] = []
    seen: set[int] = set()
    for v in range(1, n):
        p = int(tree_rng.integers(0, v))
        us.append(p)
        vs.append(v)
        seen.add(p * n + v)  # p < v always
    budget = n * (n - 1) // 2 - (n - 1)
    extra = min(extra_edges, budget)
    attempts = 0
    added = 0
    while added < extra and attempts < 100 * extra + 1000:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        attempts += 1
        key = u * n + v if u < v else v * n + u
        if u == v or key in seen:
            continue
        seen.add(key)
        us.append(u)
        vs.append(v)
        added += 1
    return _bulk(n, us, vs)


def gnm_random_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Uniform G(n, m) (possibly disconnected)."""
    rng = rng_from(seed, "gnm", n, m)
    us: list[int] = []
    vs: list[int] = []
    seen: set[int] = set()
    budget = n * (n - 1) // 2
    target = min(m, budget)
    while len(us) < target:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        key = u * n + v if u < v else v * n + u
        if u != v and key not in seen:
            seen.add(key)
            us.append(u)
            vs.append(v)
    return _bulk(n, us, vs)


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; vertex (r, c) has id r*cols + c."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_graph(rows: int, cols: int) -> Graph:
    """rows x cols torus (wrap-around grid); requires rows, cols >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus requires rows, cols >= 3")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def hypercube_graph(dim: int) -> Graph:
    """The dim-dimensional hypercube on 2^dim vertices."""
    n = 1 << dim
    g = Graph(n)
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


def cycle_graph(n: int) -> Graph:
    """The n-cycle (a single edge for n=2, edgeless for n<=1)."""
    g = Graph(n)
    if n == 2:
        g.add_edge(0, 1)
    elif n >= 3:
        for v in range(n - 1):
            g.add_edge(v, v + 1)
        g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int) -> Graph:
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """``num_cliques`` cliques of ``clique_size`` joined in a ring by single
    edges — single-edge cuts everywhere, adversarial for FT connectivity."""
    if num_cliques < 2 or clique_size < 1:
        raise ValueError("need at least two cliques of size >= 1")
    n = num_cliques * clique_size
    g = Graph(n)
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j)
    for c in range(num_cliques):
        u = c * clique_size
        v = ((c + 1) % num_cliques) * clique_size
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_tree_with_chords(n: int, chords: int, seed: int = 0) -> Graph:
    """Alias for :func:`random_connected_graph`, named for the near-tree
    regime (most edges are bridges)."""
    return random_connected_graph(n, chords, seed=seed)


def lower_bound_graph(f: int, path_length: int) -> tuple[Graph, int, int]:
    """The Theorem 1.6 lower-bound construction.

    ``f + 1`` internally disjoint s-t paths, each of ``path_length``
    edges.  Returns ``(graph, s, t)`` with ``s = 0`` and ``t = 1``.
    The *last* edge of each path (the one incident to ``t``) is the one
    the adversary fails; see ``repro.routing.lower_bound``.
    """
    if f < 0 or path_length < 2:
        raise ValueError("need f >= 0 and path_length >= 2")
    num_paths = f + 1
    inner = path_length - 1
    n = 2 + num_paths * inner
    g = Graph(n)
    s, t = 0, 1
    for p in range(num_paths):
        first = 2 + p * inner
        g.add_edge(s, first)
        for i in range(inner - 1):
            g.add_edge(first + i, first + i + 1)
        g.add_edge(first + inner - 1, t)
    return g, s, t


def barbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Two cliques joined by a path — a classic small-cut stress case."""
    if clique_size < 2 or bridge_length < 1:
        raise ValueError("need clique_size >= 2 and bridge_length >= 1")
    n = 2 * clique_size + max(0, bridge_length - 1)
    g = Graph(n)
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j)
    # Path from vertex 0 of clique A to vertex 0 of clique B.
    prev = 0
    for step in range(bridge_length - 1):
        mid = 2 * clique_size + step
        g.add_edge(prev, mid)
        prev = mid
    g.add_edge(prev, clique_size)
    return g


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A path ("spine") with ``legs_per_vertex`` leaves on each spine
    vertex — high-degree trees without any cycles."""
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    n = spine * (1 + legs_per_vertex)
    g = Graph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    leg = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(i, leg)
            leg += 1
    return g


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> Graph:
    """Unit-square geometric graph, forced connected by a random tree
    fallback (extra tree edges are added only where geometry leaves the
    graph disconnected)."""
    rng = rng_from(seed, "geometric", n)
    points = rng.random((n, 2))
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            dx = float(points[u][0] - points[v][0])
            dy = float(points[u][1] - points[v][1])
            if dx * dx + dy * dy <= radius * radius:
                g.add_edge(u, v)
    # Connect leftover components along a random spanning structure.
    from repro.graph.components import connected_components

    labels, count = connected_components(g)
    while count > 1:
        reps: dict[int, int] = {}
        for v in range(n):
            reps.setdefault(labels[v], v)
        ordered = [reps[c] for c in sorted(reps)]
        for a, b in zip(ordered, ordered[1:]):
            if not g.has_edge(a, b):
                g.add_edge(a, b)
        labels, count = connected_components(g)
    return g


def with_random_weights(
    graph: Graph, low: float = 1.0, high: float = 8.0, seed: int = 0
) -> Graph:
    """Copy ``graph`` with integer-ish random weights drawn from [low, high]."""
    rng = rng_from(seed, "weights", graph.n, graph.m)
    g = Graph(graph.n)
    for e in graph.edges:
        w = float(rng.integers(int(low), int(high) + 1))
        g.add_edge(e.u, e.v, w)
    return g
