"""Simple weighted undirected graphs with explicit port numbering.

The routing model of the paper (Section 2) addresses neighbors through
*port numbers*: vertex ``u`` forwards a message through port ``p`` which
is an index into ``u``'s incidence list.  The :class:`Graph` class keeps
that incidence order explicit so routing tables can store real ports.

Vertices are integers ``0..n-1``.  Edges are identified by a dense edge
index ``0..m-1``; parallel edges and self loops are rejected (the paper
assumes simple graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True)
class Edge:
    """An undirected edge with a dense index and a positive weight."""

    index: int
    u: int
    v: int
    weight: float = 1.0

    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v)

    def other(self, x: int) -> int:
        """Return the endpoint different from ``x``."""
        if x == self.u:
            return self.v
        if x == self.v:
            return self.u
        raise ValueError(f"vertex {x} is not an endpoint of edge {self.index}")

    def key(self) -> tuple[int, int]:
        """Canonical (min, max) endpoint pair, used as the sampling key."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


@dataclass(frozen=True)
class InducedSubgraph:
    """An induced subgraph together with the maps back to its parent graph.

    ``graph`` uses local vertex ids ``0..len(vertices)-1``; position ``i``
    of ``vertex_to_parent`` gives the parent id of local vertex ``i``, and
    ``edge_to_parent[j]`` gives the parent edge index of local edge ``j``.
    """

    graph: "Graph"
    vertex_to_parent: tuple[int, ...]
    vertex_from_parent: dict[int, int]
    edge_to_parent: tuple[int, ...]


class Graph:
    """A simple weighted undirected graph with port-numbered adjacency.

    Ports: ``via_port(u, p)`` returns the ``p``-th incident (neighbor,
    edge index) pair of ``u`` in insertion order, matching the routing
    model where tables address neighbors by port number.

    Graphs built edge-by-edge (:meth:`add_edge`) carry the classic
    Python containers eagerly.  Graphs bulk-built from endpoint arrays
    (:meth:`from_edge_arrays` — every generator and snapshot-restore
    path) keep only the three numpy edge columns; the Edge list,
    adjacency lists and the port/edge lookup dicts are *lazy
    compatibility views* materialized on first access, so a scheme
    built through the CSR kernels never pays O(n + m) of Python object
    memory for a graph it reads as arrays.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self._n = n
        self._edges: Optional[list[Edge]] = []
        self._adj: Optional[list[list[tuple[int, int]]]] = [[] for _ in range(n)]
        self._edge_lookup: Optional[dict[tuple[int, int], int]] = {}
        self._port_lookup: Optional[list[dict[int, int]]] = [{} for _ in range(n)]
        self._edge_arrays = None  # (edge_u, edge_v, edge_w) in array mode
        self._max_weight = 0.0
        self._total_weight = 0.0
        self._csr = None  # cached CsrGraph view, invalidated by add_edge

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> int:
        """Insert edge {u, v} and return its index.

        Raises ``ValueError`` on self loops, duplicate edges, endpoints
        out of range, or non-positive weights.
        """
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self._n}")
        if u == v:
            raise ValueError("self loops are not allowed")
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        if self._edge_arrays is not None:
            # Mutating an array-built graph: fall back to the eager
            # containers (materialize all views, drop the frozen arrays).
            self._edges_list()
            self._adj_lists()
            self._lookup_dict()
            self._port_dicts()
            self._edge_arrays = None
        key = (u, v) if u < v else (v, u)
        if key in self._edge_lookup:
            raise ValueError(f"duplicate edge {key}")
        index = len(self._edges)
        weight = float(weight)
        self._edges.append(Edge(index, u, v, weight))
        self._port_lookup[u][v] = len(self._adj[u])
        self._port_lookup[v][u] = len(self._adj[v])
        self._adj[u].append((v, index))
        self._adj[v].append((u, index))
        self._edge_lookup[key] = index
        self._max_weight = max(self._max_weight, weight)
        self._total_weight += weight
        self._csr = None
        return index

    # ------------------------------------------------------------------
    # Lazy compatibility views (array-built graphs only)
    # ------------------------------------------------------------------
    def _edges_list(self) -> list[Edge]:
        if self._edges is None:
            eu, ev, ew = self._edge_arrays
            self._edges = [
                Edge(i, u, v, w)
                for i, (u, v, w) in enumerate(
                    zip(eu.tolist(), ev.tolist(), ew.tolist())
                )
            ]
        return self._edges

    def _adj_lists(self) -> list[list[tuple[int, int]]]:
        if self._adj is None:
            eu, ev, _ = self._edge_arrays
            adj: list[list[tuple[int, int]]] = [[] for _ in range(self._n)]
            for i, (u, v) in enumerate(zip(eu.tolist(), ev.tolist())):
                adj[u].append((v, i))
                adj[v].append((u, i))
            self._adj = adj
        return self._adj

    def _lookup_dict(self) -> dict[tuple[int, int], int]:
        if self._edge_lookup is None:
            eu, ev, _ = self._edge_arrays
            self._edge_lookup = {
                (u, v) if u < v else (v, u): i
                for i, (u, v) in enumerate(zip(eu.tolist(), ev.tolist()))
            }
        return self._edge_lookup

    def _port_dicts(self) -> list[dict[int, int]]:
        if self._port_lookup is None:
            ports: list[dict[int, int]] = [{} for _ in range(self._n)]
            for u, row in enumerate(self._adj_lists()):
                pd = ports[u]
                for p, (v, _) in enumerate(row):
                    pd[v] = p
            self._port_lookup = ports
        return self._port_lookup

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        if self._edges is not None:
            return len(self._edges)
        return int(self._edge_arrays[0].shape[0])

    @property
    def edges(self) -> Sequence[Edge]:
        return self._edges_list()

    def edge(self, index: int) -> Edge:
        if self._edges is None:
            # Point access on an array-built graph: one throwaway Edge
            # beats materializing the whole list.
            eu, ev, ew = self._edge_arrays
            if not 0 <= index < eu.shape[0]:
                raise IndexError(f"edge index {index} out of range")
            return Edge(index, int(eu[index]), int(ev[index]), float(ew[index]))
        return self._edges[index]

    def vertices(self) -> range:
        return range(self._n)

    def degree(self, u: int) -> int:
        if self._adj is None:
            indptr = self.as_csr().indptr
            return int(indptr[u + 1] - indptr[u])
        return len(self._adj[u])

    def neighbors(self, u: int) -> Iterator[int]:
        return (v for v, _ in self._adj_lists()[u])

    def incident(self, u: int) -> Sequence[tuple[int, int]]:
        """Port-ordered list of (neighbor, edge index) pairs at ``u``."""
        return self._adj_lists()[u]

    def incident_edges(self, u: int) -> Iterator[Edge]:
        return (self.edge(ei) for _, ei in self._adj_lists()[u])

    def via_port(self, u: int, port: int) -> tuple[int, int]:
        """Return (neighbor, edge index) reached from ``u`` via ``port``."""
        return self._adj_lists()[u][port]

    def port_of(self, u: int, v: int) -> int:
        """Port number at ``u`` of the edge towards neighbor ``v`` (O(1))."""
        try:
            return self._port_dicts()[u][v]
        except KeyError:
            raise ValueError(f"{v} is not a neighbor of {u}") from None

    def edge_index_between(self, u: int, v: int) -> Optional[int]:
        key = (u, v) if u < v else (v, u)
        return self._lookup_dict().get(key)

    def has_edge(self, u: int, v: int) -> bool:
        return self.edge_index_between(u, v) is not None

    def weight(self, edge_index: int) -> float:
        if self._edges is None:
            return float(self._edge_arrays[2][edge_index])
        return self._edges[edge_index].weight

    def max_weight(self) -> float:
        """Largest edge weight W (1.0 for an edgeless graph).

        Maintained incrementally by :meth:`add_edge` — callers that loop
        over distance scales can treat this as O(1).
        """
        if self.m == 0:
            return 1.0
        return self._max_weight

    def total_weight(self) -> float:
        """Sum of edge weights, maintained incrementally by :meth:`add_edge`."""
        return self._total_weight

    def as_csr(self):
        """The cached immutable CSR view (see :mod:`repro.graph.csr`).

        Built on first use and invalidated whenever an edge is added, so
        repeated kernel calls on a finished graph share one snapshot.
        """
        if self._csr is None:
            from repro.graph.csr import CsrGraph

            self._csr = CsrGraph(self)
        return self._csr

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        if self._edge_arrays is not None:
            eu, ev, ew = self._edge_arrays
            return Graph.from_edge_arrays(self._n, eu, ev, ew)
        g = Graph(self._n)
        for e in self._edges:
            g.add_edge(e.u, e.v, e.weight)
        return g

    def without_edges(self, forbidden: Iterable[int]) -> "Graph":
        """Return a copy of the graph with the given edge indices removed.

        Note: edge indices are re-assigned densely in the copy; use
        :class:`InducedSubgraph`-style bookkeeping when identity matters.
        """
        skip = set(forbidden)
        if self._edge_arrays is not None:
            import numpy as np

            eu, ev, ew = self._edge_arrays
            keep = np.ones(eu.shape[0], dtype=bool)
            idx = [ei for ei in skip if 0 <= ei < eu.shape[0]]
            keep[idx] = False
            return Graph.from_edge_arrays(self._n, eu[keep], ev[keep], ew[keep])
        g = Graph(self._n)
        for e in self._edges:
            if e.index not in skip:
                g.add_edge(e.u, e.v, e.weight)
        return g

    @classmethod
    def from_edge_arrays(cls, n: int, us, vs, weights) -> "Graph":
        """Bulk-build a graph from parallel endpoint/weight sequences.

        Semantically identical to ``n`` + repeated :meth:`add_edge`
        (same edge indices, ports, lookups) but skips the per-edge
        validation — callers must supply simple-graph edges with
        in-range endpoints and positive weights.  This is the fast path
        for machine-generated edge lists (generators, CSR cluster
        slicing, snapshot restore), where the checks are invariants of
        the producing code.

        The result is *array-resident*: only the three numpy edge
        columns are stored (frozen — they may be shared, e.g. snapshot
        mmaps), and the classic Python containers materialize lazily on
        first access.  ``as_csr`` builds straight from the columns.
        """
        import numpy as np

        if n < 0:
            raise ValueError("vertex count must be non-negative")
        g = cls.__new__(cls)
        g._n = n
        eu = np.asarray(us, dtype=np.int64)
        ev = np.asarray(vs, dtype=np.int64)
        ew = np.asarray(weights, dtype=np.float64)
        for arr in (eu, ev, ew):
            arr.setflags(write=False)
        g._edge_arrays = (eu, ev, ew)
        g._edges = None
        g._adj = None
        g._edge_lookup = None
        g._port_lookup = None
        g._max_weight = float(ew.max()) if ew.size else 0.0
        g._total_weight = float(ew.sum())
        g._csr = None
        return g

    def induced_subgraph(
        self,
        vertices: Iterable[int],
        allowed_edges: Optional[Iterable[int]] = None,
        engine: str = "csr",
    ) -> InducedSubgraph:
        """Induced subgraph on ``vertices`` with parent-id bookkeeping.

        Local vertex ids follow the sorted order of ``vertices`` so the
        construction is deterministic.  Edge insertion order (and hence
        local port numbering) follows parent edge index order.  When
        ``allowed_edges`` is given, only those parent edges participate
        (used by Section 4 to drop heavy edges per distance scale).

        ``engine="csr"`` (default) selects the kept edges with one
        vectorized pass over the CSR endpoint arrays
        (:func:`repro.graph.csr.induced_edge_arrays`) and bulk-builds
        the subgraph; ``engine="reference"`` is the sequential per-edge
        scan.  Both produce identical subgraphs, maps and ports.
        ``allowed_edges`` may be a boolean edge mask on the CSR engine.
        """
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "csr":
            import numpy as np

            from repro.graph.csr import induced_edge_arrays

            if allowed_edges is None:
                allowed = None
            elif isinstance(allowed_edges, np.ndarray) and allowed_edges.dtype == np.bool_:
                allowed = allowed_edges
            else:
                allowed = np.zeros(self.m, dtype=bool)
                idx = np.asarray(list(allowed_edges), dtype=np.int64)
                # Ids outside 0..m-1 never match an edge on the
                # reference engine's set-membership scan; drop them here
                # too instead of wrapping (-1 sentinels) or raising.
                idx = idx[(idx >= 0) & (idx < self.m)]
                allowed[idx] = True
            vlist_np, lu, lv, w, kept = induced_edge_arrays(
                self.as_csr(), vertices, allowed
            )
            vlist = vlist_np.tolist()
            sub = Graph.from_edge_arrays(len(vlist), lu, lv, w)
            return InducedSubgraph(
                graph=sub,
                vertex_to_parent=tuple(vlist),
                vertex_from_parent={pv: i for i, pv in enumerate(vlist)},
                edge_to_parent=tuple(kept.tolist()),
            )
        vlist = sorted(set(vertices))
        from_parent = {pv: i for i, pv in enumerate(vlist)}
        allowed = None if allowed_edges is None else set(allowed_edges)
        sub = Graph(len(vlist))
        edge_map: list[int] = []
        for e in self.edges:
            if allowed is not None and e.index not in allowed:
                continue
            if e.u in from_parent and e.v in from_parent:
                sub.add_edge(from_parent[e.u], from_parent[e.v], e.weight)
                edge_map.append(e.index)
        return InducedSubgraph(
            graph=sub,
            vertex_to_parent=tuple(vlist),
            vertex_from_parent=from_parent,
            edge_to_parent=tuple(edge_map),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.m})"
