"""Plain-text graph serialization (weighted edge lists).

Format (one graph per file)::

    # optional comments
    n <vertex count>
    e <u> <v> [weight]

Edges keep their file order, so port numbers — and therefore routing
tables — are reproducible across save/load round trips.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from repro.graph.graph import Graph


def write_edge_list(graph: Graph, target: Union[str, Path, TextIO]) -> None:
    """Serialize a graph to the edge-list format."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_edge_list(graph, handle)
        return
    target.write(f"n {graph.n}\n")
    for e in graph.edges:
        if e.weight == 1.0:
            target.write(f"e {e.u} {e.v}\n")
        else:
            target.write(f"e {e.u} {e.v} {e.weight!r}\n")


def read_edge_list(source: Union[str, Path, TextIO]) -> Graph:
    """Parse a graph from the edge-list format.

    Raises ``ValueError`` on malformed input (missing header, bad
    tokens, edges violating the simple-graph constraints).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_edge_list(handle)
    graph: Graph | None = None
    for line_no, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "n":
            if graph is not None:
                raise ValueError(f"line {line_no}: duplicate header")
            if len(parts) != 2:
                raise ValueError(f"line {line_no}: malformed header")
            graph = Graph(int(parts[1]))
        elif parts[0] == "e":
            if graph is None:
                raise ValueError(f"line {line_no}: edge before header")
            if len(parts) not in (3, 4):
                raise ValueError(f"line {line_no}: malformed edge")
            u, v = int(parts[1]), int(parts[2])
            weight = float(parts[3]) if len(parts) == 4 else 1.0
            graph.add_edge(u, v, weight)
        else:
            raise ValueError(f"line {line_no}: unknown record {parts[0]!r}")
    if graph is None:
        raise ValueError("missing 'n' header")
    return graph
