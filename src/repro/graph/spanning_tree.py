"""Rooted spanning trees and spanning forests.

Both labeling schemes of the paper fix a rooted spanning tree ``T`` of
(each connected component of) the input graph.  :class:`RootedTree`
records parents, children, depths, preorder, and weighted depths, and
supports the tree-path queries the decoders rely on.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.graph.graph import Graph


class RootedTree:
    """A rooted spanning tree of one connected component of a graph.

    Attributes
    ----------
    graph: the host graph.
    root: root vertex.
    vertices: the component's vertices, in preorder.
    parent: ``parent[v]`` is the tree parent of ``v`` (-1 for the root
        and for vertices outside the component).
    parent_edge: index (in the host graph) of the edge to the parent
        (-1 where undefined).
    children: ``children[v]`` lists tree children in deterministic
        (ascending vertex id) order.
    depth / wdepth: hop / weighted distance from the root along the tree.
    """

    def __init__(
        self,
        graph: Graph,
        root: int,
        parent: Sequence[int],
        parent_edge: Sequence[int],
    ):
        self.graph = graph
        self.root = root
        self.parent = list(parent)
        self.parent_edge = list(parent_edge)
        n = graph.n
        self.children: list[list[int]] = [[] for _ in range(n)]
        self.in_tree = [False] * n
        self.in_tree[root] = True
        for v in range(n):
            p = self.parent[v]
            if p >= 0:
                self.children[p].append(v)
                self.in_tree[v] = True
        for v in range(n):
            self.children[v].sort()
        self.vertices: list[int] = []
        self.depth = [0] * n
        self.wdepth = [0.0] * n
        stack = [root]
        while stack:
            u = stack.pop()
            self.vertices.append(u)
            for c in reversed(self.children[u]):
                self.depth[c] = self.depth[u] + 1
                self.wdepth[c] = self.wdepth[u] + graph.weight(self.parent_edge[c])
                stack.append(c)
        self.tree_edge_indices = frozenset(
            self.parent_edge[v] for v in self.vertices if v != root
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def bfs(cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()) -> "RootedTree":
        """BFS spanning tree of the component of ``root`` in ``G \\ forbidden``."""
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                queue.append(v)
        return cls(graph, root, parent, parent_edge)

    @classmethod
    def dijkstra(
        cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()
    ) -> "RootedTree":
        """Shortest-path tree of the component of ``root`` in ``G \\ forbidden``.

        Used for the tree-cover trees of Section 4, whose radius bound
        the stretch analysis relies on.
        """
        import heapq
        import math

        skip = set(forbidden)
        dist = [math.inf] * graph.n
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        dist[root] = 0.0
        heap: list[tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, ei in graph.incident(u):
                if ei in skip:
                    continue
                nd = d + graph.weight(ei)
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    parent_edge[v] = ei
                    heapq.heappush(heap, (nd, v))
        return cls(graph, root, parent, parent_edge)

    @classmethod
    def dfs(cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()) -> "RootedTree":
        """DFS spanning tree of the component of ``root`` in ``G \\ forbidden``."""
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                stack.append(v)
        return cls(graph, root, parent, parent_edge)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self, v: int) -> bool:
        return self.in_tree[v]

    def is_tree_edge(self, edge_index: int) -> bool:
        return edge_index in self.tree_edge_indices

    def child_endpoint(self, edge_index: int) -> int:
        """For a tree edge, return the endpoint farther from the root."""
        e = self.graph.edge(edge_index)
        if self.parent[e.u] == e.v and self.parent_edge[e.u] == edge_index:
            return e.u
        if self.parent[e.v] == e.u and self.parent_edge[e.v] == edge_index:
            return e.v
        raise ValueError(f"edge {edge_index} is not a tree edge")

    def path_to_root(self, v: int) -> list[int]:
        """Vertices on the v -> root tree path, inclusive."""
        path = [v]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor by the depth-walk method (O(depth))."""
        while self.depth[u] > self.depth[v]:
            u = self.parent[u]
        while self.depth[v] > self.depth[u]:
            v = self.parent[v]
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def tree_path(self, u: int, v: int) -> list[int]:
        """Vertices on the unique u -> v path in the tree, inclusive."""
        w = self.lca(u, v)
        up = []
        x = u
        while x != w:
            up.append(x)
            x = self.parent[x]
        down = []
        x = v
        while x != w:
            down.append(x)
            x = self.parent[x]
        return up + [w] + list(reversed(down))

    def tree_distance(self, u: int, v: int) -> float:
        """Weighted length of the u -> v tree path."""
        w = self.lca(u, v)
        return self.wdepth[u] + self.wdepth[v] - 2.0 * self.wdepth[w]

    def subtree_vertices(self, v: int) -> list[int]:
        """All vertices in the subtree rooted at ``v`` (preorder)."""
        out = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def post_order(self) -> list[int]:
        """Vertices in post-order (children before parents)."""
        return list(reversed(self.vertices))


def spanning_forest(
    graph: Graph, forbidden: Iterable[int] = (), method: str = "bfs"
) -> tuple[list[RootedTree], list[int]]:
    """Build one rooted spanning tree per component of ``G \\ forbidden``.

    Returns ``(trees, comp_of)`` where ``comp_of[v]`` indexes into
    ``trees``.  Roots are the smallest vertex id of each component.
    """
    skip = set(forbidden)
    comp_of = [-1] * graph.n
    trees: list[RootedTree] = []
    builder = RootedTree.bfs if method == "bfs" else RootedTree.dfs
    for start in graph.vertices():
        if comp_of[start] != -1:
            continue
        tree = builder(graph, start, skip)
        idx = len(trees)
        for v in tree.vertices:
            comp_of[v] = idx
        trees.append(tree)
    return trees, comp_of
