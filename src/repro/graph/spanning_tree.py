"""Rooted spanning trees and spanning forests.

Both labeling schemes of the paper fix a rooted spanning tree ``T`` of
(each connected component of) the input graph.  :class:`RootedTree`
records parents, children, depths, preorder, and weighted depths, and
supports the tree-path queries the decoders rely on.

Memory model: the canonical storage is numpy (``arrays()`` plus the
weighted depths); the classic per-vertex list attributes (``parent``,
``depth``, ``vertices``, ``in_tree``, ...) are *lazy compatibility
views* that materialize on first access and are never built on the
array-kernel construction path.  A :class:`Forest` goes one step
further: all of its component trees share ONE set of full-n arrays, so
a fragmented graph costs O(n + m) to span instead of
O(components * n) — see :func:`spanning_forest`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.graph import csr as csrk
from repro.graph.graph import Graph


class TreeArrays:
    """Numpy view of a :class:`RootedTree`, shared by the array kernels.

    ``order`` is the children-sorted preorder of the tree's component,
    ``size`` the subtree vertex counts and ``layers`` the component's
    vertices grouped by depth (materialized on first use).  For a
    standalone tree ``depth`` is -1 outside the component (unlike the
    list attribute, which pads with 0); trees that belong to a
    :class:`Forest` share full-n ``parent``/``parent_edge``/``depth``/
    ``size`` arrays, so those may carry other components' values at
    foreign slots — every kernel reads them only at ``order``/``layers``
    vertices (or scatters through them), which keeps the two layouts
    interchangeable.
    """

    __slots__ = ("parent", "parent_edge", "depth", "order", "size", "_layers")

    def __init__(self, parent, parent_edge, depth, order, size, layers=None):
        self.parent = parent
        self.parent_edge = parent_edge
        self.depth = depth
        self.order = order
        self.size = size
        self._layers = layers

    @property
    def layers(self) -> list:
        """Component vertices grouped by depth, ascending.

        Restricted to ``order`` (NOT a full ``depth >= 0`` scan) so that
        forest trees sharing one depth array never pull foreign
        components into their layers.  Within a layer the vertices come
        out in preorder position; every layer consumer (size/preorder/
        wdepth folds, subtree XOR, heavy-light) is a commutative scatter
        or an elementwise gather, so within-layer order is immaterial.
        """
        if self._layers is None:
            d = self.depth[self.order]
            grp = np.argsort(d, kind="stable")
            vs = self.order[grp]
            ds = d[grp]
            if ds.size == 0:
                self._layers = []
            else:
                starts = np.flatnonzero(np.r_[True, ds[1:] != ds[:-1]])
                bounds = np.r_[starts, ds.size]
                self._layers = [
                    vs[bounds[i] : bounds[i + 1]] for i in range(starts.size)
                ]
        return self._layers


def _as_int_list(seq) -> list:
    """Python int list from any int sequence (ndarray included)."""
    if isinstance(seq, np.ndarray):
        return seq.tolist()
    return [int(x) for x in seq]


class RootedTree:
    """A rooted spanning tree of one connected component of a graph.

    Attributes
    ----------
    graph: the host graph.
    root: root vertex.
    vertices: the component's vertices, in preorder.
    parent: ``parent[v]`` is the tree parent of ``v`` (-1 for the root
        and for vertices outside the component).
    parent_edge: index (in the host graph) of the edge to the parent
        (-1 where undefined).
    children: ``children[v]`` lists tree children in deterministic
        (ascending vertex id) order.
    depth / wdepth: hop / weighted distance from the root along the tree.

    All of the per-vertex attributes above are lazy list views over the
    canonical numpy storage (:meth:`arrays`); they materialize on first
    access, so code that sticks to the array kernels never pays for
    them.  The sequential ``engine="reference"`` construction still
    builds the lists directly (and derives arrays lazily instead).
    """

    def __init__(
        self,
        graph: Graph,
        root: int,
        parent: Sequence[int],
        parent_edge: Sequence[int],
        engine: str = "csr",
    ):
        """``engine="csr"`` (default) derives children, preorder, depths
        and subtree sizes with the vectorized depth-layer kernels of
        :mod:`repro.graph.csr` (falling back to the sequential walk on
        trees whose height makes per-layer passes lose);
        ``engine="reference"`` is the original per-vertex construction.
        Both engines produce identical attributes, asserted by
        ``tests/test_csr_kernels.py``."""
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.graph = graph
        self.root = root
        self._reset_lazy()
        if engine == "csr" and self._init_vectorized(parent, parent_edge):
            return
        n = graph.n
        plist = _as_int_list(parent)
        pelist = _as_int_list(parent_edge)
        self._parent_list = plist
        self._parent_edge_list = pelist
        children: list[list[int]] = [[] for _ in range(n)]
        in_tree = [False] * n
        in_tree[root] = True
        for v in range(n):
            p = plist[v]
            if p >= 0:
                children[p].append(v)
                in_tree[v] = True
        for v in range(n):
            children[v].sort()
        self._children = children
        self._in_tree_list = in_tree
        vertices: list[int] = []
        depth = [0] * n
        wdepth = [0.0] * n
        stack = [root]
        while stack:
            u = stack.pop()
            vertices.append(u)
            for c in reversed(children[u]):
                depth[c] = depth[u] + 1
                wdepth[c] = wdepth[u] + graph.weight(pelist[c])
                stack.append(c)
        self._vertices_list = vertices
        self._depth_list = depth
        self._wdepth_list = wdepth
        self._tree_edges = frozenset(
            pelist[v] for v in vertices if v != root
        )

    def _reset_lazy(self) -> None:
        self._arrays: Optional[TreeArrays] = None
        self._wdepth_np: Optional[np.ndarray] = None
        self._forest: Optional["Forest"] = None
        self._comp = -1
        self._children: Optional[list[list[int]]] = None
        self._child_groups: Optional[tuple] = None
        self._parent_list: Optional[list[int]] = None
        self._parent_edge_list: Optional[list[int]] = None
        self._depth_list: Optional[list[int]] = None
        self._wdepth_list: Optional[list[float]] = None
        self._in_tree_list: Optional[list[bool]] = None
        self._vertices_list: Optional[list[int]] = None
        self._tree_edges: Optional[frozenset] = None
        self._tree_edge_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Lazy compatibility views (classic list attributes)
    # ------------------------------------------------------------------
    def _comp_mask(self) -> np.ndarray:
        """Boolean in-component mask (forest trees only)."""
        return self._forest.comp_of == self._comp

    @property
    def parent(self) -> list[int]:
        if self._parent_list is None:
            arr = self._arrays.parent
            if self._forest is not None:
                arr = np.where(self._comp_mask(), arr, -1)
            self._parent_list = arr.tolist()
        return self._parent_list

    @property
    def parent_edge(self) -> list[int]:
        if self._parent_edge_list is None:
            arr = self._arrays.parent_edge
            if self._forest is not None:
                arr = np.where(self._comp_mask(), arr, -1)
            self._parent_edge_list = arr.tolist()
        return self._parent_edge_list

    @property
    def depth(self) -> list[int]:
        if self._depth_list is None:
            arr = self._arrays.depth
            if self._forest is not None:
                mask = self._comp_mask()
            else:
                mask = arr >= 0
            self._depth_list = np.where(mask, arr, 0).tolist()
        return self._depth_list

    @property
    def wdepth(self) -> list[float]:
        if self._wdepth_list is None:
            arr = self._wdepth_np
            if self._forest is not None:
                arr = np.where(self._comp_mask(), arr, 0.0)
            self._wdepth_list = arr.tolist()
        return self._wdepth_list

    @property
    def in_tree(self) -> list[bool]:
        if self._in_tree_list is None:
            if self._forest is not None:
                self._in_tree_list = self._comp_mask().tolist()
            else:
                self._in_tree_list = (self._arrays.depth >= 0).tolist()
        return self._in_tree_list

    @property
    def vertices(self) -> list[int]:
        if self._vertices_list is None:
            self._vertices_list = self._arrays.order.tolist()
        return self._vertices_list

    @property
    def tree_edge_indices(self) -> frozenset:
        if self._tree_edges is None:
            order = self._arrays.order
            self._tree_edges = frozenset(
                self._arrays.parent_edge[order[1:]].tolist()
            )
        return self._tree_edges

    @property
    def children(self) -> list[list[int]]:
        """Per-vertex sorted child lists, built on first use.

        The vectorized constructor defers this list-of-lists: the array
        kernels (ancestry, sketches, heavy-light) work off
        :meth:`arrays` and never touch it, so eager construction would
        be pure overhead on the hot per-cluster build path.
        """
        if self._children is None:
            n = self.graph.n
            children: list[list[int]] = [[] for _ in range(n)]
            heads, bounds, gch = self._group_children()
            gch_list = gch.tolist()
            bounds_list = bounds.tolist()
            for gi, p in enumerate(heads.tolist()):
                children[p] = gch_list[bounds_list[gi] : bounds_list[gi + 1]]
            self._children = children
        return self._children

    def _group_children(self) -> tuple:
        """``(heads, bounds, gch)`` sibling groups: children of
        ``heads[i]`` are ``gch[bounds[i]:bounds[i+1]]``, ascending id."""
        if self._child_groups is None:
            parent_np = self._arrays.parent
            if self._forest is not None:
                parent_np = np.where(self._comp_mask(), parent_np, -1)
            ch = np.flatnonzero(parent_np >= 0)
            gpar = parent_np[ch]
            grp = np.argsort(gpar, kind="stable")
            gch = ch[grp]
            gpar = gpar[grp]
            if gch.size:
                starts = np.flatnonzero(np.r_[True, gpar[1:] != gpar[:-1]])
                bounds = np.r_[starts, gch.size]
                heads = gpar[starts]
            else:
                heads = np.zeros(0, dtype=np.int64)
                bounds = np.zeros(1, dtype=np.int64)
            self._child_groups = (heads, bounds, gch)
        return self._child_groups

    def _init_vectorized(self, parent, parent_edge) -> bool:
        """Array-native construction (the CSR depth-layer pass).

        Children ordering, preorder, depths and weighted depths all come
        from a handful of vectorized passes: pointer-doubling depths,
        one lexsort for sibling grouping, a bottom-up size fold and a
        top-down preorder-rank/wdepth fold per depth layer.  The
        resulting tree is numpy-only — the list attributes stay lazy.
        The per-layer folds pay one numpy call per tree level, so on
        trees deeper than ~n/8 (paths, rings — the high-diameter
        adversary) this returns False and the sequential walk runs
        instead; both paths produce identical attributes.
        """
        graph = self.graph
        n = graph.n
        root = self.root
        if n < 192:
            # Below ~200 vertices the fixed numpy call overhead loses to
            # the sequential walk (measured crossover); tiny per-cluster
            # trees are the common case in the tree-cover stack.
            return False
        parent_np = np.asarray(parent, dtype=np.int64)
        if parent_np.shape[0] != n:
            return False
        depth_np = csrk.tree_depths(parent_np, root)
        layers = csrk.depth_layers(depth_np)
        height = len(layers)
        in_tree_np = depth_np >= 0
        count = int(in_tree_np.sum())
        if height > max(64, count // 8):
            return False
        pe_np = np.asarray(parent_edge, dtype=np.int64)
        size = csrk.subtree_sizes(parent_np, depth_np, layers)
        if int(size[root]) != count:
            # The parent array contains chains terminating at a vertex
            # other than ``root`` (a second detached root with
            # descendants).  The sequential walk only covers ``root``'s
            # component; defer to it rather than folding foreign
            # subtrees into the preorder.
            return False
        # Children grouped by parent: stable sort on parent keeps the
        # ascending-vertex-id order within each sibling group.
        ch = np.flatnonzero(parent_np >= 0)
        gpar = parent_np[ch]
        grp = np.argsort(gpar, kind="stable")
        gch = ch[grp]
        gpar = gpar[grp]
        if gch.size:
            starts = np.flatnonzero(np.r_[True, gpar[1:] != gpar[:-1]])
            bounds = np.r_[starts, gch.size]
            self._child_groups = (gpar[starts], bounds, gch)
            # Preorder rank: parent's rank + 1 + sizes of earlier
            # siblings (the classic DFS offset identity).
            csz = size[gch]
            cum = np.cumsum(csz)
            within = cum - csz
            base = np.repeat(within[starts], np.diff(bounds))
            offset = np.zeros(n, dtype=np.int64)
            offset[gch] = within - base
        else:
            offset = np.zeros(n, dtype=np.int64)
        pre = np.zeros(n, dtype=np.int64)
        wdepth_np = np.zeros(n, dtype=np.float64)
        if graph.m:
            edge_w = graph.as_csr().edge_weight
        else:  # pragma: no cover - edgeless trees are single vertices
            edge_w = np.zeros(0, dtype=np.float64)
        for vs in layers[1:]:
            ps = parent_np[vs]
            pre[vs] = pre[ps] + 1 + offset[vs]
            wdepth_np[vs] = wdepth_np[ps] + edge_w[pe_np[vs]]
        order = np.empty(count, dtype=np.int64)
        tv = np.flatnonzero(in_tree_np)
        order[pre[tv]] = tv
        self._wdepth_np = wdepth_np
        self._arrays = TreeArrays(
            parent=parent_np,
            parent_edge=pe_np,
            depth=depth_np,
            order=order,
            size=size,
            layers=layers,
        )
        return True

    @classmethod
    def _from_forest(cls, forest: "Forest", ci: int) -> "RootedTree":
        """Component ``ci``'s tree as a view over the forest's shared
        arrays — no per-tree full-n allocations."""
        self = object.__new__(cls)
        self.graph = forest.graph
        self.root = int(forest.roots[ci])
        self._reset_lazy()
        self._forest = forest
        self._comp = ci
        lo = int(forest.comp_start[ci])
        hi = int(forest.comp_start[ci + 1])
        self._wdepth_np = forest.wdepth
        self._arrays = TreeArrays(
            parent=forest.parent,
            parent_edge=forest.parent_edge,
            depth=forest.depth,
            order=forest.order[lo:hi],
            size=forest.size,
            layers=forest.layers if forest.comp_count == 1 else None,
        )
        return self

    def arrays(self) -> TreeArrays:
        """Cached numpy snapshot of the tree, for the CSR/tree kernels."""
        if self._arrays is None:
            parent = np.array(self.parent, dtype=np.int64)
            parent_edge = np.array(self.parent_edge, dtype=np.int64)
            depth = np.array(self.depth, dtype=np.int64)
            depth[~np.array(self.in_tree, dtype=bool)] = -1
            order = np.array(self.vertices, dtype=np.int64)
            layers = csrk.depth_layers(depth)
            size = csrk.subtree_sizes(parent, depth, layers)
            self._arrays = TreeArrays(
                parent=parent,
                parent_edge=parent_edge,
                depth=depth,
                order=order,
                size=size,
                layers=layers,
            )
        return self._arrays

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def bfs(
        cls,
        graph: Graph,
        root: int = 0,
        forbidden: Iterable[int] = (),
        engine: str = "csr",
    ) -> "RootedTree":
        """BFS spanning tree of the component of ``root`` in ``G \\ forbidden``.

        ``engine="csr"`` (default) runs the level-synchronous array BFS
        of :func:`repro.graph.csr.bfs_tree`; ``engine="reference"`` is
        the sequential implementation — both produce the identical tree.
        """
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "csr":
            # Only a boolean array is a ready-made per-edge mask; any
            # other ndarray (e.g. int edge indices) is an edge-index
            # iterable like every other ``forbidden`` value.
            if isinstance(forbidden, np.ndarray) and forbidden.dtype == np.bool_:
                mask = forbidden
            else:
                mask = csrk.forbidden_mask(graph.m, forbidden)
            parent, parent_edge, _, _ = csrk.bfs_tree(graph.as_csr(), root, mask)
            return cls(graph, root, parent, parent_edge)
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                queue.append(v)
        return cls(graph, root, parent, parent_edge, engine="reference")

    @classmethod
    def dijkstra(
        cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()
    ) -> "RootedTree":
        """Shortest-path tree of the component of ``root`` in ``G \\ forbidden``.

        Used for the tree-cover trees of Section 4, whose radius bound
        the stretch analysis relies on.
        """
        import heapq
        import math

        skip = set(forbidden)
        dist = [math.inf] * graph.n
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        dist[root] = 0.0
        heap: list[tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, ei in graph.incident(u):
                if ei in skip:
                    continue
                nd = d + graph.weight(ei)
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    parent_edge[v] = ei
                    heapq.heappush(heap, (nd, v))
        return cls(graph, root, parent, parent_edge)

    @classmethod
    def dfs(cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()) -> "RootedTree":
        """DFS spanning tree of the component of ``root`` in ``G \\ forbidden``."""
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                stack.append(v)
        return cls(graph, root, parent, parent_edge)

    # ------------------------------------------------------------------
    # Queries (read the canonical storage directly — no list
    # materialization on these paths)
    # ------------------------------------------------------------------
    def _pseq(self):
        """Parent as whatever representation already exists."""
        if self._parent_list is not None:
            return self._parent_list
        return self._arrays.parent

    def _dseq(self):
        if self._depth_list is not None:
            return self._depth_list
        return self._arrays.depth

    def spans(self, v: int) -> bool:
        if self._in_tree_list is not None:
            return self._in_tree_list[v]
        if self._forest is not None:
            return int(self._forest.comp_of[v]) == self._comp
        return bool(self._arrays.depth[v] >= 0)

    def is_tree_edge(self, edge_index: int) -> bool:
        if self._tree_edges is not None:
            return edge_index in self._tree_edges
        if self._tree_edge_mask is None:
            mask = np.zeros(self.graph.m, dtype=bool)
            order = self._arrays.order
            mask[self._arrays.parent_edge[order[1:]]] = True
            self._tree_edge_mask = mask
        return bool(self._tree_edge_mask[edge_index])

    def child_endpoint(self, edge_index: int) -> int:
        """For a tree edge, return the endpoint farther from the root."""
        e = self.graph.edge(edge_index)
        if not (self.spans(e.u) and self.spans(e.v)):
            raise ValueError(f"edge {edge_index} is not a tree edge")
        par = self._pseq()
        pe = (
            self._parent_edge_list
            if self._parent_edge_list is not None
            else self._arrays.parent_edge
        )
        if par[e.u] == e.v and pe[e.u] == edge_index:
            return e.u
        if par[e.v] == e.u and pe[e.v] == edge_index:
            return e.v
        raise ValueError(f"edge {edge_index} is not a tree edge")

    def path_to_root(self, v: int) -> list[int]:
        """Vertices on the v -> root tree path, inclusive."""
        par = self._pseq()
        path = [v]
        x = v
        while par[x] >= 0:
            x = int(par[x])
            path.append(x)
        return path

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor by the depth-walk method (O(depth))."""
        par = self._pseq()
        depth = self._dseq()
        while depth[u] > depth[v]:
            u = int(par[u])
        while depth[v] > depth[u]:
            v = int(par[v])
        while u != v:
            u = int(par[u])
            v = int(par[v])
        return u

    def tree_path(self, u: int, v: int) -> list[int]:
        """Vertices on the unique u -> v path in the tree, inclusive."""
        par = self._pseq()
        w = self.lca(u, v)
        up = []
        x = u
        while x != w:
            up.append(x)
            x = int(par[x])
        down = []
        x = v
        while x != w:
            down.append(x)
            x = int(par[x])
        return up + [w] + list(reversed(down))

    def tree_distance(self, u: int, v: int) -> float:
        """Weighted length of the u -> v tree path."""
        wdepth = (
            self._wdepth_list if self._wdepth_list is not None else self._wdepth_np
        )
        w = self.lca(u, v)
        return float(wdepth[u] + wdepth[v] - 2.0 * wdepth[w])

    def subtree_vertices(self, v: int) -> list[int]:
        """All vertices in the subtree rooted at ``v`` (preorder)."""
        out = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def post_order(self) -> list[int]:
        """Vertices in post-order (children before parents)."""
        return list(reversed(self.vertices))


class Forest:
    """Array-backed spanning forest: shared full-n arrays, tree views.

    One parent/parent_edge/depth/size/wdepth array set plus a
    concatenated per-component preorder serves every component tree —
    O(n + m) memory total, against the O(components * n) of one full-n
    array set (or worse, six full-n Python lists) per tree.  Component
    trees are :class:`RootedTree` views created by
    :meth:`RootedTree._from_forest`; their classic list attributes stay
    lazy and mask foreign components out when compatibility callers
    materialize them.
    """

    __slots__ = (
        "graph", "parent", "parent_edge", "depth", "comp_of",
        "roots", "order", "comp_start", "size", "wdepth", "layers",
        "trees", "_tin", "_tout",
    )

    def __init__(
        self,
        graph: Graph,
        parent: np.ndarray,
        parent_edge: np.ndarray,
        depth: np.ndarray,
        comp_of: np.ndarray,
        roots: np.ndarray,
        members: np.ndarray,
        comp_start: np.ndarray,
    ):
        self.graph = graph
        self.parent = parent
        self.parent_edge = parent_edge
        self.depth = depth
        self.comp_of = comp_of
        self.roots = roots
        self.comp_start = comp_start
        self.layers: Optional[list] = None
        #: shared DFS interval stores, filled by AncestryLabeling on
        #: first use (one full-n pair for the WHOLE forest).
        self._tin: Optional[np.ndarray] = None
        self._tout: Optional[np.ndarray] = None
        self._derive(members)
        self.trees = [
            RootedTree._from_forest(self, ci) for ci in range(self.comp_count)
        ]

    @property
    def comp_count(self) -> int:
        return int(self.roots.shape[0])

    def interval_store(self) -> tuple[np.ndarray, np.ndarray]:
        """One DFS interval pair for the whole forest, in closed form.

        ``tin[v] = 2 * pre_c(v) - depth(v) + 1`` with ``pre_c`` the
        preorder rank WITHIN ``v``'s component, so each component's
        times span ``1..2n_c`` independently — bit-identical to running
        :func:`repro.graph.csr.dfs_interval_labels` per tree, at O(n)
        total instead of O(components * n).
        """
        if self._tin is None:
            n = self.graph.n
            order = self.order
            pos = np.arange(n, dtype=np.int64)
            tin = np.empty(n, dtype=np.int64)
            tin[order] = (
                2 * (pos - self.comp_start[self.comp_of[order]])
                - self.depth[order]
                + 1
            )
            self._tin = tin
            self._tout = tin + 2 * self.size - 1
        return self._tin, self._tout

    @classmethod
    def build(
        cls, graph: Graph, forbidden: Optional[np.ndarray] = None
    ) -> "Forest":
        """BFS spanning forest of ``G \\ forbidden`` over shared arrays."""
        parts = csrk.bfs_forest(graph.as_csr(), forbidden)
        return cls(graph, *parts)

    @classmethod
    def from_parent_arrays(
        cls,
        graph: Graph,
        parent: np.ndarray,
        parent_edge: np.ndarray,
        comp_of: np.ndarray,
        roots,
    ) -> "Forest":
        """Rebuild a forest from persisted parent/comp arrays (snapshot
        restore): depths come back by pointer doubling, preorder/sizes/
        weighted depths by the same :meth:`_derive` folds as a fresh
        build — all derived state is parent-determined, so the restored
        forest is bit-identical to the one that was saved."""
        parent = np.asarray(parent, dtype=np.int64)
        parent_edge = np.asarray(parent_edge, dtype=np.int64)
        comp_of = np.asarray(comp_of, dtype=np.int64)
        roots = np.asarray(roots, dtype=np.int64)
        depth = csrk.tree_depths(parent, -1)
        if roots.size:
            depth[roots] = 0
        C = roots.shape[0]
        n = graph.n
        if n:
            counts = np.bincount(comp_of, minlength=C)
        else:
            counts = np.zeros(C, dtype=np.int64)
        comp_start = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        members = np.argsort(comp_of, kind="stable").astype(np.int64)
        return cls(
            graph, parent, parent_edge, depth, comp_of, roots, members, comp_start
        )

    def _derive(self, members: np.ndarray) -> None:
        """Canonical preorder, subtree sizes and weighted depths for all
        components at once.

        Shallow components (the common case) are folded together with
        one vectorized pass per global depth layer — thousands of tiny
        fragments cost the same handful of numpy calls as one big tree.
        Components deeper than the ``max(64, n_c/8)`` crossover (paths,
        rings) take the sequential per-component walk instead, exactly
        like standalone construction; both produce identical arrays.
        """
        graph = self.graph
        n = graph.n
        parent, depth, comp_of = self.parent, self.depth, self.comp_of
        C = self.comp_count
        order = np.empty(n, dtype=np.int64)
        size = np.zeros(n, dtype=np.int64)
        wdepth = np.zeros(n, dtype=np.float64)
        self.order = order
        self.size = size
        self.wdepth = wdepth
        if n == 0 or C == 0:
            return
        if graph.m:
            edge_w = graph.as_csr().edge_weight
        else:
            edge_w = np.zeros(0, dtype=np.float64)
        counts = np.diff(self.comp_start)
        heights = np.zeros(C, dtype=np.int64)
        np.maximum.at(heights, comp_of, depth)
        vec_c = (heights + 1) <= np.maximum(64, counts // 8)
        seq_comps = np.flatnonzero(~vec_c)
        if seq_comps.size == 0:
            dl = depth
        else:
            dl = np.where(vec_c[comp_of], depth, -1)
        if vec_c.any():
            layers = csrk.depth_layers(dl)
            size += csrk.subtree_sizes(parent, dl, layers)
            # Sibling groups over the whole forest in one stable sort.
            ch = np.flatnonzero((parent >= 0) & (dl >= 0))
            gpar = parent[ch]
            grp = np.argsort(gpar, kind="stable")
            gch = ch[grp]
            gpar = gpar[grp]
            offset = np.zeros(n, dtype=np.int64)
            if gch.size:
                starts = np.flatnonzero(np.r_[True, gpar[1:] != gpar[:-1]])
                bounds = np.r_[starts, gch.size]
                csz = size[gch]
                cum = np.cumsum(csz)
                within = cum - csz
                base = np.repeat(within[starts], np.diff(bounds))
                offset[gch] = within - base
            pre = np.zeros(n, dtype=np.int64)
            pe = self.parent_edge
            for vs in layers[1:]:
                ps = parent[vs]
                pre[vs] = pre[ps] + 1 + offset[vs]
                wdepth[vs] = wdepth[ps] + edge_w[pe[vs]]
            tv = np.flatnonzero(dl >= 0)
            order[self.comp_start[comp_of[tv]] + pre[tv]] = tv
            if seq_comps.size == 0 and C == 1:
                self.layers = layers
        # Deep components: the standalone sequential walk, writing into
        # the shared arrays (per-component transient state only).
        for ci in seq_comps.tolist():
            self._derive_sequential(int(ci), members, edge_w)

    def _derive_sequential(
        self, ci: int, members: np.ndarray, edge_w: np.ndarray
    ) -> None:
        lo = int(self.comp_start[ci])
        hi = int(self.comp_start[ci + 1])
        comp_vs = members[lo:hi].tolist()
        parent = self.parent
        pe = self.parent_edge
        children: dict[int, list[int]] = {}
        for v in comp_vs:
            p = int(parent[v])
            if p >= 0:
                children.setdefault(p, []).append(v)
        for kids in children.values():
            kids.sort()
        root = int(self.roots[ci])
        wdepth = self.wdepth
        order = self.order
        pos = lo
        stack = [root]
        while stack:
            u = stack.pop()
            order[pos] = u
            pos += 1
            wu = wdepth[u]
            for c in reversed(children.get(u, ())):
                wdepth[c] = wu + edge_w[pe[c]]
                stack.append(c)
        size = self.size
        for u in order[lo:hi][::-1].tolist():
            size[u] += 1
            p = int(parent[u])
            if p >= 0:
                size[p] += size[u]


def spanning_forest(
    graph: Graph,
    forbidden: Iterable[int] = (),
    method: str = "bfs",
    engine: str = "csr",
) -> tuple[list[RootedTree], Sequence[int]]:
    """Build one rooted spanning tree per component of ``G \\ forbidden``.

    Returns ``(trees, comp_of)`` where ``comp_of[v]`` indexes into
    ``trees``.  Roots are the smallest vertex id of each component.
    ``engine="csr"`` (the default, BFS only) builds the whole forest
    over ONE shared array set (:class:`Forest` — O(n + m) memory
    regardless of the component count) and returns ``comp_of`` as an
    int64 array; the reference engine and DFS forests keep the
    per-component sequential builders and return a plain list.  Trees
    and component numbering are identical across engines.
    """
    if engine not in ("csr", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    skip = set(forbidden)
    use_csr = method == "bfs" and engine == "csr"
    if use_csr:
        forest = Forest.build(graph, csrk.forbidden_mask(graph.m, skip))
        return forest.trees, forest.comp_of
    comp_of = [-1] * graph.n
    trees: list[RootedTree] = []
    for start in graph.vertices():
        if comp_of[start] != -1:
            continue
        if method == "bfs":
            tree = RootedTree.bfs(graph, start, skip, engine="reference")
        else:
            tree = RootedTree.dfs(graph, start, skip)
        idx = len(trees)
        for v in tree.vertices:
            comp_of[v] = idx
        trees.append(tree)
    return trees, comp_of
