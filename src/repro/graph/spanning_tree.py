"""Rooted spanning trees and spanning forests.

Both labeling schemes of the paper fix a rooted spanning tree ``T`` of
(each connected component of) the input graph.  :class:`RootedTree`
records parents, children, depths, preorder, and weighted depths, and
supports the tree-path queries the decoders rely on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.graph import csr as csrk
from repro.graph.graph import Graph


@dataclass(frozen=True)
class TreeArrays:
    """Numpy view of a :class:`RootedTree`, shared by the array kernels.

    ``depth`` is -1 outside the tree's component (unlike the list
    attribute, which pads with 0), ``order`` is the children-sorted
    preorder, ``size`` the subtree vertex counts and ``layers`` the
    vertices grouped by depth (see :func:`repro.graph.csr.depth_layers`).
    """

    parent: np.ndarray
    parent_edge: np.ndarray
    depth: np.ndarray
    order: np.ndarray
    size: np.ndarray
    layers: list = field(repr=False, default_factory=list)


class RootedTree:
    """A rooted spanning tree of one connected component of a graph.

    Attributes
    ----------
    graph: the host graph.
    root: root vertex.
    vertices: the component's vertices, in preorder.
    parent: ``parent[v]`` is the tree parent of ``v`` (-1 for the root
        and for vertices outside the component).
    parent_edge: index (in the host graph) of the edge to the parent
        (-1 where undefined).
    children: ``children[v]`` lists tree children in deterministic
        (ascending vertex id) order.
    depth / wdepth: hop / weighted distance from the root along the tree.
    """

    def __init__(
        self,
        graph: Graph,
        root: int,
        parent: Sequence[int],
        parent_edge: Sequence[int],
        engine: str = "csr",
    ):
        """``engine="csr"`` (default) derives children, preorder, depths
        and subtree sizes with the vectorized depth-layer kernels of
        :mod:`repro.graph.csr` (falling back to the sequential walk on
        trees whose height makes per-layer passes lose);
        ``engine="reference"`` is the original per-vertex construction.
        Both engines produce identical attributes, asserted by
        ``tests/test_csr_kernels.py``."""
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.graph = graph
        self.root = root
        self.parent = list(parent)
        self.parent_edge = list(parent_edge)
        self._arrays: Optional[TreeArrays] = None
        self._children: Optional[list[list[int]]] = None
        self._child_groups: Optional[tuple] = None
        if engine == "csr" and self._init_vectorized():
            return
        n = graph.n
        children: list[list[int]] = [[] for _ in range(n)]
        self.in_tree = [False] * n
        self.in_tree[root] = True
        for v in range(n):
            p = self.parent[v]
            if p >= 0:
                children[p].append(v)
                self.in_tree[v] = True
        for v in range(n):
            children[v].sort()
        self._children = children
        self.vertices: list[int] = []
        self.depth = [0] * n
        self.wdepth = [0.0] * n
        stack = [root]
        while stack:
            u = stack.pop()
            self.vertices.append(u)
            for c in reversed(children[u]):
                self.depth[c] = self.depth[u] + 1
                self.wdepth[c] = self.wdepth[u] + graph.weight(self.parent_edge[c])
                stack.append(c)
        self.tree_edge_indices = frozenset(
            self.parent_edge[v] for v in self.vertices if v != root
        )

    @property
    def children(self) -> list[list[int]]:
        """Per-vertex sorted child lists, built on first use.

        The vectorized constructor defers this list-of-lists: the array
        kernels (ancestry, sketches, heavy-light) work off
        :meth:`arrays` and never touch it, so eager construction would
        be pure overhead on the hot per-cluster build path.
        """
        if self._children is None:
            n = self.graph.n
            children: list[list[int]] = [[] for _ in range(n)]
            if self._child_groups is not None:
                heads, bounds, gch_list = self._child_groups
                for gi, p in enumerate(heads):
                    children[p] = gch_list[bounds[gi] : bounds[gi + 1]]
            self._children = children
        return self._children

    def _init_vectorized(self) -> bool:
        """Array-native construction (the CSR depth-layer pass).

        Children ordering, preorder, depths and weighted depths all come
        from a handful of vectorized passes: pointer-doubling depths,
        one lexsort for sibling grouping, a bottom-up size fold and a
        top-down preorder-rank/wdepth fold per depth layer.  Per-vertex
        Python survives only in the children list-of-lists fill.  The
        per-layer folds pay one numpy call per tree level, so on trees
        deeper than ~n/8 (paths, rings — the high-diameter adversary)
        this returns False and the sequential walk runs instead; both
        paths produce identical attributes.
        """
        graph = self.graph
        n = graph.n
        root = self.root
        if n < 192:
            # Below ~200 vertices the fixed numpy call overhead loses to
            # the sequential walk (measured crossover); tiny per-cluster
            # trees are the common case in the tree-cover stack.
            return False
        parent_np = np.asarray(self.parent, dtype=np.int64)
        if parent_np.shape[0] != n:
            return False
        depth_np = csrk.tree_depths(parent_np, root)
        layers = csrk.depth_layers(depth_np)
        height = len(layers)
        in_tree_np = depth_np >= 0
        count = int(in_tree_np.sum())
        if height > max(64, count // 8):
            return False
        pe_np = np.asarray(self.parent_edge, dtype=np.int64)
        size = csrk.subtree_sizes(parent_np, depth_np, layers)
        if int(size[root]) != count:
            # The parent array contains chains terminating at a vertex
            # other than ``root`` (a second detached root with
            # descendants).  The sequential walk only covers ``root``'s
            # component; defer to it rather than folding foreign
            # subtrees into the preorder.
            return False
        # Children grouped by parent: stable sort on parent keeps the
        # ascending-vertex-id order within each sibling group.
        ch = np.flatnonzero(parent_np >= 0)
        gpar = parent_np[ch]
        grp = np.argsort(gpar, kind="stable")
        gch = ch[grp]
        gpar = gpar[grp]
        if gch.size:
            starts = np.flatnonzero(np.r_[True, gpar[1:] != gpar[:-1]])
            bounds = np.r_[starts, gch.size]
            self._child_groups = (
                gpar[starts].tolist(),
                bounds.tolist(),
                gch.tolist(),
            )
            # Preorder rank: parent's rank + 1 + sizes of earlier
            # siblings (the classic DFS offset identity).
            csz = size[gch]
            cum = np.cumsum(csz)
            within = cum - csz
            base = np.repeat(within[starts], np.diff(bounds))
            offset = np.zeros(n, dtype=np.int64)
            offset[gch] = within - base
        else:
            offset = np.zeros(n, dtype=np.int64)
        pre = np.zeros(n, dtype=np.int64)
        wdepth_np = np.zeros(n, dtype=np.float64)
        if graph.m:
            edge_w = graph.as_csr().edge_weight
        else:  # pragma: no cover - edgeless trees are single vertices
            edge_w = np.zeros(0, dtype=np.float64)
        for vs in layers[1:]:
            ps = parent_np[vs]
            pre[vs] = pre[ps] + 1 + offset[vs]
            wdepth_np[vs] = wdepth_np[ps] + edge_w[pe_np[vs]]
        order = np.empty(count, dtype=np.int64)
        tv = np.flatnonzero(in_tree_np)
        order[pre[tv]] = tv
        self.in_tree = in_tree_np.tolist()
        self.vertices = order.tolist()
        self.depth = np.where(in_tree_np, depth_np, 0).tolist()
        self.wdepth = wdepth_np.tolist()
        self.tree_edge_indices = frozenset(
            pe_np[in_tree_np & (np.arange(n) != root)].tolist()
        )
        self._arrays = TreeArrays(
            parent=parent_np,
            parent_edge=pe_np,
            depth=depth_np,
            order=order,
            size=size,
            layers=layers,
        )
        return True

    def arrays(self) -> TreeArrays:
        """Cached numpy snapshot of the tree, for the CSR/tree kernels."""
        if self._arrays is None:
            n = self.graph.n
            parent = np.array(self.parent, dtype=np.int64)
            parent_edge = np.array(self.parent_edge, dtype=np.int64)
            depth = np.array(self.depth, dtype=np.int64)
            depth[~np.array(self.in_tree, dtype=bool)] = -1
            order = np.array(self.vertices, dtype=np.int64)
            layers = csrk.depth_layers(depth)
            size = csrk.subtree_sizes(parent, depth, layers)
            self._arrays = TreeArrays(
                parent=parent,
                parent_edge=parent_edge,
                depth=depth,
                order=order,
                size=size,
                layers=layers,
            )
        return self._arrays

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def bfs(
        cls,
        graph: Graph,
        root: int = 0,
        forbidden: Iterable[int] = (),
        engine: str = "csr",
    ) -> "RootedTree":
        """BFS spanning tree of the component of ``root`` in ``G \\ forbidden``.

        ``engine="csr"`` (default) runs the level-synchronous array BFS
        of :func:`repro.graph.csr.bfs_tree`; ``engine="reference"`` is
        the sequential implementation — both produce the identical tree.
        """
        if engine not in ("csr", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "csr":
            # Only a boolean array is a ready-made per-edge mask; any
            # other ndarray (e.g. int edge indices) is an edge-index
            # iterable like every other ``forbidden`` value.
            if isinstance(forbidden, np.ndarray) and forbidden.dtype == np.bool_:
                mask = forbidden
            else:
                mask = csrk.forbidden_mask(graph.m, forbidden)
            parent, parent_edge, _, _ = csrk.bfs_tree(graph.as_csr(), root, mask)
            return cls(graph, root, parent.tolist(), parent_edge.tolist())
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                queue.append(v)
        return cls(graph, root, parent, parent_edge, engine="reference")

    @classmethod
    def dijkstra(
        cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()
    ) -> "RootedTree":
        """Shortest-path tree of the component of ``root`` in ``G \\ forbidden``.

        Used for the tree-cover trees of Section 4, whose radius bound
        the stretch analysis relies on.
        """
        import heapq
        import math

        skip = set(forbidden)
        dist = [math.inf] * graph.n
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        dist[root] = 0.0
        heap: list[tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, ei in graph.incident(u):
                if ei in skip:
                    continue
                nd = d + graph.weight(ei)
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    parent_edge[v] = ei
                    heapq.heappush(heap, (nd, v))
        return cls(graph, root, parent, parent_edge)

    @classmethod
    def dfs(cls, graph: Graph, root: int = 0, forbidden: Iterable[int] = ()) -> "RootedTree":
        """DFS spanning tree of the component of ``root`` in ``G \\ forbidden``."""
        skip = set(forbidden)
        parent = [-1] * graph.n
        parent_edge = [-1] * graph.n
        seen = [False] * graph.n
        seen[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for v, ei in graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_edge[v] = ei
                stack.append(v)
        return cls(graph, root, parent, parent_edge)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self, v: int) -> bool:
        return self.in_tree[v]

    def is_tree_edge(self, edge_index: int) -> bool:
        return edge_index in self.tree_edge_indices

    def child_endpoint(self, edge_index: int) -> int:
        """For a tree edge, return the endpoint farther from the root."""
        e = self.graph.edge(edge_index)
        if self.parent[e.u] == e.v and self.parent_edge[e.u] == edge_index:
            return e.u
        if self.parent[e.v] == e.u and self.parent_edge[e.v] == edge_index:
            return e.v
        raise ValueError(f"edge {edge_index} is not a tree edge")

    def path_to_root(self, v: int) -> list[int]:
        """Vertices on the v -> root tree path, inclusive."""
        path = [v]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor by the depth-walk method (O(depth))."""
        while self.depth[u] > self.depth[v]:
            u = self.parent[u]
        while self.depth[v] > self.depth[u]:
            v = self.parent[v]
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def tree_path(self, u: int, v: int) -> list[int]:
        """Vertices on the unique u -> v path in the tree, inclusive."""
        w = self.lca(u, v)
        up = []
        x = u
        while x != w:
            up.append(x)
            x = self.parent[x]
        down = []
        x = v
        while x != w:
            down.append(x)
            x = self.parent[x]
        return up + [w] + list(reversed(down))

    def tree_distance(self, u: int, v: int) -> float:
        """Weighted length of the u -> v tree path."""
        w = self.lca(u, v)
        return self.wdepth[u] + self.wdepth[v] - 2.0 * self.wdepth[w]

    def subtree_vertices(self, v: int) -> list[int]:
        """All vertices in the subtree rooted at ``v`` (preorder)."""
        out = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def post_order(self) -> list[int]:
        """Vertices in post-order (children before parents)."""
        return list(reversed(self.vertices))


def spanning_forest(
    graph: Graph,
    forbidden: Iterable[int] = (),
    method: str = "bfs",
    engine: str = "csr",
) -> tuple[list[RootedTree], list[int]]:
    """Build one rooted spanning tree per component of ``G \\ forbidden``.

    Returns ``(trees, comp_of)`` where ``comp_of[v]`` indexes into
    ``trees``.  Roots are the smallest vertex id of each component.
    ``engine`` selects the BFS implementation (see :meth:`RootedTree.bfs`);
    DFS forests always use the sequential builder.
    """
    if engine not in ("csr", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    skip = set(forbidden)
    comp_of = [-1] * graph.n
    trees: list[RootedTree] = []
    use_csr = method == "bfs" and engine == "csr"
    mask = csrk.forbidden_mask(graph.m, skip) if use_csr else None
    for start in graph.vertices():
        if comp_of[start] != -1:
            continue
        if use_csr:
            tree = RootedTree.bfs(graph, start, mask if mask is not None else ())
        elif method == "bfs":
            tree = RootedTree.bfs(graph, start, skip, engine="reference")
        else:
            tree = RootedTree.dfs(graph, start, skip)
        idx = len(trees)
        for v in tree.vertices:
            comp_of[v] = idx
        trees.append(tree)
    return trees, comp_of
