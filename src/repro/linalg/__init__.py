"""GF(2) linear algebra used by the fast cycle-space decoder (Section 3.1.3)."""

from repro.linalg.gf2 import XorBasis, gf2_rank, gf2_solve, in_span

__all__ = ["XorBasis", "gf2_rank", "gf2_solve", "in_span"]
