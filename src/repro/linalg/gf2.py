"""Bit-packed GF(2) linear algebra.

Vectors over GF(2) are Python integers (bit ``i`` = coordinate ``i``),
so XOR is vector addition and word-level parallelism comes for free.
The cycle-space decoder (Section 3.1.3 of the paper) reduces the
``are s and t disconnected by F`` question to solvability of the systems
``A x = w1`` / ``A x = w2`` whose columns are the augmented edge labels
``phi'(e)``; :func:`gf2_solve` answers exactly that and also returns a
solution vector, from which the decoder reconstructs the disconnecting
induced edge cut ``F' subseteq F``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


class XorBasis:
    """Incremental row-reduced basis of GF(2) vectors with combination tracking.

    ``add(vector, tag)`` inserts a vector; ``represent(vector)`` returns
    the set of tags whose inserted vectors XOR to ``vector`` (or ``None``
    if ``vector`` is outside the span).  Tags are small ints; combination
    masks are kept as bit sets over insertion order.
    """

    def __init__(self) -> None:
        # pivot bit -> (reduced vector, combination mask over inserted tags)
        self._rows: dict[int, tuple[int, int]] = {}
        self._num_inserted = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rank(self) -> int:
        return len(self._rows)

    def _reduce(self, vector: int, mask: int) -> tuple[int, int]:
        while vector:
            pivot = vector.bit_length() - 1
            row = self._rows.get(pivot)
            if row is None:
                return vector, mask
            vector ^= row[0]
            mask ^= row[1]
        return 0, mask

    def add(self, vector: int) -> bool:
        """Insert a vector.  Returns True if it increased the rank."""
        tag_mask = 1 << self._num_inserted
        self._num_inserted += 1
        reduced, mask = self._reduce(vector, tag_mask)
        if reduced == 0:
            return False
        self._rows[reduced.bit_length() - 1] = (reduced, mask)
        return True

    def contains(self, vector: int) -> bool:
        """True iff ``vector`` lies in the span of the inserted vectors."""
        reduced, _ = self._reduce(vector, 0)
        return reduced == 0

    def represent(self, vector: int) -> Optional[list[int]]:
        """Indices (insertion order) of inserted vectors XOR-ing to ``vector``.

        Returns ``None`` if ``vector`` is not in the span.  The empty list
        is returned for the zero vector.
        """
        reduced, mask = self._reduce(vector, 0)
        if reduced != 0:
            return None
        return [i for i in range(self._num_inserted) if (mask >> i) & 1]


def gf2_rank(vectors: Iterable[int]) -> int:
    """Rank of a collection of GF(2) vectors."""
    basis = XorBasis()
    for v in vectors:
        basis.add(v)
    return basis.rank


def in_span(vectors: Sequence[int], target: int) -> bool:
    """True iff ``target`` is a GF(2) combination of ``vectors``."""
    basis = XorBasis()
    for v in vectors:
        basis.add(v)
    return basis.contains(target)


def gf2_solve(columns: Sequence[int], target: int) -> Optional[list[int]]:
    """Solve ``A x = target`` where A's columns are ``columns`` (GF(2)).

    Returns the 0/1 solution vector ``x`` as a list of ints, or ``None``
    if the system has no solution.  This is the Gaussian-elimination
    option of Section 3.1.3 (O((f + log n) f^2) via word-parallel rows).
    """
    basis = XorBasis()
    for col in columns:
        basis.add(col)
    combo = basis.represent(target)
    if combo is None:
        return None
    x = [0] * len(columns)
    for i in combo:
        x[i] = 1
    return x
