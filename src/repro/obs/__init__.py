"""Observability spine: metrics registry, request tracing, stats export.

One consistent measurement layer for every tier of the serving stack:

* :class:`MetricsRegistry` — thread-safe counters/gauges/histograms on
  a fixed base-``2^(1/4)`` bucket family, merged **exactly** across
  processes (spawn shard workers and build workers ship their
  registries to the parent as dicts or zlib-packed bytes);
* :class:`Trace` / :class:`SlowQueryLog` — per-request span timelines
  (decode → coalesce → shard → partition → send) carried through the
  wire protocol by an optional trace-id header field;
* :class:`PhaseTimer` — ordered build-phase attribution replacing the
  hand-rolled ``build_phase_s`` / ``phase_s`` dict threading;
* :func:`render_prometheus` — text exposition for ``cli stats``.

See ``src/repro/obs/README.md`` and ``docs/ARCHITECTURE.md`` §12 for
the metric naming scheme and the span timeline diagram.
"""

from .registry import (
    BUCKET_BASE,
    BUCKETS_PER_OCTAVE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    bucket_index,
    bucket_upper_edge,
    render_prometheus,
)
from .tracing import SlowQueryLog, Trace, mint_trace_id

__all__ = [
    "BUCKET_BASE",
    "BUCKETS_PER_OCTAVE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "SlowQueryLog",
    "Trace",
    "bucket_index",
    "bucket_upper_edge",
    "mint_trace_id",
    "render_prometheus",
]
