"""Process-local, thread-safe metrics registry (the observability spine).

Every serving-tier process — the asyncio front door, each shard pool
worker, each :class:`~repro._util.build_pool.BuildPool` worker — owns
one :class:`MetricsRegistry` holding three instrument kinds:

* :class:`Counter` — a monotone event count (``requests``, ``errors``);
* :class:`Gauge` — a last-write-wins level (``connections_open``,
  ``queue_depth``);
* :class:`Histogram` — a log-bucketed latency/size distribution.

Histograms use one **fixed bucket family** everywhere: bucket ``i``
covers ``(2^((i-1)/4), 2^(i/4)]`` (base ``2^(1/4)``, four buckets per
octave, ≤ 19 % relative width).  Because the edges are a property of
the family — never of the data — histograms recorded in *different
processes* merge **exactly**: merging is integer addition per bucket
index, so a parent aggregating N worker registries reports precisely
the distribution one process observing everything would have reported
(asserted across spawn workers by ``tests/test_obs.py``).

Registries cross process boundaries as plain dicts (:meth:`
MetricsRegistry.to_wire` / :meth:`MetricsRegistry.merge_wire`) — safe
to pickle over a ``multiprocessing`` pipe — or as compact zlib-packed
JSON bytes (:meth:`MetricsRegistry.to_bytes`).  :func:`render_prometheus`
turns a registry dump into the Prometheus text exposition the
``repro.cli stats --prometheus`` command prints.

The hot path is deliberately boring: one ``threading.Lock`` per
registry, taken for the few integer ops of an observation.  Metric
points are per *chunk* / per *request*, never per vertex, so the cost
is amortized over batch work — ``benchmarks/bench_obs.py`` gates the
end-to-end serving overhead at ≤ 5 %.  A registry constructed with
``enabled=False`` hands out shared no-op instruments, which is the
metrics-off arm of that benchmark.
"""

from __future__ import annotations

import json
import math
import threading
import time
import zlib
from typing import Dict, Iterator, Optional

#: the histogram bucket family: edge(i) = BUCKET_BASE ** i = 2^(i/4).
BUCKET_BASE = 2.0 ** 0.25

#: buckets per factor-of-two (the "4" in 2^(1/4)).
BUCKETS_PER_OCTAVE = 4

#: bucket indices are clamped to [-_MAX_BUCKET, _MAX_BUCKET]; 2^(±128)
#: spans every latency/size this repo can observe.
_MAX_BUCKET = BUCKETS_PER_OCTAVE * 128


def bucket_index(value: float) -> int:
    """Index of the fixed bucket holding ``value``.

    Bucket ``i`` covers ``(2^((i-1)/4), 2^(i/4)]``; non-positive values
    land in the bottom clamp bucket.  The mapping depends only on the
    value, so two processes bucket identically by construction.
    """
    if value <= 0.0:
        return -_MAX_BUCKET
    idx = math.ceil(BUCKETS_PER_OCTAVE * math.log2(value))
    # ceil can land one bucket high on exact edges hit by FP noise;
    # the clamp only guards absurd magnitudes.
    if idx < -_MAX_BUCKET:
        return -_MAX_BUCKET
    if idx > _MAX_BUCKET:
        return _MAX_BUCKET
    return idx


def bucket_upper_edge(index: int) -> float:
    """Upper edge ``2^(index/4)`` of bucket ``index``."""
    return 2.0 ** (index / BUCKETS_PER_OCTAVE)


class Counter:
    """Monotone event counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins level (supports inc/dec for depth tracking)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Log-bucketed distribution over the fixed ``2^(1/4)`` family.

    Tracks exact ``count``/``sum``/``min``/``max`` alongside the sparse
    bucket counts, so merges lose nothing an aggregator reports:
    bucket addition is exact, and min/max/sum/count combine exactly.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets", "_lock")

    def __init__(self, name: str = "", lock: Optional[threading.Lock] = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: Dict[int, int] = {}
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        idx = bucket_index(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bucket edge at quantile ``q`` (in [0, 100]).

        Exact to within one bucket (≤ 19 % relative) and — because the
        edges are fixed — identical whether the histogram was recorded
        in one process or merged from many.
        """
        with self._lock:
            if not self.count:
                return 0.0
            rank = math.ceil(q / 100.0 * self.count)
            rank = min(max(rank, 1), self.count)
            seen = 0
            for idx in sorted(self.buckets):
                seen += self.buckets[idx]
                if seen >= rank:
                    # never report an edge beyond the observed extremes
                    return min(bucket_upper_edge(idx), self.vmax)
            return self.vmax  # pragma: no cover - unreachable

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in exactly (same bucket family by construction)."""
        with self._lock:
            self.count += other.count
            self.total += other.total
            self.vmin = min(self.vmin, other.vmin)
            self.vmax = max(self.vmax, other.vmax)
            for idx, n in other.buckets.items():
                self.buckets[idx] = self.buckets.get(idx, 0) + n

    def to_dict(self) -> dict:
        """Wire form: everything needed for an exact merge."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.vmin if self.count else None,
                "max": self.vmax if self.count else None,
                "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            }

    def merge_dict(self, data: dict) -> None:
        """Exact merge of a :meth:`to_dict` payload."""
        with self._lock:
            self.count += int(data["count"])
            self.total += float(data["sum"])
            if data.get("min") is not None:
                self.vmin = min(self.vmin, float(data["min"]))
            if data.get("max") is not None:
                self.vmax = max(self.vmax, float(data["max"]))
            for key, n in data.get("buckets", {}).items():
                idx = int(key)
                self.buckets[idx] = self.buckets.get(idx, 0) + int(n)

    def summary(self, scale: float = 1.0, ndigits: int = 4) -> dict:
        """JSON-ready percentile summary (values multiplied by ``scale``)."""
        with self._lock:
            count, vmax, mean = self.count, self.vmax, self.mean
        return {
            "count": count,
            "mean": round(mean * scale, ndigits),
            "p50": round(self.percentile(50) * scale, ndigits),
            "p90": round(self.percentile(90) * scale, ndigits),
            "p99": round(self.percentile(99) * scale, ndigits),
            "p99_9": round(self.percentile(99.9) * scale, ndigits),
            "max": round(vmax * scale, ndigits) if count else 0.0,
        }


class _Noop:
    """Shared do-nothing instrument of a disabled registry."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NOOP = _Noop()


class _NoopTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP_TIMER = _NoopTimer()


class _Timer:
    """``with registry.timer("name"):`` — observes elapsed seconds."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._hist.observe(time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Named instruments of one process, created lazily, merged exactly.

    Metric names are dotted paths (``server.request_seconds``,
    ``shard.partition_decode_seconds``) — the naming scheme is
    documented in ``docs/ARCHITECTURE.md`` §12.  All instruments of a
    registry share one lock: observation cost is a couple of integer
    ops under an uncontended lock, and creation races are impossible.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------
    def counter(self, name: str):
        if not self.enabled:
            return _NOOP
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name, self._lock))
        return c

    def gauge(self, name: str):
        if not self.enabled:
            return _NOOP
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name, self._lock))
        return g

    def histogram(self, name: str):
        if not self.enabled:
            return _NOOP
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return h

    def timer(self, name: str):
        """Context manager observing elapsed seconds into ``name``."""
        if not self.enabled:
            return _NOOP_TIMER
        return _Timer(self.histogram(name))

    # -- aggregation ---------------------------------------------------
    def to_wire(self) -> dict:
        """The registry as a plain dict (pickle/JSON-safe, merge-exact)."""
        if not self.enabled:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hists = list(self._histograms.items())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {n: h.to_dict() for n, h in hists},
        }

    def merge_wire(self, wire: dict) -> None:
        """Fold a :meth:`to_wire` dump from another process in exactly.

        Counters and histogram buckets add; gauges take the incoming
        value (a worker's gauge is its latest level, not a delta).
        """
        for name, value in wire.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in wire.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in wire.get("histograms", {}).items():
            hist = self.histogram(name)
            if isinstance(hist, Histogram):
                hist.merge_dict(data)

    def to_bytes(self) -> bytes:
        """Compact binary form (zlib-packed canonical JSON)."""
        return zlib.compress(
            json.dumps(self.to_wire(), sort_keys=True).encode("utf-8")
        )

    def merge_bytes(self, data: bytes) -> None:
        self.merge_wire(json.loads(zlib.decompress(data).decode("utf-8")))

    @classmethod
    def from_wire(cls, wire: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge_wire(wire)
        return reg

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump: counters/gauges verbatim, histograms with
        percentile summaries *and* their exact buckets (so a scraper can
        merge dumps from several servers exactly)."""
        wire = self.to_wire()
        return {
            "counters": dict(sorted(wire["counters"].items())),
            "gauges": {
                n: round(v, 6) for n, v in sorted(wire["gauges"].items())
            },
            "histograms": {
                name: {
                    **self._histograms[name].summary(),
                    "sum": data["sum"],
                    "buckets": data["buckets"],
                }
                for name, data in sorted(wire["histograms"].items())
            },
        }


def _prom_name(name: str, prefix: str) -> str:
    clean = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{clean}" if prefix else clean


def render_prometheus(dump: dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a registry dump.

    ``dump`` is a :meth:`MetricsRegistry.to_wire` / :meth:`
    MetricsRegistry.snapshot` payload (both carry exact buckets).
    Histograms render as cumulative ``_bucket{le="..."}`` series plus
    ``_sum``/``_count``, counters as ``counter``, gauges as ``gauge``.
    """
    lines: list[str] = []
    for name, value in sorted(dump.get("counters", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(dump.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, data in sorted(dump.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for key in sorted(data.get("buckets", {}), key=int):
            cumulative += int(data["buckets"][key])
            edge = bucket_upper_edge(int(key))
            lines.append(f'{metric}_bucket{{le="{edge:.6g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{metric}_sum {data['sum']}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


class PhaseTimer:
    """Ordered wall-clock phase attribution (the ``phase_s`` spine).

    Replaces the hand-rolled ``t0 = perf_counter(); d["x"] = ...``
    threading in scheme construction and the scale benchmark: phases
    are recorded with ``with timer.phase("forest"): ...`` (or, for
    straight-line code, ``timer.start()`` then ``timer.split("forest")``
    at each boundary) and read back as the familiar ``{phase: seconds}``
    dict — same keys, and :meth:`rounded` applies the same
    ``round(x, 3)`` the benchmark rows always used, so committed row
    shapes are unchanged.  Re-entering a phase name accumulates (a
    phase split across call sites still reports its total).
    """

    __slots__ = ("seconds", "_registry", "_metric", "_mark")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 metric: str = ""):
        #: insertion-ordered ``{phase: seconds}`` (plain dict semantics)
        self.seconds: Dict[str, float] = {}
        self._registry = registry
        self._metric = metric
        self._mark: Optional[float] = None

    def phase(self, name: str):
        return _Phase(self, name)

    def start(self) -> "PhaseTimer":
        """Arm the sequential clock (for :meth:`split`-style timing)."""
        self._mark = time.perf_counter()
        return self

    def split(self, name: str) -> float:
        """Record time since :meth:`start`/the previous split as ``name``.

        The stopwatch-lap twin of :meth:`phase` for straight-line code
        where consecutive phases share boundaries.  Returns the lap.
        """
        if self._mark is None:
            raise RuntimeError("PhaseTimer.split() before start()")
        now = time.perf_counter()
        lap = now - self._mark
        self._mark = now
        self.record(name, lap)
        return lap

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        if self._registry is not None:
            self._registry.histogram(f"{self._metric or 'phase'}.{name}").observe(
                seconds
            )

    def rounded(self, ndigits: int = 3) -> Dict[str, float]:
        """The dict the benchmark rows commit: ``round(s, ndigits)``."""
        return {name: round(s, ndigits) for name, s in self.seconds.items()}


class _Phase:
    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.record(self._name, time.perf_counter() - self._t0)
        return False


__all__ = [
    "BUCKET_BASE",
    "BUCKETS_PER_OCTAVE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "bucket_index",
    "bucket_upper_edge",
    "render_prometheus",
]
