"""Per-request tracing: trace ids, span timelines, and the slow-query log.

A :class:`Trace` is born when the server decodes a request frame — with
the client's trace id if the frame carried one (``FLAG_TRACED`` in the
wire protocol), freshly minted otherwise — and rides the request
through the coalescer and shard dispatch.  Each stage appends a
**span**: a ``(name, start_offset_s, duration_s)`` triple relative to
the trace's birth, producing the timeline

    decode -> coalesce -> shard -> partition -> send

for a coalesced single-pair query (batch requests skip ``coalesce``).
Spans are plain tuples appended under no lock — a trace belongs to one
request and is only ever touched from the event loop plus the single
callback that settles it, so the cheap representation is the safe one.

Traces observe; they never steer.  No decode path branches on the
presence of a trace, which is how the bit-identity constraint (answers
and snapshots identical with tracing on or off) holds by construction
— asserted end-to-end by ``tests/test_obs.py``.

Finished traces whose wall time crosses a threshold land in the
:class:`SlowQueryLog`, a fixed-capacity ring buffer dumped through the
``STATS`` admin frame — the "why did p99 move" plane: connect with
``cli stats`` and read the span timelines of the worst recent requests.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

#: trace ids are 63-bit so they survive signed-int64 round trips.
_TRACE_ID_BITS = 63


def mint_trace_id() -> int:
    """A fresh nonzero 63-bit trace id (os.urandom; fork/spawn safe)."""
    while True:
        tid = int.from_bytes(os.urandom(8), "big") & ((1 << _TRACE_ID_BITS) - 1)
        if tid:
            return tid


class Trace:
    """One request's span timeline.

    ``trace_id`` is the wire-carried correlation id; ``t0`` is the
    ``perf_counter`` birth instant all span offsets are relative to.
    """

    __slots__ = ("trace_id", "t0", "spans", "meta", "_finished_s")

    def __init__(self, trace_id: Optional[int] = None):
        self.trace_id = trace_id if trace_id is not None else mint_trace_id()
        self.t0 = time.perf_counter()
        #: list of (name, start_offset_s, duration_s)
        self.spans: List[Tuple[str, float, float]] = []
        self.meta: Dict[str, object] = {}
        self._finished_s: Optional[float] = None

    def span(self, name: str) -> "_Span":
        """``with trace.span("decode"): ...`` appends a timed span."""
        return _Span(self, name)

    def add_span(self, name: str, start: float, duration: float) -> None:
        """Append a span from explicit ``perf_counter`` endpoints."""
        self.spans.append((name, start - self.t0, duration))

    def finish(self) -> float:
        """Seal the trace; returns (and caches) total wall seconds."""
        if self._finished_s is None:
            self._finished_s = time.perf_counter() - self.t0
        return self._finished_s

    @property
    def total_s(self) -> float:
        return self._finished_s if self._finished_s is not None else (
            time.perf_counter() - self.t0
        )

    def to_dict(self, ndigits: int = 6) -> dict:
        return {
            "trace_id": f"{self.trace_id:016x}",
            "total_s": round(self.total_s, ndigits),
            "spans": [
                {"name": n, "start_s": round(s, ndigits), "dur_s": round(d, ndigits)}
                for n, s, d in self.spans
            ],
            **({"meta": dict(self.meta)} if self.meta else {}),
        }


class _Span:
    __slots__ = ("_trace", "_name", "_t0")

    def __init__(self, trace: Trace, name: str):
        self._trace = trace
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._trace.add_span(
            self._name, self._t0, time.perf_counter() - self._t0
        )
        return False


class SlowQueryLog:
    """Fixed-capacity ring buffer of the slowest recent request traces.

    ``record`` keeps a trace only if its total time crosses
    ``threshold_s`` (0.0 keeps everything — what the tests use); the
    deque evicts oldest-first so the log is always the *recent* slow
    set, not the all-time worst.  Thread-safe: the event loop records
    while STATS handlers snapshot.
    """

    def __init__(self, capacity: int = 64, threshold_s: float = 0.050):
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, trace: Trace, **extra: object) -> bool:
        total = trace.finish()
        if total < self.threshold_s:
            return False
        entry = trace.to_dict()
        if extra:
            entry.update(extra)
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        return True

    def snapshot(self) -> dict:
        with self._lock:
            entries = list(self._entries)
        return {
            "capacity": self.capacity,
            "threshold_s": self.threshold_s,
            "recorded": self.recorded,
            "entries": entries,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


__all__ = ["Trace", "SlowQueryLog", "mint_trace_id"]
