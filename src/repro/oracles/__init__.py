"""Exact (non-succinct) connectivity and distance oracles.

These are the ground-truth comparators for every randomized scheme in
the package: the centralized analogue of the sensitivity oracles the
paper cites ([PT07], [DP17], [CLPR12]), implemented exactly.
"""

from repro.oracles.connectivity import ConnectivityOracle
from repro.oracles.distances import DistanceOracle, shortest_path, shortest_path_distance

__all__ = [
    "ConnectivityOracle",
    "DistanceOracle",
    "shortest_path",
    "shortest_path_distance",
]
