"""Exact connectivity sensitivity oracle (ground truth).

Answers ``<s, t, F>`` connectivity queries by direct traversal of
``G \\ F``.  Linear space and O(m) query time — this is the *trivial*
end of the tradeoff that the paper's labels compress down to
poly-logarithmic bits; it is used throughout the tests and benches to
verify the labels' answers.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.graph.graph import Graph


class ConnectivityOracle:
    """Exact <s, t, F> connectivity queries on a fixed graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def connected_many(
        self, pairs: Sequence[tuple[int, int]], faults=()
    ) -> list[bool]:
        """Batched ground truth for ``query_many``-style query streams.

        ``faults`` follows the batched-API convention (one shared
        iterable of edge indices, or a per-pair sequence).  Queries are
        grouped by fault set and answered off one component labeling of
        ``G \\ F`` per distinct set, so verifying a batch against the
        labels costs O(m) per fault set instead of per query.
        """
        from repro.core._batch import normalize_faults
        from repro.graph.components import connected_components

        per = normalize_faults(pairs, faults)
        out = [False] * len(pairs)
        groups: dict[frozenset, list[int]] = {}
        for qi, F in enumerate(per):
            groups.setdefault(frozenset(F), []).append(qi)
        for fset, qis in groups.items():
            labels, _ = connected_components(self.graph, fset)
            for qi in qis:
                s, t = pairs[qi]
                out[qi] = labels[s] == labels[t]
        return out

    def connected(self, s: int, t: int, faults: Iterable[int] = ()) -> bool:
        """True iff ``s`` and ``t`` are connected in ``G \\ faults``."""
        if s == t:
            return True
        skip = set(faults)
        seen = [False] * self.graph.n
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v, ei in self.graph.incident(u):
                if ei in skip or seen[v]:
                    continue
                if v == t:
                    return True
                seen[v] = True
                queue.append(v)
        return False

    def component_of(self, s: int, faults: Iterable[int] = ()) -> set[int]:
        """The vertex set of the component of ``s`` in ``G \\ faults``."""
        skip = set(faults)
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v, ei in self.graph.incident(u):
                if ei in skip or v in seen:
                    continue
                seen.add(v)
                queue.append(v)
        return seen

    def is_induced_edge_cut(self, edge_indices: Iterable[int]) -> bool:
        """True iff the edge set equals ``delta(S)`` for some vertex set S.

        For a connected graph this holds iff removing the set splits the
        graph so that every given edge crosses between the two sides of a
        2-coloring; we verify directly: 2-color components of G \\ F and
        check every edge of F crosses a consistent bipartition.
        """
        fset = set(edge_indices)
        if not fset:
            return True
        # Color components of G \ F, then check the "component graph" on
        # F-edges is bipartite with all F-edges crossing and no non-F edge
        # crossing... Equivalently: F = delta(S) iff assigning side(v) by
        # parity works. We test by trying a 2-coloring of components such
        # that every F edge connects opposite colors, and no F edge joins
        # same-colored components, and F contains *all* edges between the
        # two color classes.
        from repro.graph.components import connected_components

        labels, count = connected_components(self.graph, fset)
        # Build component adjacency via F edges.
        comp_edges: list[tuple[int, int]] = []
        for ei in fset:
            e = self.graph.edge(ei)
            comp_edges.append((labels[e.u], labels[e.v]))
        # 2-color the component multigraph.
        color = [-1] * count
        adj: list[list[int]] = [[] for _ in range(count)]
        for a, b in comp_edges:
            if a == b:
                return False  # an F edge internal to a surviving component
            adj[a].append(b)
            adj[b].append(a)
        for start in range(count):
            if color[start] != -1:
                continue
            color[start] = 0
            queue = deque([start])
            while queue:
                a = queue.popleft()
                for b in adj[a]:
                    if color[b] == -1:
                        color[b] = color[a] ^ 1
                        queue.append(b)
                    elif color[b] == color[a]:
                        return False
        # All F edges cross the bipartition by construction; finally check
        # no non-F edge crosses it (F must be *exactly* delta(S)).
        side = [color[labels[v]] for v in self.graph.vertices()]
        for e in self.graph.edges:
            crossing = side[e.u] != side[e.v]
            if crossing != (e.index in fset):
                return False
        return True
