"""Exact distance oracle for ``G \\ F`` (Dijkstra ground truth).

Used to measure the stretch of the approximate distance labels
(Theorem 1.4) and of the routing schemes (Theorems 5.3/5.5/5.8).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Optional

from repro.graph.graph import Graph


def _dijkstra(
    graph: Graph,
    source: int,
    skip: set[int],
    target: Optional[int] = None,
    radius: Optional[float] = None,
) -> tuple[list[float], list[int]]:
    dist = [math.inf] * graph.n
    pred = [-1] * graph.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if target is not None and u == target:
            break
        if radius is not None and d > radius:
            break
        for v, ei in graph.incident(u):
            if ei in skip:
                continue
            nd = d + graph.weight(ei)
            if radius is not None and nd > radius:
                continue
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def shortest_path_distance(
    graph: Graph, s: int, t: int, faults: Iterable[int] = ()
) -> float:
    """Exact dist_{G\\F}(s, t); ``math.inf`` if disconnected."""
    dist, _ = _dijkstra(graph, s, set(faults), target=t)
    return dist[t]


def shortest_path(
    graph: Graph, s: int, t: int, faults: Iterable[int] = ()
) -> Optional[list[int]]:
    """An exact shortest s-t path in G\\F as a vertex list, or None."""
    dist, pred = _dijkstra(graph, s, set(faults), target=t)
    if math.isinf(dist[t]):
        return None
    path = [t]
    while path[-1] != s:
        path.append(pred[path[-1]])
    path.reverse()
    return path


class DistanceOracle:
    """Exact <s, t, F> distance queries on a fixed graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def distance(self, s: int, t: int, faults: Iterable[int] = ()) -> float:
        return shortest_path_distance(self.graph, s, t, faults)

    def distance_many(
        self, pairs, faults=()
    ) -> list[float]:
        """Batched ground truth for ``query_many``-style query streams.

        ``faults`` follows the batched-API convention (one shared
        iterable of edge indices, or a per-pair sequence).  Queries are
        grouped by fault set and then by source, so each distinct
        (source, fault set) runs one full Dijkstra that answers every
        target asking about it — the batched mirror of
        :meth:`distance`, with identical values.
        """
        from repro.core._batch import normalize_faults

        per = normalize_faults(pairs, faults)
        out: list[float] = [math.inf] * len(pairs)
        groups: dict[tuple[frozenset, int], list[int]] = {}
        for qi, F in enumerate(per):
            groups.setdefault((frozenset(F), pairs[qi][0]), []).append(qi)
        for (fset, s), qis in groups.items():
            dist, _ = _dijkstra(self.graph, s, set(fset))
            for qi in qis:
                out[qi] = dist[pairs[qi][1]]
        return out

    def path(self, s: int, t: int, faults: Iterable[int] = ()) -> Optional[list[int]]:
        return shortest_path(self.graph, s, t, faults)

    def ball(self, v: int, radius: float, faults: Iterable[int] = ()) -> dict[int, float]:
        """The ball B_radius(v) in G\\F: vertex -> distance, dist <= radius."""
        dist, _ = _dijkstra(self.graph, v, set(faults), radius=radius)
        return {u: d for u, d in enumerate(dist) if d <= radius}

    def eccentricity(self, v: int, faults: Iterable[int] = ()) -> float:
        """Max finite distance from v (0 if v is isolated)."""
        dist, _ = _dijkstra(self.graph, v, set(faults))
        finite = [d for d in dist if not math.isinf(d)]
        return max(finite) if finite else 0.0
