"""Compact routing schemes (Section 5).

* :mod:`repro.routing.network` — the port-based message-passing model
  of Section 2 (faults detectable only at an endpoint).
* :mod:`repro.routing.tables` — routing labels and tables (Eq. 7-9),
  in both the simple (Theorem 5.5) and load-balanced Γ (Theorem 5.8)
  layouts.
* :mod:`repro.routing.engine` — the seed scalar engine: segment-by-
  segment forwarding of the Lemma 3.17 succinct paths, with fault
  detection, Γ label fetches and reversal to the source.
* :mod:`repro.routing.packed_tables` — array-native routing tables
  (per-instance packed tree-routing state, lazy edge labels).
* :mod:`repro.routing.packed_engine` — the batched multi-message
  stepper ``route_many`` over the packed tables, retry decodes served
  through shared partition caches.
* :mod:`repro.routing.forbidden_set` — Theorem 5.3 (faults known).
* :mod:`repro.routing.fault_tolerant` — Theorems 5.5/5.8 (faults
  unknown; trial-and-error phases with fresh label copies), with the
  ``engine="packed"``/``"reference"`` switch.
* :mod:`repro.routing.baselines` — comparators for Table 1.
* :mod:`repro.routing.lower_bound` — the Ω(f) construction (Thm 1.6).

See ``src/repro/routing/README.md`` for the packed table layout and
the message-stepper data flow.
"""

from repro.routing.network import Network, RouteResult, Telemetry
from repro.routing.forbidden_set import ForbiddenSetRouter
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.packed_engine import PackedRouteEngine
from repro.routing.packed_tables import PackedRoutingPlane

__all__ = [
    "Network",
    "RouteResult",
    "Telemetry",
    "ForbiddenSetRouter",
    "FaultTolerantRouter",
    "PackedRouteEngine",
    "PackedRoutingPlane",
]
