"""Baseline routing comparators for the Table 1 experiment.

Table 1 of the paper compares FT routing schemes by stretch and table
size.  Two runnable calibration points bracket the design space:

* :class:`InteriorRoutingBaseline` — the non-compact extreme: every
  vertex stores the entire graph (Θ(m log n)-bit tables) and performs
  optimal *online* re-routing: move along the shortest path avoiding
  all faults discovered so far, recompute on discovery.  Its stretch is
  the best any scheme oblivious to fault locations can hope for (cf.
  Theorem 1.6 — even this baseline pays Ω(f) on the lower-bound graph),
  while its tables are maximally large.

* :class:`TreeCoverRoutingBaseline` — the fault-free compact extreme:
  Thorup-Zwick-style tree-cover routing with Õ(n^{1/k}) tables and
  stretch O(k) when no faults occur, but no delivery guarantee under
  faults.  This calibrates the price the FT schemes pay for resilience.

The remaining Table 1 rows are the package's own schemes:
``FaultTolerantRouter(table_mode="simple")`` reproduces the
O(deg(v) n^{1/k})-per-vertex profile of Chechik '11 tables, and
``table_mode="balanced"`` is the paper's Õ(f^3 n^{1/k}) construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.graph.graph import Graph
from repro.oracles.distances import shortest_path
from repro.routing.forbidden_set import ForbiddenSetRouter
from repro.routing.network import (
    Network,
    RouteResult,
    Telemetry,
    scalar_route_many,
)
from repro.sizing.bits import bits_for_id


class _BatchRouteMixin:
    """Scalar-loop ``route_many`` so the traffic simulator can drive
    baselines through the same batched interface as the packed router
    (the baselines have no packed plane — the loop is the engine)."""

    def route_many(
        self, requests: Sequence[tuple[int, int]], faults=()
    ) -> list[RouteResult]:
        return scalar_route_many(self.route, requests, faults)


class InteriorRoutingBaseline(_BatchRouteMixin):
    """Full-information online re-routing (linear tables, near-optimal
    stretch)."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def table_bits(self, v: int) -> int:
        """Every vertex stores all m edges (ids + weight)."""
        per_edge = 2 * bits_for_id(self.graph.n) + 32
        return self.graph.m * per_edge

    def max_table_bits(self) -> int:
        return self.table_bits(0)

    def route(self, s: int, t: int, faults: Iterable[int]) -> RouteResult:
        """Move along shortest paths, recomputing at each discovered fault."""
        fault_set = set(faults)
        telemetry = Telemetry()
        network = Network(self.graph, fault_set)
        known: set[int] = set()
        current = s
        safety = 4 * (len(fault_set) + 1) * (self.graph.n + 1)
        steps = 0
        while current != t:
            steps += 1
            if steps > safety:  # pragma: no cover - defensive
                raise RuntimeError("baseline failed to converge")
            path = shortest_path(self.graph, current, t, known)
            if path is None:
                return RouteResult(
                    delivered=False, s=s, t=t, telemetry=telemetry,
                    length=telemetry.weighted,
                )
            moved = False
            for u, v in zip(path, path[1:]):
                ei = self.graph.edge_index_between(u, v)
                if ei in fault_set:
                    known.add(ei)  # detected at u; replan from here
                    break
                port = self.graph.port_of(u, v)
                current = network.traverse(u, port, telemetry)
                moved = True
            if current == t:
                break
            if not moved and path is not None and len(path) > 1:
                # First edge already faulty: replan without moving.
                continue
        return RouteResult(
            delivered=True, s=s, t=t, telemetry=telemetry, length=telemetry.weighted
        )


class TreeCoverRoutingBaseline(_BatchRouteMixin):
    """Fault-free compact routing over the same tree covers.

    Implemented as forbidden-set routing with an empty forbidden set —
    exactly the non-faulty tree-cover scheme the paper builds on.  Under
    faults it simply fails (no retry machinery), which is the point of
    the comparison.
    """

    def __init__(self, graph: Graph, k: int, seed: int = 0, units: Optional[int] = None):
        self.graph = graph
        self.k = k
        self._router = ForbiddenSetRouter(graph, f=0, k=k, seed=seed, units=units)

    def max_table_bits(self) -> int:
        return self._router.max_table_bits()

    def stretch_bound(self) -> float:
        """Fault-free bound (8k+6) under this construction's covers."""
        return 8 * self.k + 6

    def route(self, s: int, t: int, faults: Iterable[int] = ()) -> RouteResult:
        # No fault labels are available to a fault-free scheme: route as
        # if the network were intact; the first faulty edge on the way
        # blocks the message and the route fails.
        return self._router.route(s, t, [], actual_faults=list(faults))
