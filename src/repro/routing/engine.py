"""Segment-by-segment forwarding of succinct paths (Sections 5.1-5.2).

The engine walks a Lemma 3.17 path description through the network:

* 0-labeled segments are forwarded over the recorded port;
* 1-labeled segments are forwarded hop by hop with Thorup-Zwick tree
  routing, using only the current vertex's tree table and the target's
  tree label from the header;
* when the next edge is faulty, the engine obtains the faulty edge's
  routing label — from the path description (non-tree edges), from the
  current vertex's own table, or by querying a Γ_T(e) member over a
  non-faulty port (Claim 5.6) — and sends the message back to the
  source along the traversed prefix, charging the full reversal cost.

The engine's only inputs are the network interface, the per-vertex
tables, and the header contents — the same information the distributed
protocol has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.distance_labels import InstanceKey, LabelInstance
from repro.core.path_description import SuccinctPath
from repro.core.sketch_scheme import SkEdgeLabel
from repro.routing.network import Network, Telemetry
from repro.routing.tables import VertexRoutingTable
from repro.trees.tree_routing import TreeRoutingScheme


@dataclass(frozen=True)
class FollowOutcome:
    """Result of attempting one path description."""

    status: str  # "delivered" | "blocked"
    fault_label: Optional[SkEdgeLabel] = None


class SegmentRouter:
    """Drives one routing attempt along a succinct path."""

    def __init__(
        self,
        network: Network,
        tables: list[VertexRoutingTable],
        key: InstanceKey,
        instance: LabelInstance,
        telemetry: Telemetry,
        trace: Optional[list[int]] = None,
    ):
        self.network = network
        self.tables = tables
        self.key = key
        self.instance = instance
        self.telemetry = telemetry
        self.trace = trace
        self._forward_hops = 0
        self._forward_weight = 0.0
        self._forward_trace: list[int] = []

    # ------------------------------------------------------------------
    def _move(self, u: int, port: int) -> int:
        before = self.telemetry.weighted
        v = self.network.traverse(u, port, self.telemetry)
        self._forward_weight += self.telemetry.weighted - before
        self._forward_hops += 1
        self._forward_trace.append(v)
        if self.trace is not None:
            self.trace.append(v)
        return v

    def _reverse(self, source: int) -> None:
        """Send the message back to the source over the traversed prefix.

        Charges the Claim 5.6 reversal cost: the forward prefix is
        re-walked hop for hop (Γ round trips are sub-messages, already
        charged, and are not part of the retraced walk), and the
        retraced hops are additionally counted in ``reversal_hops`` so
        telemetry can separate backtrack from forward progress.
        """
        self.telemetry.weighted += self._forward_weight
        self.telemetry.hops += self._forward_hops
        self.telemetry.reversal_hops += self._forward_hops
        self.telemetry.reversals += 1
        if self.trace is not None and self._forward_trace:
            # The message physically retraces its steps back to s.
            self.trace.extend(reversed(self._forward_trace[:-1]))
            self.trace.append(source)

    def _nontree_label(self, eid: int) -> SkEdgeLabel:
        """Reconstruct the routing label of a non-tree edge from its EID
        (available in the path description — Section 5.2).

        Resolved through the scheme's packed label store
        (:meth:`SketchConnectivityScheme.label_for_eid`) so the label
        the next decode receives maps straight back onto the batched
        decoder; unknown EIDs degrade to the bare non-tree label the
        engine used to synthesize.
        """
        scheme = self.instance.scheme
        return scheme.label_for_eid(
            eid, component=int(scheme.comp_of[self.instance.tree.root])
        )

    def _fetch_tree_edge_label(
        self, u: int, port: int, gamma_ports: tuple[int, ...]
    ) -> Optional[SkEdgeLabel]:
        """Obtain the label of the faulty tree edge at (u, port).

        Checks u's own table first (the simple mode, parent edges, and
        small-degree Γ cases), then queries Γ members over non-faulty
        ports; every Γ member stores the label by construction."""
        entry = self.tables[u].entries[self.key]
        label = entry.edge_labels.get((u, port))
        if label is not None:
            return label
        for gp in gamma_ports:
            if gp == port or self.network.is_faulty_port(u, gp):
                continue
            w = self.network.round_trip(u, gp, self.telemetry)
            w_entry = self.tables[w].entries.get(self.key)
            if w_entry is None:  # pragma: no cover - Γ members are in the tree
                continue
            label = w_entry.edge_labels.get((u, port))
            if label is not None:
                return label
        return None

    # ------------------------------------------------------------------
    def follow(self, path: SuccinctPath) -> FollowOutcome:
        """Route along ``path``; deliver, or learn one fault and reverse."""
        current = path.s
        tr = self.instance.tree_routing
        for seg in path.segments:
            if seg.kind == "edge":
                port = seg.port_x
                if port is None:
                    raise ValueError("path segment lacks port information")
                if self.network.is_faulty_port(current, port):
                    label = self._nontree_label(seg.eid)
                    self._reverse(path.s)
                    return FollowOutcome(status="blocked", fault_label=label)
                current = self._move(current, port)
            elif seg.kind == "tree":
                if tr is None:
                    raise ValueError("tree segments require routing-enabled labels")
                target = tr.decode_label(seg.tlabel_y)
                guard = 0
                while True:
                    guard += 1
                    if guard > self.network.graph.n + 2:
                        raise RuntimeError("tree routing failed to converge")
                    entry = self.tables[current].entries[self.key]
                    hop = TreeRoutingScheme.next_hop(entry.tree_table, target)
                    if hop is None:
                        break
                    port, gamma_ports = hop
                    if self.network.is_faulty_port(current, port):
                        label = self._fetch_tree_edge_label(current, port, gamma_ports)
                        if label is None:
                            raise RuntimeError(
                                "no Γ member reachable: fault bound exceeded"
                            )
                        self._reverse(path.s)
                        return FollowOutcome(status="blocked", fault_label=label)
                    current = self._move(current, port)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown segment kind {seg.kind!r}")
        if current != path.t:  # pragma: no cover - defensive
            raise RuntimeError("path description did not terminate at t")
        return FollowOutcome(status="delivered")
