"""Fault-tolerant routing — faulty edges unknown to the source
(Section 5.2, Theorems 5.5 and 5.8).

The protocol works in phases over the distance scales.  In phase ``i``
the source tries to reach ``t`` inside the cover tree ``T_{i,i*(t)}``
(whose cluster contains the 2^i-ball of ``t``), in at most ``|F|+1``
trial iterations:

* iteration ``l`` decodes the connectivity labels (using the fresh
  ``l``-th sketch copy — correlations between earlier routing choices
  and the sketch randomness are the reason for the f' = f+1 copies)
  against the currently known fault labels, producing a succinct path;
* the message follows the path; either it arrives, or it hits an
  unknown faulty edge, learns that edge's routing label (from the path
  description for non-tree edges, from the local table or a Γ_T(e)
  member for tree edges — Claim 5.6), and returns to ``s``.

``table_mode`` selects the storage layout:

* ``"simple"`` — every vertex stores the labels of all its incident
  tree edges (Theorem 5.5: global space Õ(f n^{1+1/k}), but a
  high-degree vertex pays Θ(deg) labels);
* ``"balanced"`` — Γ-block replication (Theorem 5.8: Õ(f^3 n^{1/k})
  bits per vertex, degree-independent).

``engine`` selects the execution plane:

* ``"packed"`` (default) — the array-native tables of
  :mod:`repro.routing.packed_tables` driven by the batched multi-
  message stepper of :mod:`repro.routing.packed_engine`;
  :meth:`route_many` advances whole message batches together and
  resolves retry decodes through shared partition caches;
* ``"reference"`` — the seed per-vertex table objects walked one
  message at a time by :class:`~repro.routing.engine.SegmentRouter`.

Both engines produce **bit-identical route traces** — delivery status,
hop sequences, weighted lengths, reversal charges and every telemetry
counter — asserted by ``tests/test_route_traces.py`` and
``tests/test_route_many.py``.

The measured route length is guaranteed (w.h.p.) to be at most
``32 k (|F|+1)^2 * dist(s, t; G \\ F)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SkEdgeLabel
from repro.graph.graph import Graph
from repro.routing.engine import SegmentRouter
from repro.routing.network import (
    Network,
    RouteResult,
    Telemetry,
    scalar_route_many,
)
from repro.routing.packed_engine import PackedRouteEngine
from repro.routing.packed_tables import PackedRoutingPlane
from repro.routing.tables import (
    RoutingLabel,
    VertexRoutingTable,
    build_routing_label,
    build_routing_tables,
)


class FaultTolerantRouter:
    """Compact routing resilient to up to ``f`` unknown edge faults."""

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int,
        seed: int = 0,
        table_mode: str = "balanced",
        units: Optional[int] = None,
        reuse_copy: bool = False,
        engine: str = "packed",
        partition_cache_capacity: int = 256,
        id_space: Optional[int] = None,
        build_workers: int = 1,
    ):
        """``build_workers`` farms the independent per-copy sketch
        builds of every (scale, cluster) instance onto one shared
        process pool (bit-identical labels for every value; 1 = serial
        reference).

        ``reuse_copy=True`` is an *ablation switch*: it decodes every
        retry iteration with sketch copy 0 instead of a fresh copy,
        deliberately violating the independence requirement of Section
        5.2 (the routing choices become correlated with the sketch
        randomness).  Used by ``benchmarks/bench_ablations.py`` to show
        why the paper pays for f' = f+1 copies.

        ``partition_cache_capacity`` bounds each (instance, copy)
        retry-decode partition cache of the packed engine."""
        if f < 0:
            raise ValueError("fault bound f must be >= 0")
        if engine not in ("packed", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        if table_mode not in ("simple", "balanced"):
            # Both planes are built lazily, so validate here rather
            # than after the whole label scheme has been paid for.
            raise ValueError(f"unknown table mode {table_mode!r}")
        self.graph = graph
        self.f = f
        self.k = k
        self.table_mode = table_mode
        self.reuse_copy = reuse_copy
        self.engine = engine
        self.partition_cache_capacity = partition_cache_capacity
        copies = 1 if reuse_copy else f + 1
        gamma_f = f if table_mode == "balanced" else None
        self.scheme = DistanceLabelScheme(
            graph,
            f,
            k,
            seed=seed,
            base_scheme="sketch",
            copies=copies,
            routing=True,
            gamma_f=gamma_f,
            units=units,
            id_space=id_space,
            build_workers=build_workers,
        )
        # Both planes are built lazily: the reference per-vertex table
        # objects on first reference route / bit-accounting call, the
        # packed arrays + stepper on first packed route.
        self._tables: Optional[list[VertexRoutingTable]] = None
        self._packed: Optional[PackedRouteEngine] = None

    def __digest_hints__(self) -> dict[int, str]:
        """Construction-time segment digests, delegated to the label
        scheme (the router's snapshot payload is the scheme's)."""
        return self.scheme.__digest_hints__()

    @property
    def tables(self) -> list[VertexRoutingTable]:
        """The seed per-vertex routing tables (Eq. 9), built lazily.

        The reference engine walks these; the packed engine never
        touches them, but the wire-format bit accounting
        (:meth:`table_bits` etc.) is defined over them, so they stay
        available on every router.
        """
        if self._tables is None:
            self._tables = build_routing_tables(
                self.scheme, self.table_mode, self.f
            )
        return self._tables

    def packed_engine(self) -> PackedRouteEngine:
        """The batched stepper over the packed plane, built lazily."""
        if self._packed is None:
            plane = PackedRoutingPlane(self.scheme, self.table_mode, self.f)
            self._packed = PackedRouteEngine(
                plane,
                self.f,
                reuse_copy=self.reuse_copy,
                cache_capacity=self.partition_cache_capacity,
            )
        return self._packed

    # ------------------------------------------------------------------
    # Sizes and bounds
    # ------------------------------------------------------------------
    def routing_label(self, v: int) -> RoutingLabel:
        return build_routing_label(self.scheme, v)

    def stretch_bound(self, num_faults: int) -> float:
        """Theorem 5.5/5.8 guarantee with this construction's cover
        constant: ``(32k+40)(|F|+1)^2`` (paper: ``32k(|F|+1)^2``).

        Derivation as in Claim 5.4: per iteration the explored path is
        at most ``2((4k+3)(|F|+1) + (|F|+1)) 2^j = 2(4k+5)(|F|+1)2^j``
        (path + Γ detours, both directions); ``|F|+1`` iterations per
        phase and the geometric sum over phases give
        ``8(4k+5)(|F|+1)^2 dist``.
        """
        return (32 * self.k + 40) * (num_faults + 1) ** 2

    def table_bits(self, v: int) -> int:
        return self.tables[v].bit_length()

    def max_table_bits(self) -> int:
        return max((t.bit_length() for t in self.tables), default=0)

    def total_table_bits(self) -> int:
        return sum(t.bit_length() for t in self.tables)

    def max_label_bits(self) -> int:
        return max(
            (self.routing_label(v).bit_length() for v in self.graph.vertices()),
            default=0,
        )

    # ------------------------------------------------------------------
    # The routing protocol
    # ------------------------------------------------------------------
    def route(self, s: int, t: int, faults: Iterable[int]) -> RouteResult:
        """Deliver a message from ``s`` to ``t`` under the (hidden) fault
        set, given only ``L_route(t)`` and the routing tables."""
        if self.engine == "packed":
            return self.packed_engine().route_many([(s, t)], list(faults))[0]
        return self._route_reference(s, t, faults)

    def route_many(
        self,
        requests: Sequence[tuple[int, int]],
        faults=(),
        engine: Optional[str] = None,
    ) -> list[RouteResult]:
        """Route a batch of messages under hidden faults.

        ``faults`` is one shared iterable of edge indices or a
        per-message sequence (the ``query_many`` convention).
        ``engine`` overrides the router's default for this call —
        ``"packed"`` advances all messages together through the array
        stepper; ``"reference"`` loops the seed engine (the benches and
        the trace-equivalence tests compare the two on one router).
        """
        engine = self.engine if engine is None else engine
        if engine == "packed":
            return self.packed_engine().route_many(requests, faults)
        if engine != "reference":
            raise ValueError(f"unknown engine {engine!r}")
        return scalar_route_many(self._route_reference, requests, faults)

    def _route_reference(
        self, s: int, t: int, faults: Iterable[int]
    ) -> RouteResult:
        """The seed scalar protocol over the per-vertex table objects."""
        fault_set = set(faults)
        telemetry = Telemetry()
        network = Network(self.graph, fault_set)
        trace: list[int] = [s]
        if s == t:
            return RouteResult(
                delivered=True, s=s, t=t, telemetry=telemetry, trace=trace
            )
        tables = self.tables
        label_t = self.routing_label(t)
        copies = self.scheme.copies
        for i in range(self.scheme.K + 1):
            scale_entry = label_t.per_scale.get(i)
            if scale_entry is None:
                continue
            j, t_conn = scale_entry
            key = (i, j)
            s_entry = tables[s].entries.get(key)
            if s_entry is None:
                continue  # s is not in T_{i, i*(t)}; try the next scale
            instance = self.scheme.instances[key]
            telemetry.phases += 1
            known: list[SkEdgeLabel] = []
            known_eids: set[int] = set()
            for iteration in range(self.f + 1):
                telemetry.iterations += 1
                telemetry.decode_calls += 1
                copy = 0 if self.reuse_copy else min(iteration, copies - 1)
                result = instance.scheme.decode(
                    s_entry.conn_label,
                    t_conn,
                    known,
                    copy=copy,
                    want_path=True,
                )
                if not result.connected:
                    break  # s, t disconnected here (w.h.p.); next phase
                path = result.path
                header_bits = path.bit_length(self.graph.n) + sum(
                    lab.bit_length() for lab in known
                )
                telemetry.note_header(header_bits)
                engine = SegmentRouter(
                    network, tables, key, instance, telemetry, trace=trace
                )
                outcome = engine.follow(path)
                if outcome.status == "delivered":
                    return RouteResult(
                        delivered=True,
                        s=s,
                        t=t,
                        telemetry=telemetry,
                        length=telemetry.weighted,
                        scale=i,
                        trace=trace,
                    )
                label = outcome.fault_label
                if label is None or label.eid in known_eids:
                    break  # defensive: no new information; next phase
                known.append(label)
                known_eids.add(label.eid)
        return RouteResult(
            delivered=False,
            s=s,
            t=t,
            telemetry=telemetry,
            length=telemetry.weighted,
            trace=trace,
        )
