"""Forbidden-set routing — faulty edges known to the source (Theorem 5.3).

The source is handed the routing labels of the destination and of every
forbidden edge.  It runs the Section 4 decoder to find the first scale
at which ``s`` and ``t`` are connected avoiding F, obtains the succinct
path description (Lemma 5.2), and the message follows it; since the
description already avoids F, no reversals occur and the route length
is at most ``(8k-2)(|F|+1) * dist(s, t; G \\ F)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.core.distance_labels import DistanceLabelScheme
from repro.graph.graph import Graph
from repro.routing.engine import SegmentRouter
from repro.routing.network import Network, RouteResult, Telemetry
from repro.routing.tables import (
    RoutingLabel,
    VertexRoutingTable,
    build_routing_label,
    build_routing_tables,
)


class ForbiddenSetRouter:
    """Compact routing with an up-front forbidden edge set."""

    def __init__(
        self,
        graph: Graph,
        f: int,
        k: int,
        seed: int = 0,
        units: Optional[int] = None,
    ):
        self.graph = graph
        self.f = f
        self.k = k
        self.scheme = DistanceLabelScheme(
            graph,
            f,
            k,
            seed=seed,
            base_scheme="sketch",
            copies=1,
            routing=True,
            units=units,
        )
        self.tables: list[VertexRoutingTable] = build_routing_tables(
            self.scheme, "simple", f
        )

    # ------------------------------------------------------------------
    def routing_label(self, v: int) -> RoutingLabel:
        return build_routing_label(self.scheme, v)

    def stretch_bound(self, num_faults: int) -> float:
        """Theorem 5.3 guarantee with this construction's cover
        constant: ``(8k+6)(|F|+1)`` (paper: ``(8k-2)(|F|+1)``; see
        DistanceLabelScheme.estimate_at_scale)."""
        return (8 * self.k + 6) * (num_faults + 1)

    def max_table_bits(self) -> int:
        return max((t.bit_length() for t in self.tables), default=0)

    # ------------------------------------------------------------------
    def route(
        self,
        s: int,
        t: int,
        faults: Iterable[int],
        actual_faults: Optional[Iterable[int]] = None,
    ) -> RouteResult:
        """Route a message from ``s`` to ``t`` given the labels of F.

        ``actual_faults`` lets callers separate the edges whose labels
        are known to ``s`` from the edges that are really down (used by
        the fault-free baseline, which knows nothing); by default they
        coincide, which is the forbidden-set model.
        """
        faults = list(faults)
        telemetry = Telemetry()
        network = Network(
            self.graph, faults if actual_faults is None else actual_faults
        )
        if s == t:
            return RouteResult(delivered=True, s=s, t=t, telemetry=telemetry)
        s_label = self.scheme.vertex_label(s)
        t_label = self.scheme.vertex_label(t)
        fault_labels = [self.scheme.edge_label(ei) for ei in faults]
        telemetry.decode_calls += 1
        result = self.scheme.decode(
            s_label, t_label, fault_labels, copy=0, want_path=True
        )
        if math.isinf(result.estimate) or result.inner is None:
            return RouteResult(delivered=False, s=s, t=t, telemetry=telemetry)
        path = result.inner.path
        telemetry.note_header(path.bit_length(self.graph.n))
        instance = self.scheme.instances[result.instance_key]
        trace: list[int] = [s]
        engine = SegmentRouter(
            network, self.tables, result.instance_key, instance, telemetry,
            trace=trace,
        )
        outcome = engine.follow(path)
        delivered = outcome.status == "delivered"
        return RouteResult(
            delivered=delivered,
            s=s,
            t=t,
            telemetry=telemetry,
            length=telemetry.weighted,
            scale=result.scale,
            trace=trace,
        )
