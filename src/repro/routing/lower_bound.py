"""The Ω(f) stretch lower bound (Theorem 1.6, Figure 4).

The construction: ``f+1`` internally disjoint s-t paths, each of length
``L = Θ(n/f)``.  The adversary fails the *last* edge (the one at ``t``)
of every path except one, chosen uniformly at random.  Any routing
scheme oblivious to the fault locations — even with unbounded tables —
discovers a failed path only after walking its full length, so the
expected route length is

    L/(f+1) + 2L (1 - 1/(f+1)) 1/f + ... = Ω(f L),

an expected stretch of Ω(f) against the optimum L.

This module builds the construction, evaluates the optimal *oblivious*
strategy (try the paths in a fixed order) both analytically and by
simulation, and can subject any router with a ``route(s, t, faults)``
method to the same adversary.
"""

from __future__ import annotations

from typing import Callable

from repro._util import rng_from
from repro.graph.generators import lower_bound_graph
from repro.graph.graph import Graph
from repro.routing.network import RouteResult


def adversarial_fault_sets(f: int, path_length: int) -> list[tuple[Graph, int, int, list[int]]]:
    """All ``f+1`` fault patterns of the Theorem 1.6 adversary.

    Pattern ``sigma`` keeps path ``sigma`` alive and fails the last edge
    of every other path.  Returns (graph, s, t, fault_edges) per pattern
    (the graph object is shared).
    """
    graph, s, t = lower_bound_graph(f, path_length)
    last_edges = _last_edges(graph, t, f, path_length)
    patterns = []
    for sigma in range(f + 1):
        faults = [ei for p, ei in enumerate(last_edges) if p != sigma]
        patterns.append((graph, s, t, faults))
    return patterns


def _last_edges(graph: Graph, t: int, f: int, path_length: int) -> list[int]:
    """The edge incident to ``t`` on each of the f+1 paths, in path order."""
    edges = [ei for _, ei in graph.incident(t)]
    if len(edges) != f + 1:  # pragma: no cover - construction invariant
        raise RuntimeError("unexpected lower-bound construction")
    return edges


def sequential_strategy_expected_stretch(f: int) -> float:
    """Expected stretch of the optimal oblivious strategy, analytically.

    Trying paths in a fixed order against a uniformly random surviving
    path sigma costs ``2L`` per failed trial plus ``L`` for the final
    success; E[#failed trials] = f/2, so E[length]/L = 1 + f.
    """
    return 1.0 + float(f)


def simulate_sequential_strategy(f: int, path_length: int, trials: int, seed: int = 0) -> float:
    """Monte-carlo estimate of the oblivious strategy's stretch.

    The strategy walks path 0 to its end; if the last edge is faulty it
    backtracks and tries path 1, and so on — the best any scheme can do
    without fault information (Theorem 1.6's proof strategy).
    """
    graph, s, t = lower_bound_graph(f, path_length)
    last_edges = _last_edges(graph, t, f, path_length)
    rng = rng_from(seed, "lower_bound", f, path_length)
    total = 0.0
    for _ in range(trials):
        sigma = int(rng.integers(0, f + 1))
        faults = {ei for p, ei in enumerate(last_edges) if p != sigma}
        length = 0.0
        for p in range(f + 1):
            if p == sigma:
                length += path_length  # success: reach t
                break
            length += 2 * (path_length - 1)  # walk to the break, return
        total += length / path_length
    return total / trials


def measure_router_on_lower_bound(
    route_fn: Callable[[int, int, list[int]], RouteResult],
    f: int,
    path_length: int,
) -> float:
    """Average stretch of an arbitrary router over all f+1 fault patterns.

    ``route_fn(s, t, faults)`` must return a RouteResult; undelivered
    routes count as infinite stretch.
    """
    total = 0.0
    patterns = adversarial_fault_sets(f, path_length)
    for _, s, t, faults in patterns:
        result = route_fn(s, t, faults)
        if not result.delivered:
            return float("inf")
        total += result.length / float(path_length)
    return total / len(patterns)
