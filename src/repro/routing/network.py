"""Port-based message-passing network with hidden edge faults.

This is the routing model of Section 2: a message sits at a vertex; the
vertex may forward it through one of its ports; a faulty edge is
detected only when the message is at one of its endpoints.  The
simulator enforces exactly that interface and meters every traversal,
so the benches can report true weighted route lengths (including the
Γ-query detours and the reversals of the trial-and-error scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.graph.graph import Graph


class FaultyEdgeError(RuntimeError):
    """Raised when a protocol tries to forward over a faulty edge."""


@dataclass
class Telemetry:
    """Route-cost meters.

    ``reversal_hops`` counts exactly the hops spent retracing the
    forward prefix back to the source after an unknown fault (the
    Claim 5.6 charging: the reversal re-walks the forward trace, so it
    is charged the forward hop count — Γ round trips are sub-messages
    and are *not* re-charged).  ``hops`` includes those reversal hops;
    ``reversal_hops`` makes the reversal share observable so operators
    can watch how much of the route length is trial-and-error backtrack
    (surfaced by ``scenarios.FaultScenario.health_summary``).
    """

    hops: int = 0
    weighted: float = 0.0
    gamma_queries: int = 0
    reversals: int = 0
    reversal_hops: int = 0
    decode_calls: int = 0
    phases: int = 0
    iterations: int = 0
    max_header_bits: int = 0

    def note_header(self, bits: int) -> None:
        self.max_header_bits = max(self.max_header_bits, bits)


@dataclass
class RouteResult:
    """Outcome of one routing request."""

    delivered: bool
    s: int
    t: int
    telemetry: Telemetry
    #: weighted length of the walk the message (and its Γ queries) took.
    length: float = 0.0
    #: scale at which delivery happened (None if undelivered).
    scale: Optional[int] = None
    trace: list[int] = field(default_factory=list)

    def stretch(self, opt_distance: float) -> float:
        """Route length / optimal G\\F distance."""
        if not self.delivered:
            return float("inf")
        if opt_distance <= 0:
            return 1.0
        return self.length / opt_distance


def scalar_route_many(route, requests, faults=()) -> list[RouteResult]:
    """Batch a scalar ``route(s, t, F)`` over the ``query_many`` faults
    convention (one shared iterable of edge indices, or a per-message
    sequence).

    The single place the scalar-loop batching lives: the baselines and
    the reference branch of ``FaultTolerantRouter.route_many`` both go
    through here so the convention cannot drift between them.
    """
    from repro.core._batch import normalize_faults

    pairs = list(requests)
    per = normalize_faults(pairs, faults)
    return [route(s, t, F) for (s, t), F in zip(pairs, per)]


class Network:
    """A graph with a hidden fault set, exposing only endpoint detection."""

    def __init__(self, graph: Graph, faults: Iterable[int] = ()):
        self.graph = graph
        self.faults = set(faults)

    def is_faulty_port(self, u: int, port: int) -> bool:
        """Local fault detection at ``u`` (free, per the model)."""
        _, ei = self.graph.via_port(u, port)
        return ei in self.faults

    def traverse(self, u: int, port: int, telemetry: Telemetry) -> int:
        """Forward the message from ``u`` through ``port``.

        Returns the new vertex; raises :class:`FaultyEdgeError` if the
        edge is faulty (protocols must check first — the model lets them
        detect incident faults for free).
        """
        v, ei = self.graph.via_port(u, port)
        if ei in self.faults:
            raise FaultyEdgeError(f"edge {ei} = ({u}, {v}) is faulty")
        telemetry.hops += 1
        telemetry.weighted += self.graph.weight(ei)
        return v

    def round_trip(self, u: int, port: int, telemetry: Telemetry) -> int:
        """A query to a neighbor and back (used for Γ label fetches).

        Returns the neighbor id; charges both directions.
        """
        v, ei = self.graph.via_port(u, port)
        if ei in self.faults:
            raise FaultyEdgeError(f"edge {ei} = ({u}, {v}) is faulty")
        telemetry.hops += 2
        telemetry.weighted += 2.0 * self.graph.weight(ei)
        telemetry.gamma_queries += 1
        return v
