"""Vectorized multi-message routing: the ``route_many`` stepper.

The seed :class:`~repro.routing.engine.SegmentRouter` walks one
message at a time, re-reading per-vertex table dicts and bit-unpacking
tree labels on every hop.  This engine advances **all in-flight
messages together**, one segment hop per iteration, over the packed
stores of :mod:`repro.routing.packed_tables`:

* **0-segments** (recovery edges) step as array gathers over the
  global CSR port arrays — neighbor, edge id and weight for every
  such message in one slice, fault checks against per-fault-set
  boolean masks;
* **1-segments** (tree paths) group the messages by instance and
  compute batched Thorup-Zwick next hops with
  :meth:`PackedTreeRouting.next_hop_many` (interval tests as array
  ops; the light child by ``searchsorted`` instead of scanning the
  target label's entries);
* **fault bounce-back** reproduces the Claim 5.6 protocol exactly —
  local label hit or Γ round trips in block order, the reversal charge
  of the forward prefix — and **retry decodes** are resolved through a
  shared :class:`~repro.serving.partition_cache.PartitionCache` per
  (instance, sketch copy): the partition for a discovered fault prefix
  is decoded once and reused by every message (and every batch) that
  reaches the same state, instead of one full Boruvka decode per
  retry.  Caches are keyed by *presentation order*
  (``canonicalize=False``) because succinct-path output depends on
  fault order: the cached answer is bit-identical to handing the seed
  decoder the labels in discovery order, which is what the reference
  engine does.

Route results — delivery status, hop sequences (traces), weighted
lengths, reversal charges, every telemetry counter — are bit-identical
to the retained seed engine (``FaultTolerantRouter(engine="reference")``),
asserted by ``tests/test_route_many.py`` across the generator families
including the high-diameter path and ring adversaries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.core._batch import normalize_faults
from repro.core.path_description import SuccinctPath
from repro.routing.network import RouteResult, Telemetry
from repro.routing.packed_tables import PackedInstanceTables, PackedRoutingPlane
from repro.serving.partition_cache import PartitionCache

_DECODE, _FOLLOW, _DONE = 0, 1, 2


class _CopyPartitions:
    """``decode_partition`` facade pinning one sketch copy of one
    instance scheme (the serving cache protocol has no copy slot)."""

    __slots__ = ("scheme", "copy")

    def __init__(self, scheme, copy: int):
        self.scheme = scheme
        self.copy = copy

    def decode_partition(self, faults):
        return self.scheme.decode_partition(faults, copy=self.copy)


class _Message:
    """Mutable per-message routing state (one slot of the batch)."""

    __slots__ = (
        "s", "t", "fid", "status", "telemetry", "trace", "result",
        # phase machinery (Section 5.2 trial-and-error)
        "scale", "iteration", "known", "known_eids", "known_local",
        "known_ok", "key", "pack", "ls", "lt",
        # the in-flight path attempt
        "path", "seg_idx", "cur", "cur_local", "seg_target", "guard",
        "fwd_hops", "fwd_weight", "fwd_trace",
    )

    def __init__(self, s: int, t: int, fid: int):
        self.s = s
        self.t = t
        self.fid = fid
        self.status = _DECODE
        self.telemetry = Telemetry()
        self.trace: list[int] = [s]
        self.result: Optional[RouteResult] = None
        self.scale = -1
        self.iteration = 0
        self.known: list = []
        self.known_eids: set[int] = set()
        self.known_local: list[int] = []
        self.known_ok = True
        self.key = None
        self.pack: Optional[PackedInstanceTables] = None
        self.ls = -1
        self.lt = -1
        self.path: Optional[SuccinctPath] = None
        self.seg_idx = 0
        self.cur = s
        self.cur_local = -1
        self.seg_target = -1
        self.guard = 0
        self.fwd_hops = 0
        self.fwd_weight = 0.0
        self.fwd_trace: list[int] = []


class PackedRouteEngine:
    """Batched fault-tolerant routing over a :class:`PackedRoutingPlane`.

    Holds the global CSR port arrays, the plane, and the shared
    per-(instance, copy) partition caches; one engine serves any number
    of ``route_many`` batches (caches stay warm across calls).
    """

    def __init__(
        self,
        plane: PackedRoutingPlane,
        f: int,
        reuse_copy: bool = False,
        cache_capacity: int = 256,
    ):
        self.plane = plane
        self.scheme = plane.scheme
        self.graph = plane.scheme.graph
        self.f = f
        self.reuse_copy = reuse_copy
        self.cache_capacity = cache_capacity
        csr = self.graph.as_csr()
        self._indptr = csr.indptr
        self._nbr = csr.neighbors
        self._eids = csr.edge_ids
        self._w = csr.edge_weight
        #: (instance key, copy) -> presentation-order PartitionCache
        self._caches: dict[tuple, PartitionCache] = {}
        self._masks: list[np.ndarray] = []
        #: fault set -> boolean edge mask, LRU-bounded like the
        #: partition caches: a scenario routing a stream of singles
        #: against one live fault set pays the O(m) mask build once.
        self._mask_memo: "OrderedDict[frozenset, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    # Shared partition caches (the retry-decode path)
    # ------------------------------------------------------------------
    def _cache(self, key, copy: int) -> PartitionCache:
        ck = (key, copy)
        cache = self._caches.get(ck)
        if cache is None:
            cache = PartitionCache(
                _CopyPartitions(self.plane.instances[key].scheme, copy),
                capacity=self.cache_capacity,
                canonicalize=False,
            )
            self._caches[ck] = cache
        return cache

    def cache_stats(self) -> dict:
        """Aggregate hit/miss/size counters over every instance cache."""
        hits = misses = evictions = entries = 0
        for cache in self._caches.values():
            hits += cache.stats.hits
            misses += cache.stats.misses
            evictions += cache.stats.evictions
            entries += len(cache)
        return {
            "caches": len(self._caches),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "entries": entries,
        }

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------
    def route_many(
        self, requests: Sequence[tuple[int, int]], faults=()
    ) -> list[RouteResult]:
        """Route every (s, t) message under its (hidden) fault set.

        ``faults`` follows the batched-API convention: one shared
        iterable of edge indices, or a per-message sequence.  Results
        (status, traces, telemetry, lengths, scales) are bit-identical
        to looping the reference engine's ``route``.
        """
        pairs = [(int(s), int(t)) for s, t in requests]
        per = normalize_faults(pairs, faults)
        self._masks = []
        mask_of: dict[frozenset, int] = {}
        fids: list[int] = []
        # A shared fault iterable is aliased across all messages by
        # normalize_faults; key it once (same pattern as
        # group_by_canonical_key).
        prev: Optional[list[int]] = None
        prev_fid = -1
        for F in per:
            if F is prev:
                fids.append(prev_fid)
                continue
            prev = F
            fs = frozenset(F)
            fid = mask_of.get(fs)
            if fid is None:
                fid = len(self._masks)
                mask_of[fs] = fid
                self._masks.append(self._mask_for(fs))
            prev_fid = fid
            fids.append(fid)
        msgs = []
        for (s, t), fid in zip(pairs, fids):
            m = _Message(s, t, fid)
            if s == t:
                m.status = _DONE
                m.result = RouteResult(
                    delivered=True, s=s, t=t, telemetry=m.telemetry,
                    trace=m.trace,
                )
            msgs.append(m)
        for m in msgs:
            if m.status == _DECODE:
                self._advance(m)
        follow = [m for m in msgs if m.status == _FOLLOW]
        while follow:
            bounced = self._tick(follow)
            for m in bounced:
                self._advance(m)
            follow = [m for m in msgs if m.status == _FOLLOW]
        return [m.result for m in msgs]

    def _mask_for(self, fs: frozenset) -> np.ndarray:
        """The (memoized) boolean edge mask of one fault set.

        Ids outside 0..m-1 never match an edge on the reference
        engine's set-membership checks; they are dropped here too
        instead of wrapping (negatives) or raising.
        """
        mask = self._mask_memo.get(fs)
        if mask is not None:
            self._mask_memo.move_to_end(fs)
            return mask
        m_edges = self.graph.m
        mask = np.zeros(max(m_edges, 1), dtype=bool)
        valid = [ei for ei in fs if 0 <= ei < m_edges]
        if valid:
            mask[np.asarray(sorted(valid), dtype=np.int64)] = True
        self._mask_memo[fs] = mask
        while len(self._mask_memo) > self.cache_capacity:
            self._mask_memo.popitem(last=False)
        return mask

    # ------------------------------------------------------------------
    # Phase machinery: scales, iterations, decodes
    # ------------------------------------------------------------------
    def _advance(self, m: _Message) -> None:
        """Run the Section 5.2 decode state machine until the message
        has a path to follow (→ FOLLOW) or is undeliverable (→ DONE)."""
        scheme = self.scheme
        vmem = scheme._vertex_membership
        i_star_t = scheme._i_star[m.t]
        copies = scheme.copies
        tel = m.telemetry
        while True:
            if m.key is None:
                # Find the next scale whose home cluster holds both
                # endpoints (the reference scans label_t.per_scale and
                # the source's table entries the same way).
                i = m.scale + 1
                key = None
                while i <= scheme.K:
                    j = i_star_t.get(i)
                    if j is not None:
                        cand = (i, j)
                        if (
                            vmem[m.t].get(cand) is not None
                            and vmem[m.s].get(cand) is not None
                        ):
                            key = cand
                            break
                    i += 1
                if key is None:
                    m.status = _DONE
                    m.result = RouteResult(
                        delivered=False, s=m.s, t=m.t, telemetry=tel,
                        length=tel.weighted, trace=m.trace,
                    )
                    return
                m.scale = i
                m.key = key
                m.pack = self.plane.instances[key]
                m.ls = vmem[m.s][key]
                m.lt = vmem[m.t][key]
                m.iteration = 0
                m.known = []
                m.known_eids = set()
                m.known_local = []
                m.known_ok = True
                tel.phases += 1
            if m.iteration > self.f:
                m.key = None  # phase budget exhausted; next scale
                continue
            tel.iterations += 1
            tel.decode_calls += 1
            copy = 0 if self.reuse_copy else min(m.iteration, copies - 1)
            result = self._decode(m, copy)
            if not result.connected:
                m.key = None  # s, t disconnected here (w.h.p.); next phase
                continue
            path = result.path
            header_bits = path.bit_length(self.graph.n) + sum(
                lab.bit_length() for lab in m.known
            )
            tel.note_header(header_bits)
            m.path = path
            m.seg_idx = 0
            m.cur = path.s
            m.fwd_hops = 0
            m.fwd_weight = 0.0
            m.fwd_trace = []
            m.status = _FOLLOW
            self._enter_segment(m)
            return

    def _decode(self, m: _Message, copy: int):
        """One retry decode, through the shared partition cache.

        Keyed by the instance, the sketch copy and the *discovery
        order* of the learned faults — exactly the label list the
        reference hands ``scheme.decode`` — so the cached answer
        (path included) is bit-identical.  Labels that do not resolve
        against the store (the defensive bare-EID fallback) route
        through the label-level decoder like the reference does.
        """
        inst_scheme = m.pack.scheme
        if not m.known_ok:
            return inst_scheme.decode(
                inst_scheme.vertex_label(m.ls),
                inst_scheme.vertex_label(m.lt),
                m.known,
                copy=copy,
                want_path=True,
            )
        part = self._cache(m.key, copy).partition(m.known_local)
        return part.answer(m.ls, m.lt, want_path=True)

    def _enter_segment(self, m: _Message) -> None:
        """Position the message at its current segment (or deliver)."""
        while True:
            if m.seg_idx >= len(m.path.segments):
                if m.cur != m.path.t:  # pragma: no cover - defensive
                    raise RuntimeError("path description did not terminate at t")
                m.status = _DONE
                tel = m.telemetry
                m.result = RouteResult(
                    delivered=True, s=m.s, t=m.t, telemetry=tel,
                    length=tel.weighted, scale=m.scale, trace=m.trace,
                )
                return
            seg = m.path.segments[m.seg_idx]
            if seg.kind == "edge":
                if seg.port_x is None:
                    raise ValueError("path segment lacks port information")
                return
            if seg.kind == "tree":
                m.cur_local = m.pack.local_of[m.cur]
                m.seg_target = m.pack.local_of[seg.y]
                m.guard = 0
                return
            raise ValueError(f"unknown segment kind {seg.kind!r}")

    # ------------------------------------------------------------------
    # The batched stepper
    # ------------------------------------------------------------------
    def _tick(self, follow: list) -> list:
        """Advance every following message by one hop; return bounced."""
        edge_msgs: list = []
        tree_groups: dict = {}
        for m in follow:
            if m.path.segments[m.seg_idx].kind == "edge":
                edge_msgs.append(m)
            else:
                tree_groups.setdefault(m.key, []).append(m)
        bounced: list = []
        if edge_msgs:
            self._step_edges(edge_msgs, bounced)
        for key, group in tree_groups.items():
            self._step_tree_group(group, bounced)
        return bounced

    def _step_edges(self, msgs: list, bounced: list) -> None:
        """0-segments: one gather over the CSR port arrays, then per-
        message fault check / move."""
        k = len(msgs)
        U = np.fromiter((m.cur for m in msgs), dtype=np.int64, count=k)
        P = np.fromiter(
            (m.path.segments[m.seg_idx].port_x for m in msgs),
            dtype=np.int64,
            count=k,
        )
        slots = self._indptr[U] + P
        V = self._nbr[slots]
        EI = self._eids[slots]
        W = self._w[EI]
        masks = self._masks
        for i, m in enumerate(msgs):
            ei = int(EI[i])
            if masks[m.fid][ei]:
                self._bounce_nontree(m)
                bounced.append(m)
                continue
            self._move(m, int(V[i]), float(W[i]))
            m.seg_idx += 1
            self._enter_segment(m)

    def _step_tree_group(self, group: list, bounced: list) -> None:
        """1-segments of one instance: batched next-hop + move/bounce."""
        pack: PackedInstanceTables = group[0].pack
        ptree = pack.tree
        n_guard = self.graph.n + 2
        k = len(group)
        for m in group:
            m.guard += 1
            if m.guard > n_guard:  # pragma: no cover - defensive
                raise RuntimeError("tree routing failed to converge")
        LU = np.fromiter((m.cur_local for m in group), dtype=np.int64, count=k)
        LT = np.fromiter((m.seg_target for m in group), dtype=np.int64, count=k)
        action, port, nxt = ptree.next_hop_many(LU, LT)
        moving = np.flatnonzero(action > 0)
        if moving.size:
            GU = pack.to_parent[LU[moving]]
            slots = self._indptr[GU] + port[moving]
            V = self._nbr[slots]
            EI = self._eids[slots]
            W = self._w[EI]
        masks = self._masks
        mi = 0
        for i, m in enumerate(group):
            act = int(action[i])
            if act == 0:  # arrived at this segment's target
                m.cur_local = m.seg_target
                m.seg_idx += 1
                self._enter_segment(m)
                continue
            ei = int(EI[mi])
            if masks[m.fid][ei]:
                child = m.cur_local if act == 1 else int(nxt[i])
                self._bounce_tree(m, child, int(port[i]))
                bounced.append(m)
            else:
                self._move(m, int(V[mi]), float(W[mi]))
                m.cur_local = int(nxt[i])
            mi += 1

    # ------------------------------------------------------------------
    # Moves, bounces, reversals (per message; identical charging to the
    # reference SegmentRouter)
    # ------------------------------------------------------------------
    def _move(self, m: _Message, v: int, w: float) -> None:
        tel = m.telemetry
        tel.hops += 1
        tel.weighted += w
        m.fwd_hops += 1
        m.fwd_weight += w
        m.fwd_trace.append(v)
        m.trace.append(v)
        m.cur = v

    def _reverse(self, m: _Message) -> None:
        """Retrace the forward prefix back to the source (Claim 5.6
        charging: forward hops re-walked; Γ round trips not included)."""
        tel = m.telemetry
        tel.weighted += m.fwd_weight
        tel.hops += m.fwd_hops
        tel.reversal_hops += m.fwd_hops
        tel.reversals += 1
        if m.fwd_trace:
            m.trace.extend(reversed(m.fwd_trace[:-1]))
            m.trace.append(m.path.s)

    def _bounce_nontree(self, m: _Message) -> None:
        """Fault on a 0-segment: the edge's label comes straight from
        the path description's EID (Section 5.2)."""
        seg = m.path.segments[m.seg_idx]
        pack = m.pack
        local_ei = pack.scheme.edge_for_eid(seg.eid)
        if local_ei is not None:
            label = pack.scheme.edge_label(local_ei)
        else:
            # Defensive bare-label fallback, as in the reference
            # engine's label_for_eid path.
            label = pack.scheme.label_for_eid(seg.eid, component=pack.component)
        self._reverse(m)
        self._learn(m, label, local_ei)

    def _bounce_tree(self, m: _Message, child: int, port: int) -> None:
        """Fault on a 1-segment edge: fetch the label locally or from a
        Γ member over a non-faulty port (round trips charged), then
        reverse — the exact reference ``_fetch_tree_edge_label`` flow."""
        pack = m.pack
        lu = m.cur_local
        if not pack.holds_label_locally(lu, child):
            gports, _members = pack.tree.gamma_row(child)
            u = int(pack.to_parent[lu])
            base = int(self._indptr[u])
            mask = self._masks[m.fid]
            tel = m.telemetry
            found = False
            for gp in gports:
                if gp == port:
                    continue
                ei = int(self._eids[base + gp])
                if mask[ei]:
                    continue
                tel.hops += 2
                tel.weighted += 2.0 * float(self._w[ei])
                tel.gamma_queries += 1
                found = True
                break
            if not found:
                raise RuntimeError("no Γ member reachable: fault bound exceeded")
        label = pack.tree_edge_label(child)
        local_ei = pack.parent_edge[child]
        self._reverse(m)
        self._learn(m, label, local_ei)

    def _learn(self, m: _Message, label, local_ei: Optional[int]) -> None:
        """Record a discovered fault label; schedule the next decode.

        A label already known carries no new information — the
        reference breaks to the next phase; otherwise it joins the
        known list (discovery order) and the next retry iteration runs.
        """
        if label is None or label.eid in m.known_eids:
            m.key = None  # defensive: no new information; next phase
        else:
            m.known.append(label)
            m.known_eids.add(label.eid)
            if local_ei is None:
                m.known_ok = False
            else:
                m.known_local.append(local_ei)
            m.iteration += 1
        m.status = _DECODE
