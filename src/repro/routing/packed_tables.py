"""Packed routing-table stores (the array-native Section 5.2 tables).

The seed routing plane materializes one :class:`VertexRoutingTable`
per vertex — a dict of per-instance entries, each holding label
objects and a :class:`~repro.trees.tree_routing.TreeTable` — and the
engine re-reads those dicts on every hop.  This module replaces that
object forest with per-instance array stores built off the same
sources of truth:

* the tree-routing state (DFS intervals, parent/heavy/light-child
  ports, Γ_T(e) port blocks) comes from
  :meth:`TreeRoutingScheme.packed` — contiguous numpy arrays over the
  instance's local vertex ids, computed from the *same*
  ancestry/heavy-light decomposition the wire-format tables encode, so
  packed next-hop decisions equal
  :meth:`TreeRoutingScheme.next_hop` bit for bit;
* edge routing labels are **not** materialized up front.  The seed
  tables eagerly build every tree edge's label (child-subtree sketches
  included) and replicate it over its Γ holders; the packed plane
  keeps only the holder *predicate* (mode, Γ membership, the
  small-degree ``stores_child`` flag of Claim 5.6) and materializes a
  label lazily, once, when a message actually bounces off that edge —
  the labels a route learns are identical objects to what
  ``build_routing_tables`` would have stored;
* global↔local translation reuses the instance's
  ``InducedSubgraph`` maps.

:class:`PackedRoutingPlane` is the whole-scheme store the batched
message stepper (:mod:`repro.routing.packed_engine`) walks; the seed
per-vertex tables remain available behind
``FaultTolerantRouter(engine="reference")`` and for the bit-accounting
APIs (``table_bits`` builds them lazily).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distance_labels import DistanceLabelScheme, InstanceKey, LabelInstance
from repro.core.sketch_scheme import SkEdgeLabel
from repro.trees.tree_routing import PackedTreeRouting


class PackedInstanceTables:
    """One (scale, cluster) instance's routing state, array-resident.

    Wraps the instance's :class:`PackedTreeRouting` arrays with the
    global↔local maps and the lazy edge-label store the fault
    bounce-back needs.  ``simple`` selects the Theorem 5.5 layout
    (every vertex holds all incident tree-edge labels) over the
    Γ-replicated Theorem 5.8 one.
    """

    __slots__ = (
        "key",
        "scheme",
        "tree",
        "to_parent",
        "local_of",
        "parent_edge",
        "component",
        "simple",
        "_labels",
    )

    def __init__(self, key: InstanceKey, inst: LabelInstance, simple: bool):
        if inst.tree_routing is None:
            raise ValueError("instance lacks tree routing state")
        self.key = key
        self.scheme = inst.scheme
        self.tree: PackedTreeRouting = inst.tree_routing.packed()
        self.to_parent = np.asarray(inst.sub.vertex_to_parent, dtype=np.int64)
        #: global vertex id -> instance-local id
        self.local_of = inst.sub.vertex_from_parent
        #: local child vertex -> local edge index of its parent edge
        self.parent_edge = inst.tree.parent_edge
        self.component = int(inst.scheme.comp_of[inst.tree.root])
        self.simple = simple
        self._labels: dict[int, SkEdgeLabel] = {}

    def tree_edge_label(self, child: int) -> SkEdgeLabel:
        """The routing label of the tree edge (parent(child), child).

        Exactly the label the seed ``build_routing_tables`` replicates
        over the edge's holders (``inst.scheme.edge_label`` of the
        child's parent edge), materialized on first bounce and memoized.
        """
        label = self._labels.get(child)
        if label is None:
            label = self.scheme.edge_label(self.parent_edge[child])
            self._labels[child] = label
        return label

    def holds_label_locally(self, lu: int, child: int) -> bool:
        """Does the blocked vertex ``lu`` itself store the label of the
        faulty tree edge (parent(child), child)?

        Mirrors exactly which tables the seed layout populates: both
        endpoints in simple mode; in Γ mode the child endpoint always
        (it sits in its own block) and the parent endpoint iff its
        degree is small (Claim 5.6's ``stores_child_labels``).
        """
        if self.simple or child == lu:
            return True
        return bool(self.tree.stores_child[lu])


class PackedRoutingPlane:
    """Array-native routing tables for every instance of a scheme.

    Built from a routing-enabled :class:`DistanceLabelScheme` — the
    same input as the seed :func:`repro.routing.tables.build_routing_tables`
    — but holding per-instance arrays instead of per-vertex dicts.
    """

    def __init__(self, scheme: DistanceLabelScheme, mode: str, f: int):
        if mode not in ("simple", "balanced"):
            raise ValueError(f"unknown table mode {mode!r}")
        if not scheme.routing:
            raise ValueError("the distance scheme must be built with routing=True")
        self.scheme = scheme
        self.mode = mode
        self.f = f
        simple = mode == "simple"
        self.instances: dict[InstanceKey, PackedInstanceTables] = {
            key: PackedInstanceTables(key, inst, simple)
            for key, inst in scheme.instances.items()
        }

    def instance(self, key: InstanceKey) -> Optional[PackedInstanceTables]:
        return self.instances.get(key)
