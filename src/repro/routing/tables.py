"""Routing labels and tables (Section 5.2, Equations (7)-(9)).

* The *routing label* of a vertex (Eq. 8) stores, per distance scale
  ``i``, the home-cluster index ``i*(v)`` and the vertex's connectivity
  label in that single instance — Õ(1) entries per scale.

* The *routing table* of a vertex stores, for every cover tree
  containing it: its connectivity label, its tree-routing table, and
  the routing labels (Eq. 7 — all f' connectivity-label copies) of a
  subset of tree edges:

  - ``mode="simple"`` (Theorem 5.5): the labels of *all* incident tree
    edges, at both endpoints — per-vertex space O(deg_T(v) n^{1/k}),
    the profile of Chechik '11-style tables;
  - ``mode="balanced"`` (Theorem 5.8): each tree edge's label is
    replicated on its Γ_T(e) block (Claim 5.6) — f+1..2f+1 children of
    the parent endpoint plus the child endpoint — giving Õ(f^3 n^{1/k})
    bits per vertex independent of degree.

Edge labels are indexed by ``(endpoint gid, port at endpoint)`` so a
vertex that detects a fault on one of its ports can look the label up
(or ask a Γ member to) without any global knowledge.

These per-vertex objects are the *wire-format* tables: the bit
accounting (``bit_length``) and the retained reference engine read
them.  The default execution plane packs the same information into
per-instance arrays instead — see
:mod:`repro.routing.packed_tables` — with bit-identical routing
behavior; ``FaultTolerantRouter`` builds this object layout lazily so
the packed plane never pays for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.distance_labels import DistanceLabelScheme, InstanceKey
from repro.core.sketch_scheme import SkEdgeLabel, SkVertexLabel
from repro.sizing.bits import bits_for_count
from repro.trees.tree_routing import TreeTable


@dataclass(frozen=True)
class RoutingLabel:
    """``L_route(v)`` (Eq. 8): per scale, (i*(v), ConnLabel of v there)."""

    v: int
    per_scale: dict[int, tuple[int, SkVertexLabel]]
    key_bits: int

    def bit_length(self) -> int:
        bits = 0
        for _, (_, conn) in self.per_scale.items():
            bits += self.key_bits + conn.bit_length()
        return bits


@dataclass
class InstanceTableEntry:
    """The slice of a vertex's routing table for one cover tree."""

    conn_label: SkVertexLabel
    tree_table: TreeTable
    tree_table_bits: int
    #: (endpoint gid, port at that endpoint) -> full edge routing label.
    edge_labels: dict[tuple[int, int], SkEdgeLabel] = field(default_factory=dict)

    def bit_length(self) -> int:
        bits = self.conn_label.bit_length() + self.tree_table_bits
        unique = {id(lab): lab for lab in self.edge_labels.values()}
        for lab in unique.values():
            bits += lab.bit_length()
        return bits


@dataclass
class VertexRoutingTable:
    """``R_route(v)`` (Eq. 9): one entry per cover tree containing v."""

    v: int
    entries: dict[InstanceKey, InstanceTableEntry] = field(default_factory=dict)

    def bit_length(self) -> int:
        key_bits = bits_for_count(max((k[1] for k in self.entries), default=1)) + 8
        return sum(key_bits + e.bit_length() for e in self.entries.values())


def build_routing_tables(
    scheme: DistanceLabelScheme, mode: str, f: int
) -> list[VertexRoutingTable]:
    """Populate all vertices' routing tables from a routing-enabled
    :class:`DistanceLabelScheme`."""
    if mode not in ("simple", "balanced"):
        raise ValueError(f"unknown table mode {mode!r}")
    if not scheme.routing:
        raise ValueError("the distance scheme must be built with routing=True")
    graph = scheme.graph
    tables = [VertexRoutingTable(v=v) for v in graph.vertices()]
    for key, inst in scheme.instances.items():
        tr = inst.tree_routing
        assert tr is not None
        to_parent = inst.sub.vertex_to_parent
        for lv in range(inst.sub.graph.n):
            gv = to_parent[lv]
            tables[gv].entries[key] = InstanceTableEntry(
                conn_label=inst.scheme.vertex_label(lv),
                tree_table=tr.table(lv),
                tree_table_bits=tr.table_bits(lv),
            )
        tree = inst.tree
        for child in tree.vertices:
            parent = tree.parent[child]
            if parent < 0:
                continue
            le = tree.parent_edge[child]
            label = inst.scheme.edge_label(le)
            gu, gc = to_parent[parent], to_parent[child]
            key_u = (gu, graph.port_of(gu, gc))
            key_c = (gc, graph.port_of(gc, gu))
            if mode == "simple":
                holders = {parent, child}
            else:
                holders = set(tr.gamma_members(child))
                holders.add(child)
                if tr.stores_child_labels(parent):
                    holders.add(parent)
            for h in holders:
                entry = tables[to_parent[h]].entries[key]
                entry.edge_labels[key_u] = label
                entry.edge_labels[key_c] = label
    return tables


def build_routing_label(scheme: DistanceLabelScheme, v: int) -> RoutingLabel:
    """``L_route(v)``: home instance + connectivity label per scale."""
    per_scale: dict[int, tuple[int, SkVertexLabel]] = {}
    for i, j in scheme._i_star[v].items():
        key = (i, j)
        lv = scheme._vertex_membership[v].get(key)
        if lv is None:  # pragma: no cover - home always contains v
            continue
        per_scale[i] = (j, scheme.instances[key].scheme.vertex_label(lv))
    return RoutingLabel(v=v, per_scale=per_scale, key_bits=scheme.key_bits)
