"""Fault-scenario runner: fail/repair/query scripts over static labels.

A key property of the paper's schemes is that the *preprocessing is
fault-independent*: labels and tables are computed once for the intact
graph, and the fault set is an input at query time.  Repairing an edge
is therefore free — it just leaves the current fault set.  This module
packages that workflow for operational use: track a live fault set,
answer connectivity/distance queries and route messages against it,
and keep an audit log.

Used by tests and as a building block for fault-drill tooling (see
``examples/datacenter_fault_drill.py`` for the manual version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.graph.graph import Graph
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.network import RouteResult


@dataclass(frozen=True)
class ScenarioRecord:
    """One audit-log entry."""

    op: str
    args: tuple
    result: object


class FaultBudgetExceeded(RuntimeError):
    """Raised when more than ``f`` simultaneous faults are requested."""


@dataclass
class FaultScenario:
    """A live fault set over a statically labeled graph.

    ``strict=True`` (default) refuses to exceed the fault budget ``f``
    the labels were built for — beyond it the w.h.p. guarantees of the
    cycle-space labels no longer hold.
    """

    graph: Graph
    f: int
    k: int = 2
    seed: int = 0
    build_router: bool = True
    strict: bool = True
    _faults: set[int] = field(default_factory=set, init=False)
    _log: list[ScenarioRecord] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._conn = FaultTolerantConnectivity(
            self.graph, f=self.f, seed=self.seed
        )
        self._dist = FaultTolerantDistance(
            self.graph, f=self.f, k=self.k, seed=self.seed
        )
        self._router: Optional[FaultTolerantRouter] = None
        if self.build_router:
            self._router = FaultTolerantRouter(
                self.graph, f=self.f, k=self.k, seed=self.seed
            )

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def _edge_index(self, u: int, v: int) -> int:
        ei = self.graph.edge_index_between(u, v)
        if ei is None:
            raise ValueError(f"({u}, {v}) is not an edge")
        return ei

    @property
    def active_faults(self) -> frozenset[int]:
        return frozenset(self._faults)

    def fail(self, u: int, v: int) -> None:
        """Mark the link {u, v} as failed."""
        ei = self._edge_index(u, v)
        if ei not in self._faults and self.strict and len(self._faults) >= self.f:
            raise FaultBudgetExceeded(
                f"fault budget f={self.f} exhausted; repair a link first "
                "or rebuild with a larger f"
            )
        self._faults.add(ei)
        self._log.append(ScenarioRecord("fail", (u, v), None))

    def repair(self, u: int, v: int) -> None:
        """Mark the link {u, v} as repaired (free — labels are static)."""
        ei = self._edge_index(u, v)
        self._faults.discard(ei)
        self._log.append(ScenarioRecord("repair", (u, v), None))

    def repair_all(self) -> None:
        self._faults.clear()
        self._log.append(ScenarioRecord("repair_all", (), None))

    # ------------------------------------------------------------------
    # Queries against the live fault set
    # ------------------------------------------------------------------
    def connected(self, s: int, t: int) -> bool:
        result = self._conn.connected(s, t, self._faults)
        self._log.append(ScenarioRecord("connected", (s, t), result))
        return result

    def connected_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched :meth:`connected` against the live fault set.

        One audit-log entry per batch; answers come from the labels'
        batched decoder (``query_many``), which is how replay tooling
        should drive bulk probe sweeps.
        """
        pairs = list(pairs)
        results = self._conn.query_many(pairs, self._faults)
        self._log.append(
            ScenarioRecord("connected_many", tuple(pairs), tuple(results))
        )
        return results

    def distance(self, s: int, t: int) -> float:
        result = self._dist.estimate(s, t, self._faults)
        self._log.append(ScenarioRecord("distance", (s, t), result))
        return result

    def distance_many(self, pairs: Sequence[tuple[int, int]]) -> list[float]:
        """Batched :meth:`distance` against the live fault set."""
        pairs = list(pairs)
        results = self._dist.query_many(pairs, self._faults)
        self._log.append(
            ScenarioRecord("distance_many", tuple(pairs), tuple(results))
        )
        return results

    def route(self, s: int, t: int) -> RouteResult:
        if self._router is None:
            raise RuntimeError("scenario built with build_router=False")
        result = self._router.route(s, t, self._faults)
        self._log.append(
            ScenarioRecord("route", (s, t), (result.delivered, result.length))
        )
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def log(self) -> tuple[ScenarioRecord, ...]:
        return tuple(self._log)

    def health_summary(self, landmarks: list[int]) -> dict:
        """Pairwise landmark connectivity under the live faults.

        All landmark pairs go through one batched decode — the
        scenario-replay shape the batched query engine exists for.
        """
        all_pairs = [
            (u, v)
            for i, u in enumerate(landmarks)
            for v in landmarks[i + 1 :]
        ]
        verdicts = self._conn.query_many(all_pairs, self._faults)
        reachable = sum(verdicts)
        pairs = len(all_pairs)
        return {
            "faults": len(self._faults),
            "landmark_pairs": pairs,
            "reachable_pairs": reachable,
            "partitioned": reachable < pairs,
        }
