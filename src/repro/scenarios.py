"""Fault-scenario runner: fail/repair/query scripts over static labels.

A key property of the paper's schemes is that the *preprocessing is
fault-independent*: labels and tables are computed once for the intact
graph, and the fault set is an input at query time.  Repairing an edge
is therefore free — it just leaves the current fault set.  This module
packages that workflow for operational use: track a live fault set,
answer connectivity/distance queries and route messages against it,
and keep an audit log.

Queries are served through per-fault-set partition caches
(:mod:`repro.serving.partition_cache`): a scenario's fault set changes
rarely relative to how often it is queried, which is exactly the
repeated-fault-set workload the caches exist for — the first query
after a ``fail``/``repair`` decodes the new fault set once, every later
query reuses that partition.  Answers are unchanged (the caches are
bit-identical to the direct ``query_many`` path).

Used by tests and as a building block for fault-drill tooling (see
``examples/datacenter_fault_drill.py`` for the manual version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.graph.graph import Graph
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.network import RouteResult
from repro.serving.partition_cache import PartitionCache


@dataclass(frozen=True)
class ScenarioRecord:
    """One audit-log entry."""

    op: str
    args: tuple
    result: object


class FaultBudgetExceeded(RuntimeError):
    """Raised when more than ``f`` simultaneous faults are requested."""


@dataclass
class FaultScenario:
    """A live fault set over a statically labeled graph.

    ``strict=True`` (default) refuses to exceed the fault budget ``f``
    the labels were built for — beyond it the w.h.p. guarantees of the
    cycle-space labels no longer hold.
    """

    graph: Graph
    f: int
    k: int = 2
    seed: int = 0
    build_router: bool = True
    strict: bool = True
    _faults: set[int] = field(default_factory=set, init=False)
    _log: list[ScenarioRecord] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self._conn = FaultTolerantConnectivity(
            self.graph, f=self.f, seed=self.seed
        )
        self._dist = FaultTolerantDistance(
            self.graph, f=self.f, k=self.k, seed=self.seed
        )
        # Partition caches keyed by canonical fault set: the live fault
        # set changes rarely relative to query volume, so the scenario's
        # query traffic is served off one decode per fault state (the
        # cache keeps recent states — a fail/repair/fail-again cycle
        # returns to a warm entry).
        self._conn_cache = PartitionCache(self._conn, capacity=32)
        self._dist_cache = PartitionCache(self._dist, capacity=32)
        self._router: Optional[FaultTolerantRouter] = None
        # Cumulative routing telemetry (Claim 5.6 charging: reversal
        # hops re-walk the forward prefix and are counted separately
        # from forward progress) — surfaced by health_summary.
        self._route_totals = {
            "messages": 0,
            "delivered": 0,
            "hops": 0,
            "weighted": 0.0,
            "reversals": 0,
            "reversal_hops": 0,
            "gamma_queries": 0,
            "decode_calls": 0,
        }
        if self.build_router:
            self._router = FaultTolerantRouter(
                self.graph, f=self.f, k=self.k, seed=self.seed
            )

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def _edge_index(self, u: int, v: int) -> int:
        ei = self.graph.edge_index_between(u, v)
        if ei is None:
            raise ValueError(f"({u}, {v}) is not an edge")
        return ei

    @property
    def active_faults(self) -> frozenset[int]:
        return frozenset(self._faults)

    def fail(self, u: int, v: int) -> None:
        """Mark the link {u, v} as failed."""
        ei = self._edge_index(u, v)
        if ei not in self._faults and self.strict and len(self._faults) >= self.f:
            raise FaultBudgetExceeded(
                f"fault budget f={self.f} exhausted; repair a link first "
                "or rebuild with a larger f"
            )
        self._faults.add(ei)
        self._log.append(ScenarioRecord("fail", (u, v), None))

    def repair(self, u: int, v: int) -> None:
        """Mark the link {u, v} as repaired (free — labels are static)."""
        ei = self._edge_index(u, v)
        self._faults.discard(ei)
        self._log.append(ScenarioRecord("repair", (u, v), None))

    def repair_all(self) -> None:
        self._faults.clear()
        self._log.append(ScenarioRecord("repair_all", (), None))

    # ------------------------------------------------------------------
    # Queries against the live fault set
    # ------------------------------------------------------------------
    def connected(self, s: int, t: int) -> bool:
        """Is ``s`` connected to ``t`` under the live fault set? (w.h.p.)

        Served off the cached fault-set partition: the first query after
        a fault change decodes once, later queries are O(log f) lookups.
        """
        result = self._conn_cache.query(s, t, self._faults)
        self._log.append(ScenarioRecord("connected", (s, t), result))
        return result

    def connected_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched :meth:`connected` against the live fault set.

        One audit-log entry per batch; answers come off the cached
        fault-set partition (bit-identical to the labels' batched
        decoder ``query_many``), which is how replay tooling should
        drive bulk probe sweeps.
        """
        pairs = list(pairs)
        results = self._conn_cache.query_many(pairs, self._faults)
        self._log.append(
            ScenarioRecord("connected_many", tuple(pairs), tuple(results))
        )
        return results

    def distance(self, s: int, t: int) -> float:
        """Approximate ``G \\ F`` distance under the live fault set.

        Cached like :meth:`connected`: per-instance connectivity
        partitions are decoded once per fault state and reused.
        """
        result = self._dist_cache.query(s, t, self._faults)
        self._log.append(ScenarioRecord("distance", (s, t), result))
        return result

    def distance_many(self, pairs: Sequence[tuple[int, int]]) -> list[float]:
        """Batched :meth:`distance` against the live fault set."""
        pairs = list(pairs)
        results = self._dist_cache.query_many(pairs, self._faults)
        self._log.append(
            ScenarioRecord("distance_many", tuple(pairs), tuple(results))
        )
        return results

    def _tally_route(self, result: RouteResult) -> None:
        tot = self._route_totals
        tel = result.telemetry
        tot["messages"] += 1
        tot["delivered"] += int(result.delivered)
        tot["hops"] += tel.hops
        tot["weighted"] += tel.weighted
        tot["reversals"] += tel.reversals
        tot["reversal_hops"] += tel.reversal_hops
        tot["gamma_queries"] += tel.gamma_queries
        tot["decode_calls"] += tel.decode_calls

    def route(self, s: int, t: int) -> RouteResult:
        """Route one message under the live fault set (packed engine)."""
        if self._router is None:
            raise RuntimeError("scenario built with build_router=False")
        result = self._router.route(s, t, self._faults)
        self._tally_route(result)
        self._log.append(
            ScenarioRecord("route", (s, t), (result.delivered, result.length))
        )
        return result

    def route_many(self, pairs: Sequence[tuple[int, int]]) -> list[RouteResult]:
        """Batched :meth:`route` against the live fault set.

        All messages advance together through the packed multi-message
        stepper (one audit-log entry per batch); per-message results
        are bit-identical to looping :meth:`route`.
        """
        if self._router is None:
            raise RuntimeError("scenario built with build_router=False")
        pairs = list(pairs)
        results = self._router.route_many(pairs, list(self._faults))
        for result in results:
            self._tally_route(result)
        self._log.append(
            ScenarioRecord(
                "route_many",
                tuple(pairs),
                tuple((r.delivered, r.length) for r in results),
            )
        )
        return results

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def log(self) -> tuple[ScenarioRecord, ...]:
        return tuple(self._log)

    def health_summary(self, landmarks: list[int]) -> dict:
        """Pairwise landmark connectivity under the live faults.

        All landmark pairs are answered off one cached fault-set
        partition — the serving-layer shape this probe sweep exists
        for: repeated health checks against an unchanged fault set are
        pure cache hits.  The returned dict includes the connectivity
        cache's counters so monitoring can watch the hit rate.
        """
        all_pairs = [
            (u, v)
            for i, u in enumerate(landmarks)
            for v in landmarks[i + 1 :]
        ]
        verdicts = self._conn_cache.query_many(all_pairs, self._faults)
        reachable = sum(verdicts)
        pairs = len(all_pairs)
        summary = {
            "faults": len(self._faults),
            "landmark_pairs": pairs,
            "reachable_pairs": reachable,
            "partitioned": reachable < pairs,
            "partition_cache": self._conn_cache.stats.snapshot(),
        }
        if self._router is not None:
            tot = dict(self._route_totals)
            hops = tot["hops"]
            # Reversal share of the walked hops: how much of the route
            # cost is Claim 5.6 trial-and-error backtrack (identical
            # charging in both engines).
            tot["reversal_hop_share"] = (
                round(tot["reversal_hops"] / hops, 4) if hops else 0.0
            )
            tot["weighted"] = round(tot["weighted"], 4)
            summary["routing"] = tot
        return summary
