"""repro.server — the network serving tier (asyncio shard RPC).

The front door of the build/serve split: a :mod:`repro.store` snapshot
built once is served to any number of network clients by
:class:`~repro.server.server.LabelServer`, which fans coalesced
fault-set chunks out to shard workers mmap'ing that one snapshot and
supports zero-downtime blue/green snapshot reload.

* :mod:`repro.server.protocol` — versioned length-prefixed binary
  frames (queries, answers, errors, stats, admin reload) and the
  bit-exact wire codecs for scheme answers;
* :mod:`repro.server.server` — the asyncio server: coalescing,
  shard fan-out, backpressure, deadlines, generation swap;
* :mod:`repro.server.client` — blocking and asyncio clients that
  rebuild native answer dataclasses from the wire.

See ``src/repro/server/README.md`` for the serving trace.
"""

from repro.server.client import (
    AsyncQueryClient,
    QueryClient,
    ServerError,
    StatsReport,
)
from repro.server.protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)
from repro.server.server import (
    BadQueryError,
    LabelServer,
    ServerStats,
    ShardLostError,
    run_server,
)

__all__ = [
    "AsyncQueryClient",
    "BadQueryError",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "LabelServer",
    "ProtocolError",
    "QueryClient",
    "ServerError",
    "ServerStats",
    "ShardLostError",
    "StatsReport",
    "encode_frame",
    "run_server",
]
