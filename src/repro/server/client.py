"""Clients for the label server: blocking socket and asyncio flavors.

Both speak :mod:`repro.server.protocol` and rebuild wire answers into
the schemes' native dataclasses, so a client-side answer compares
equal (``==``) to the in-process ``query_many`` / ``route_many``
answer — succinct paths, telemetry and float bits included.

* :class:`QueryClient` — synchronous, one request at a time over one
  TCP connection (the CLI ``query --connect`` path and simple tools);
* :class:`AsyncQueryClient` — pipelined: any number of concurrent
  ``await`` ed requests over one connection, matched to responses by
  request id (the load generator and the hot-reload test drive this).

Server-reported failures raise :class:`ServerError` carrying the
:class:`~repro.server.protocol.ErrorCode`.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Iterable, Optional, Sequence

from repro.server.protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_faults,
    encode_frame,
    encode_pairs,
    wire_to_route_result,
    wire_to_sk_result,
)

_REPLY_OF = {
    FrameType.CONNECTIVITY: FrameType.CONNECTIVITY_REPLY,
    FrameType.DISTANCE: FrameType.DISTANCE_REPLY,
    FrameType.ROUTE: FrameType.ROUTE_REPLY,
    FrameType.PING: FrameType.PONG,
    FrameType.STATS: FrameType.STATS_REPLY,
    FrameType.RELOAD: FrameType.RELOAD_REPLY,
}


class ServerError(RuntimeError):
    """An ``ERROR`` frame from the server."""

    def __init__(self, code: ErrorCode, message: str):
        super().__init__(f"[{code.name}] {message}")
        self.code = code
        self.message = message


class StatsReport(dict):
    """A ``STATS_REPLY`` payload with typed accessors.

    Still a plain dict (``report["server"]["frames"]`` keeps working),
    plus named views over the uniform registry dump the server now
    returns: per-shard queue depth, cache hit rate, latency histogram
    percentiles, the slow-query log, and a Prometheus text rendering.
    """

    @property
    def kind(self) -> Optional[str]:
        return self.get("kind")

    @property
    def version(self) -> Optional[int]:
        return self.get("version")

    @property
    def metrics(self) -> dict:
        """The merged registry dump (counters/gauges/histograms)."""
        return self.get("metrics") or {}

    @property
    def counters(self) -> dict:
        return self.metrics.get("counters") or {}

    @property
    def gauges(self) -> dict:
        return self.metrics.get("gauges") or {}

    @property
    def histograms(self) -> dict:
        return self.metrics.get("histograms") or {}

    @property
    def queue_depth(self) -> list:
        """Chunks in flight per shard at snapshot time."""
        return (self.get("service") or {}).get("queue_depth") or []

    @property
    def cache_hit_rate(self) -> float:
        cache = (self.get("service") or {}).get("cache") or {}
        return float(cache.get("hit_rate", 0.0))

    @property
    def slow_queries(self) -> list:
        """Recorded slow-query traces (span timelines), oldest first."""
        return (self.get("slow_queries") or {}).get("entries") or []

    def histogram(self, name: str) -> Optional[dict]:
        """One histogram's summary+buckets (``None`` if not recorded)."""
        return self.histograms.get(name)

    def prometheus(self, prefix: str = "repro") -> str:
        """The registry dump in Prometheus text exposition format."""
        from repro.obs import render_prometheus

        return render_prometheus(self.metrics, prefix=prefix)


def _raise_if_error(frame: Frame) -> Frame:
    if frame.type is FrameType.ERROR:
        code, message = frame.payload
        try:
            code = ErrorCode(code)
        except ValueError:
            pass
        raise ServerError(code, message)
    return frame


def _decode_reply(request_type: FrameType, frame: Frame):
    expected = _REPLY_OF[request_type]
    if frame.type is not expected:
        raise ProtocolError(
            f"expected {expected.name}, got {frame.type.name}"
        )
    if request_type is FrameType.CONNECTIVITY:
        return [
            ans if isinstance(ans, bool) else wire_to_sk_result(ans)
            for ans in frame.payload
        ]
    if request_type is FrameType.DISTANCE:
        return list(frame.payload)
    if request_type is FrameType.ROUTE:
        return [wire_to_route_result(ans) for ans in frame.payload]
    if request_type is FrameType.STATS:
        return StatsReport(json.loads(frame.payload))
    return frame.payload  # PONG: generation version; RELOAD_REPLY tuple


def _conn_payload(pairs, faults, want_path: bool):
    return [encode_pairs(pairs), decode_faults(list(faults)), bool(want_path)]


def _pair_payload(pairs, faults):
    return [encode_pairs(pairs), decode_faults(list(faults))]


class QueryClient:
    """Blocking client: one request in flight at a time.

    ``timeout`` is the per-response socket timeout (None blocks
    forever — tests always set one so a wedged server fails fast).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        #: trace id echoed on the last reply (None for untraced requests)
        self.last_trace_id: Optional[int] = None

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _roundtrip(
        self, ftype: FrameType, payload, trace_id: Optional[int] = None
    ):
        request_id = next(self._ids)
        self._sock.sendall(
            encode_frame(ftype, request_id, payload, trace_id=trace_id)
        )
        while True:
            for frame in self._decoder.frames():
                if frame.request_id == request_id:
                    self.last_trace_id = frame.trace_id
                    return _decode_reply(ftype, _raise_if_error(frame))
                # stale reply of an abandoned request: drop it
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError("server closed the connection")
            self._decoder.feed(data)

    # -- queries -------------------------------------------------------
    def connectivity(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        want_path: bool = True,
        trace_id: Optional[int] = None,
    ) -> list:
        """Batched connectivity answers (``SkDecodeResult`` or bools).

        ``trace_id`` (mint one with :func:`repro.obs.mint_trace_id`)
        rides the wire's optional trace field: the server records a
        span timeline under that id (see its slow-query log) and echoes
        it on the reply (:attr:`last_trace_id`).  Answers are identical
        with or without it.
        """
        return self._roundtrip(
            FrameType.CONNECTIVITY,
            _conn_payload(pairs, faults, want_path),
            trace_id=trace_id,
        )

    def connected(self, s: int, t: int, faults: Iterable[int] = ()) -> bool:
        ans = self.connectivity([(s, t)], faults, want_path=False)[0]
        return ans if isinstance(ans, bool) else ans.connected

    def distance(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        trace_id: Optional[int] = None,
    ) -> list[float]:
        return self._roundtrip(
            FrameType.DISTANCE, _pair_payload(pairs, faults), trace_id=trace_id
        )

    def route(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        trace_id: Optional[int] = None,
    ) -> list:
        """Batched :class:`~repro.routing.network.RouteResult` answers."""
        return self._roundtrip(
            FrameType.ROUTE, _pair_payload(pairs, faults), trace_id=trace_id
        )

    # -- admin ---------------------------------------------------------
    def ping(self) -> int:
        """Round trip; returns the server's current generation version."""
        return self._roundtrip(FrameType.PING, None)

    def stats(self) -> StatsReport:
        """The server's stats plane as a typed :class:`StatsReport`."""
        return self._roundtrip(FrameType.STATS, None)

    def reload(self, path: Optional[str] = None) -> tuple:
        """Ask the server for a zero-downtime snapshot reload."""
        return self._roundtrip(FrameType.RELOAD, path)


class AsyncQueryClient:
    """Pipelined asyncio client: concurrent requests over one connection."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock: Optional[asyncio.Lock] = None
        #: trace id echoed on the last reply (None for untraced requests)
        self.last_trace_id: Optional[int] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncQueryClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port
        )
        client._write_lock = asyncio.Lock()
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def aclose(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writer = None
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    self._fail_pending(
                        ConnectionError("server closed the connection")
                    )
                    return
                decoder.feed(data)
                for frame in decoder.frames():
                    future = self._pending.pop(frame.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(exc)

    async def _roundtrip(
        self, ftype: FrameType, payload, trace_id: Optional[int] = None
    ):
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(
                    encode_frame(ftype, request_id, payload, trace_id=trace_id)
                )
                await self._writer.drain()
            frame = await future
        finally:
            self._pending.pop(request_id, None)
        self.last_trace_id = frame.trace_id
        return _decode_reply(ftype, _raise_if_error(frame))

    # -- queries -------------------------------------------------------
    async def connectivity(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        want_path: bool = True,
        trace_id: Optional[int] = None,
    ) -> list:
        return await self._roundtrip(
            FrameType.CONNECTIVITY,
            _conn_payload(pairs, faults, want_path),
            trace_id=trace_id,
        )

    async def distance(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        trace_id: Optional[int] = None,
    ) -> list[float]:
        return await self._roundtrip(
            FrameType.DISTANCE, _pair_payload(pairs, faults), trace_id=trace_id
        )

    async def route(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Iterable[int] = (),
        trace_id: Optional[int] = None,
    ) -> list:
        return await self._roundtrip(
            FrameType.ROUTE, _pair_payload(pairs, faults), trace_id=trace_id
        )

    # -- admin ---------------------------------------------------------
    async def ping(self) -> int:
        return await self._roundtrip(FrameType.PING, None)

    async def stats(self) -> StatsReport:
        """The server's stats plane as a typed :class:`StatsReport`."""
        return await self._roundtrip(FrameType.STATS, None)

    async def reload(self, path: Optional[str] = None) -> tuple:
        return await self._roundtrip(FrameType.RELOAD, path)


__all__ = ["AsyncQueryClient", "QueryClient", "ServerError", "StatsReport"]
