"""The wire protocol of the label server: versioned, length-prefixed
binary frames.

A decoder that holds nothing but labels only deserves the word
*scheme* when it answers over a wire, so the protocol is deliberately
small and fully self-describing:

``frame = header(16 bytes) | [trace_id(8 bytes)] | payload``::

    !2s B  B    Q          I
    magic ver  type  request_id  payload_len

* ``magic`` is ``b"DP"`` (Dory–Parter); ``ver`` is
  :data:`PROTOCOL_VERSION` — a reader rejects anything else before
  touching the payload;
* ``type`` is a :class:`FrameType` in the low 7 bits; the high bit is
  :data:`FLAG_TRACED` — when set, an 8-byte big-endian trace id
  follows the header (before the payload) for request correlation
  across the serving tier.  Frames without the flag are byte-identical
  to the original version-1 encoding, so old clients and old servers
  are unaffected;
* ``request_id`` is chosen by the client and echoed verbatim on the
  response (responses may complete out of order);
* ``payload_len`` is bounded by :data:`MAX_PAYLOAD`; oversized frames
  are a protocol error *at the header*, so a hostile length field can
  never make a reader buffer gigabytes.

The payload is one *value tree* in a canonical tagged binary encoding
(:func:`encode_value` / :func:`decode_value`): ``None``, bools,
integers (zigzag varints), floats (IEEE-754 big-endian — decoded
bit-identical), strings, bytes, and lists/tuples of values.  Query
answers cross the wire as value trees and are rebuilt into the
schemes' native dataclasses (:func:`wire_to_sk_result`,
:func:`wire_to_route_result`) so a client-side answer compares equal —
``==``, succinct paths and telemetry included — to the in-process
``query_many`` / ``route_many`` answer.  That equality is the server's
acceptance bar (``tests/test_server_e2e.py``).

:class:`FrameDecoder` is incremental and paranoid: feed it any byte
stream; it yields complete frames and raises :class:`ProtocolError` on
garbage — truncated streams simply never yield (no hang, no crash:
``tests/test_server_protocol.py`` fuzzes exactly this contract).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Optional, Sequence

from repro.core.path_description import PathSegment, SuccinctPath
from repro.core.sketch_scheme import SkDecodeResult
from repro.routing.network import RouteResult, Telemetry

#: Protocol magic + version: the first three bytes of every frame.
MAGIC = b"DP"
PROTOCOL_VERSION = 1

#: Hard bound on a frame payload; a header announcing more is rejected
#: before any payload is read.
MAX_PAYLOAD = 8 * 1024 * 1024

_HEADER = struct.Struct("!2sBBQI")
HEADER_SIZE = _HEADER.size

#: High bit of the ``type`` header byte: an 8-byte trace id follows
#: the header.  Flag-clear frames are byte-identical to pre-tracing
#: version-1 frames.
FLAG_TRACED = 0x80
_TYPE_MASK = 0x7F
_TRACE_ID = struct.Struct("!Q")
TRACE_ID_SIZE = _TRACE_ID.size


class ProtocolError(ValueError):
    """A malformed frame or value tree (the connection must be dropped)."""


class FrameType(IntEnum):
    """Frame type tags (the ``type`` header byte)."""

    PING = 1
    PONG = 2
    CONNECTIVITY = 3  # [[s0, t0, s1, t1, ...], [faults...], want_path]
    CONNECTIVITY_REPLY = 4  # [sk_result, ...]
    DISTANCE = 5  # [[s0, t0, ...], [faults...]]
    DISTANCE_REPLY = 6  # [float, ...]
    ROUTE = 7  # [[s0, t0, ...], [faults...]]
    ROUTE_REPLY = 8  # [route_result, ...]
    STATS = 9  # None
    STATS_REPLY = 10  # JSON string
    RELOAD = 11  # None (re-open current path) or new snapshot path
    RELOAD_REPLY = 12  # [old_version, new_version, kind]
    ERROR = 13  # [code, message]


class ErrorCode(IntEnum):
    """``ERROR`` frame codes."""

    BAD_FRAME = 1  # malformed frame/payload: the connection closes after
    UNSUPPORTED = 2  # valid frame, but this server cannot answer it
    BAD_QUERY = 3  # vertex/edge ids out of range, odd pair list, ...
    DEADLINE = 4  # the request missed the server's deadline
    SHARD_LOST = 5  # a shard worker died with this request in flight
    INTERNAL = 6  # unexpected server-side failure


@dataclass(frozen=True)
class Frame:
    """One decoded frame.

    ``trace_id`` is ``None`` unless the frame carried the
    :data:`FLAG_TRACED` header field; servers echo a request's trace id
    on the reply, so a client can correlate answers with the server's
    slow-query log.
    """

    type: FrameType
    request_id: int
    payload: object
    trace_id: Optional[int] = None


# ----------------------------------------------------------------------
# Canonical value codec
# ----------------------------------------------------------------------
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"d"
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"t"

#: Value trees deeper than this are rejected (stack-blowing payloads).
_MAX_DEPTH = 32


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_value(out: bytearray, value, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ProtocolError("value tree too deep to encode")
    if value is None:
        out += _T_NONE
    elif value is True:
        out += _T_TRUE
    elif value is False:
        out += _T_FALSE
    elif isinstance(value, int):
        out += _T_INT
        _write_varint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)
    elif isinstance(value, float):
        out += _T_FLOAT
        out += struct.pack("!d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _T_STR
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _T_BYTES
        _write_varint(out, len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out += _T_LIST if isinstance(value, list) else _T_TUPLE
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item, depth + 1)
    else:
        raise ProtocolError(f"cannot encode {type(value).__name__} values")


def encode_value(value) -> bytes:
    """Canonical binary encoding of a payload value tree."""
    out = bytearray()
    _write_value(out, value, 0)
    return bytes(out)


class _Reader:
    """Bounds-checked cursor over one payload buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise ProtocolError("truncated value payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def varint(self) -> int:
        result = shift = 0
        while True:
            if self.pos >= len(self.data):
                raise ProtocolError("truncated varint")
            if shift > 1024:
                # tree-routing labels are big ints, so varints are not
                # capped at 64 bits — but a malicious stream of
                # continuation bytes must still terminate.
                raise ProtocolError("varint too long")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7


def _read_value(r: _Reader, depth: int):
    if depth > _MAX_DEPTH:
        raise ProtocolError("value tree too deep")
    tag = r.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        z = r.varint()
        return (z >> 1) ^ -(z & 1)
    if tag == _T_FLOAT:
        return struct.unpack("!d", r.take(8))[0]
    if tag == _T_STR:
        raw = r.take(r.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("invalid utf-8 in string value") from exc
    if tag == _T_BYTES:
        return r.take(r.varint())
    if tag in (_T_LIST, _T_TUPLE):
        count = r.varint()
        if count > len(r.data) - r.pos:
            # every element costs >= 1 byte: reject absurd counts early
            raise ProtocolError("list length exceeds payload")
        items = [_read_value(r, depth + 1) for _ in range(count)]
        return items if tag == _T_LIST else tuple(items)
    raise ProtocolError(f"unknown value tag {tag!r}")


def decode_value(data: bytes):
    """Decode one value tree; rejects trailing bytes."""
    r = _Reader(data)
    value = _read_value(r, 0)
    if r.pos != len(data):
        raise ProtocolError("trailing bytes after value payload")
    return value


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(
    ftype: FrameType,
    request_id: int,
    payload=None,
    trace_id: Optional[int] = None,
) -> bytes:
    """One complete wire frame.

    With ``trace_id`` set, :data:`FLAG_TRACED` is raised on the type
    byte and the 8-byte id is written between header and payload;
    without it the bytes are identical to the pre-tracing encoding.
    """
    raw = encode_value(payload)
    if len(raw) > MAX_PAYLOAD:
        raise ProtocolError("payload exceeds MAX_PAYLOAD")
    type_byte = int(ftype)
    extra = b""
    if trace_id is not None:
        if not 0 < trace_id < 1 << 64:
            raise ProtocolError("trace id must fit an unsigned 64-bit field")
        type_byte |= FLAG_TRACED
        extra = _TRACE_ID.pack(trace_id)
    return _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, type_byte, request_id, len(raw)
    ) + extra + raw


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    ``feed`` buffers bytes; ``frames()`` yields every complete
    :class:`Frame` and raises :class:`ProtocolError` the moment the
    stream is provably garbage (bad magic, wrong version, unknown
    type, oversized payload, malformed value tree).  A truncated
    stream yields nothing and raises nothing — the caller decides when
    EOF makes that an error.
    """

    def __init__(self):
        self._buf = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        if self._poisoned:
            raise ProtocolError("decoder is poisoned by an earlier error")
        self._buf += data

    def frames(self) -> Iterator[Frame]:
        while len(self._buf) >= HEADER_SIZE:
            magic, version, ftype, request_id, length = _HEADER.unpack_from(
                self._buf
            )
            if magic != MAGIC:
                self._poisoned = True
                raise ProtocolError(f"bad magic {magic!r}")
            if version != PROTOCOL_VERSION:
                self._poisoned = True
                raise ProtocolError(f"unsupported protocol version {version}")
            if length > MAX_PAYLOAD:
                self._poisoned = True
                raise ProtocolError(f"payload of {length} bytes exceeds bound")
            traced = bool(ftype & FLAG_TRACED)
            try:
                ftype = FrameType(ftype & _TYPE_MASK)
            except ValueError:
                self._poisoned = True
                raise ProtocolError(
                    f"unknown frame type {ftype & _TYPE_MASK}"
                ) from None
            extra = TRACE_ID_SIZE if traced else 0
            if len(self._buf) < HEADER_SIZE + extra + length:
                return  # wait for more bytes
            trace_id = None
            if traced:
                (trace_id,) = _TRACE_ID.unpack_from(self._buf, HEADER_SIZE)
                if trace_id == 0:
                    self._poisoned = True
                    raise ProtocolError("traced frame with zero trace id")
            start = HEADER_SIZE + extra
            raw = bytes(self._buf[start : start + length])
            del self._buf[: start + length]
            try:
                payload = decode_value(raw)
            except ProtocolError:
                self._poisoned = True
                raise
            yield Frame(ftype, request_id, payload, trace_id)


# ----------------------------------------------------------------------
# Query payload helpers (requests)
# ----------------------------------------------------------------------
def encode_pairs(pairs: Sequence[tuple[int, int]]) -> list[int]:
    """Flatten (s, t) pairs for the wire."""
    flat: list[int] = []
    for s, t in pairs:
        flat.append(int(s))
        flat.append(int(t))
    return flat


def decode_pairs(flat) -> list[tuple[int, int]]:
    """Rebuild (s, t) pairs; rejects odd-length or non-int lists."""
    if not isinstance(flat, (list, tuple)) or len(flat) % 2:
        raise ProtocolError("pair list must hold an even number of ints")
    for x in flat:
        if not isinstance(x, int) or isinstance(x, bool):
            raise ProtocolError("pair list must hold ints")
    return [(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]


def decode_faults(faults) -> list[int]:
    if not isinstance(faults, (list, tuple)):
        raise ProtocolError("fault list must be a list of ints")
    for x in faults:
        if not isinstance(x, int) or isinstance(x, bool):
            raise ProtocolError("fault list must hold ints")
    return list(faults)


# ----------------------------------------------------------------------
# Answer <-> wire conversion (bit-identical round trips)
# ----------------------------------------------------------------------
def _opt(v: Optional[int]):
    return None if v is None else int(v)


def sk_result_to_wire(result: SkDecodeResult):
    """``SkDecodeResult`` (succinct path included) as a value tree."""
    if result.path is None:
        path = None
    else:
        path = (
            result.path.s,
            result.path.t,
            [
                (
                    seg.kind,
                    seg.x,
                    seg.y,
                    _opt(seg.port_x),
                    _opt(seg.port_y),
                    _opt(seg.tlabel_x),
                    _opt(seg.tlabel_y),
                    _opt(seg.eid),
                )
                for seg in result.path.segments
            ],
        )
    return (bool(result.connected), int(result.phases_used), path)


def wire_to_sk_result(value) -> SkDecodeResult:
    try:
        connected, phases, path = value
        if path is not None:
            s, t, segs = path
            path = SuccinctPath(
                s=s,
                t=t,
                segments=tuple(
                    PathSegment(
                        kind=kind,
                        x=x,
                        y=y,
                        port_x=px,
                        port_y=py,
                        tlabel_x=tx,
                        tlabel_y=ty,
                        eid=eid,
                    )
                    for kind, x, y, px, py, tx, ty, eid in segs
                ),
            )
        return SkDecodeResult(connected=connected, path=path, phases_used=phases)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed connectivity answer: {exc}") from exc


def route_result_to_wire(result: RouteResult):
    """``RouteResult`` (trace + full telemetry) as a value tree."""
    tel = result.telemetry
    return (
        bool(result.delivered),
        int(result.s),
        int(result.t),
        float(result.length),
        _opt(result.scale),
        [int(v) for v in result.trace],
        (
            tel.hops,
            float(tel.weighted),
            tel.gamma_queries,
            tel.reversals,
            tel.reversal_hops,
            tel.decode_calls,
            tel.phases,
            tel.iterations,
            tel.max_header_bits,
        ),
    )


def wire_to_route_result(value) -> RouteResult:
    try:
        delivered, s, t, length, scale, trace, tel = value
        (hops, weighted, gamma, reversals, reversal_hops, decodes,
         phases, iterations, header_bits) = tel
        return RouteResult(
            delivered=delivered,
            s=s,
            t=t,
            telemetry=Telemetry(
                hops=hops,
                weighted=weighted,
                gamma_queries=gamma,
                reversals=reversals,
                reversal_hops=reversal_hops,
                decode_calls=decodes,
                phases=phases,
                iterations=iterations,
                max_header_bits=header_bits,
            ),
            length=length,
            scale=scale,
            trace=list(trace),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed route answer: {exc}") from exc


__all__ = [
    "ErrorCode",
    "FLAG_TRACED",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "HEADER_SIZE",
    "TRACE_ID_SIZE",
    "MAGIC",
    "MAX_PAYLOAD",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_faults",
    "decode_pairs",
    "decode_value",
    "encode_frame",
    "encode_pairs",
    "encode_value",
    "route_result_to_wire",
    "sk_result_to_wire",
    "wire_to_route_result",
    "wire_to_sk_result",
]
