"""The asyncio front door: snapshot-backed shard RPC serving.

:class:`LabelServer` turns the in-process serving stack into a network
service speaking the :mod:`repro.server.protocol` frames:

* **fan-out** — connectivity/distance queries are grouped by canonical
  fault key and dispatched to the shard workers of a
  :class:`~repro.serving.shards.ShardedQueryService` (spawn-mode
  workers that mmap one :mod:`repro.store` snapshot when the server is
  snapshot-backed, fork/local otherwise) through the non-blocking
  :meth:`~repro.serving.shards.ShardedQueryService.start_chunk` path —
  worker completions are bridged back onto the event loop, so the loop
  never blocks on a worker;
* **coalescing** — single-pair requests from any number of connections
  are funneled through per-generation
  :class:`~repro.serving.coalescer.AsyncQueryCoalescer` instances (one
  per keyword shape), so concurrent clients querying the same fault
  set share one partition decode;
* **backpressure + deadlines** — each connection stops consuming new
  frames once ``max_inflight`` requests are unanswered (TCP then
  pushes back on the client), and every request is bounded by
  ``deadline_s``: a lost shard worker surfaces as one ``ERROR`` frame
  (:data:`~repro.server.protocol.ErrorCode.SHARD_LOST`) for exactly
  the in-flight requests, never a hang — the first timeout replaces
  the shard's whole pool with a fresh one
  (:meth:`~repro.serving.shards.ShardedQueryService.restart_shard`;
  ``tests/test_server_chaos.py``);
* **zero-downtime reload** — :meth:`LabelServer.reload` (admin
  ``RELOAD`` frame, or SIGHUP when enabled) builds a fresh
  *generation* from the snapshot path in a background thread, swaps it
  in atomically (every request started after the swap is answered by
  the new labels), drains the old generation's in-flight requests, and
  only then closes its shard pools and releases its mmap
  (``tests/test_server_e2e.py`` asserts zero failed requests and the
  old mapping gone).

Malformed bytes never crash the server: a protocol error is answered
with one ``ERROR`` frame (when a header was parseable) and a clean
connection close (``tests/test_server_protocol.py`` fuzzes this).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import json
import multiprocessing
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from repro.core.sketch_scheme import SkDecodeResult
from repro.obs import MetricsRegistry, SlowQueryLog, Trace
from repro.serving.coalescer import AsyncQueryCoalescer
from repro.serving.shards import ShardedQueryService
from repro.server.protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_faults,
    decode_pairs,
    encode_frame,
    route_result_to_wire,
    sk_result_to_wire,
)

#: snapshot ``kind`` -> the query frame a generation of that kind answers.
_KIND_QUERY = {
    "sketch": FrameType.CONNECTIVITY,
    "forest": FrameType.CONNECTIVITY,
    "cycle_space": FrameType.CONNECTIVITY,
    "connectivity-facade": FrameType.CONNECTIVITY,
    "distance": FrameType.DISTANCE,
    "distance-facade": FrameType.DISTANCE,
    "router": FrameType.ROUTE,
    "routing-facade": FrameType.ROUTE,
}


class BadQueryError(ValueError):
    """A well-formed frame asking something invalid (ids out of range)."""


class ShardLostError(RuntimeError):
    """A shard worker failed to answer within the deadline."""


def _kind_of(obj) -> str:
    """The snapshot ``kind`` string of a live backend object."""
    from repro.store.artifacts import _state_of

    return _state_of(obj)[0]


def _graph_dims(meta: dict) -> tuple[Optional[int], Optional[int]]:
    """Best-effort (n, m) out of a (possibly nested) snapshot meta."""
    if isinstance(meta.get("n"), int) and isinstance(meta.get("m"), int):
        return meta["n"], meta["m"]
    for value in meta.values():
        if isinstance(value, dict):
            n, m = _graph_dims(value)
            if n is not None:
                return n, m
    return None, None


@dataclass
class ServerStats:
    """Parent-side counters of one :class:`LabelServer`."""

    connections_total: int = 0
    connections_open: int = 0
    frames: int = 0
    queries: int = 0
    errors: dict = field(default_factory=dict)  # ErrorCode name -> count
    reloads: int = 0
    protocol_errors: int = 0

    def count_error(self, code: ErrorCode) -> None:
        name = code.name
        self.errors[name] = self.errors.get(name, 0) + 1

    def snapshot(self) -> dict:
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "frames": self.frames,
            "queries": self.queries,
            "errors": dict(self.errors),
            "protocol_errors": self.protocol_errors,
            "reloads": self.reloads,
        }


class _Generation:
    """One immutable serving backend: labels + shard pools + coalescers.

    Reload is blue/green over generations: requests acquire the
    current generation for their whole lifetime; a retired generation
    is closed only after its refcount drains to zero, so in-flight
    answers always come from the labels they started on and the old
    snapshot's mmap is released only when nobody can touch it.
    """

    def __init__(
        self,
        version: int,
        kind: str,
        path: Optional[str],
        service: Optional[ShardedQueryService],
        router,
        n: Optional[int],
        m: Optional[int],
    ):
        self.version = version
        self.kind = kind
        self.path = path
        self.service = service
        self.router = router
        self.n = n
        self.m = m
        self.query_type = _KIND_QUERY[kind]
        self.refs = 0
        self.retired = False
        self._drained: Optional[asyncio.Event] = None
        self.coalescers: dict[tuple, AsyncQueryCoalescer] = {}

    def acquire(self) -> "_Generation":
        self.refs += 1
        return self

    def release(self) -> None:
        self.refs -= 1
        if self.refs == 0 and self.retired and self._drained is not None:
            self._drained.set()

    async def drain(self) -> None:
        """Wait until no request holds this (retired) generation."""
        self.retired = True
        if self.refs == 0:
            return
        self._drained = asyncio.Event()
        if self.refs == 0:  # released between the check and the event
            return
        await self._drained.wait()

    async def aclose(self) -> None:
        """Flush coalescers, close shard pools, drop every label ref."""
        for coalescer in self.coalescers.values():
            await coalescer.aclose()
        self.coalescers.clear()
        if self.service is not None:
            self.service.close()
            self.service = None
        self.router = None
        # The snapshot mmap lives exactly as long as the numpy views
        # into it; collect now so a reload measurably releases the old
        # file (asserted by the hot-reload test via /proc/self/maps).
        gc.collect()


class LabelServer:
    """Asyncio RPC server over one labeling/routing artifact.

    Exactly one of ``backend`` (a live scheme / facade / router) or
    ``snapshot`` (a :mod:`repro.store` file) must be given.  Snapshot
    mode is the production shape: ``num_shards`` spawn workers mmap
    the file (one page-cache copy) and hot reload is available;
    backend mode serves the object in-process (fork pools when
    ``num_shards > 0``) and is what the equivalence tests use.

    Lifecycle: ``await start()``, then :meth:`serve_forever` (or just
    keep the loop alive); ``await aclose()`` tears everything down.
    """

    def __init__(
        self,
        backend=None,
        *,
        snapshot: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int = 0,
        mp_context: Optional[str] = None,
        cache_capacity: int = 128,
        max_chunk: int = 512,
        max_delay: float = 0.002,
        deadline_s: float = 30.0,
        max_inflight: int = 64,
        chunk_timeout: Optional[float] = None,
        hot_key_share: Optional[float] = 0.5,
        install_sighup: bool = False,
        metrics: bool = True,
        slow_threshold_s: float = 0.050,
        slow_log_capacity: int = 64,
    ):
        if (backend is None) == (snapshot is None):
            raise ValueError("need exactly one of backend= or snapshot=")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        self._backend = backend
        self._snapshot_path = None if snapshot is None else str(snapshot)
        self.host = host
        self.port = port
        self.num_shards = num_shards
        self.mp_context = mp_context or ("spawn" if snapshot else "fork")
        self.cache_capacity = cache_capacity
        self.max_chunk = max_chunk
        self.max_delay = max_delay
        self.deadline_s = deadline_s
        self.max_inflight = max_inflight
        self.chunk_timeout = (
            chunk_timeout if chunk_timeout is not None else deadline_s
        )
        self.hot_key_share = hot_key_share
        self.install_sighup = install_sighup
        self.stats = ServerStats()
        #: registry for the front door's own metrics; shard-worker and
        #: service registries are merged in at STATS time.  ``metrics=
        #: False`` turns every instrument into a shared no-op (the
        #: metrics-off arm of ``benchmarks/bench_obs.py``).
        self.metrics_enabled = metrics
        self.obs = MetricsRegistry(enabled=metrics)
        #: every request is traced server-side (spans are a handful of
        #: tuple appends); traces crossing ``slow_threshold_s`` land
        #: here and are dumped through the STATS admin frame.
        self.slow_log = SlowQueryLog(
            capacity=slow_log_capacity, threshold_s=slow_threshold_s
        )
        self._gen: Optional[_Generation] = None
        self._versions = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._reload_lock: Optional[asyncio.Lock] = None
        # One thread serializes in-parent blocking work (local-mode
        # query_many, route_many — the route engine's partition caches
        # are not thread-safe); a second thread builds reload
        # generations so queries keep flowing through a reload.
        self._blocking = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._reload_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-reload"
        )
        self._conn_tasks: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def _build_generation(self, path: Optional[str]) -> _Generation:
        """Construct a serving generation (runs in a worker thread)."""
        self._versions += 1
        version = self._versions
        if path is None:
            obj = self._backend
            kind = _kind_of(obj)
            n, m = obj.graph.n, obj.graph.m
            if _KIND_QUERY[kind] is FrameType.ROUTE:
                return _Generation(version, kind, None, None, obj, n, m)
            service = ShardedQueryService(
                obj,
                num_shards=self.num_shards,
                cache_capacity=self.cache_capacity,
                max_chunk=self.max_chunk,
                mp_context=self.mp_context,
                hot_key_share=self.hot_key_share,
                chunk_timeout=self.chunk_timeout,
                metrics=self.metrics_enabled,
            )
            return _Generation(version, kind, None, service, None, n, m)
        from repro.store import load_snapshot, snapshot_info

        info = snapshot_info(path)
        kind = info["kind"]
        if kind not in _KIND_QUERY:
            raise ValueError(f"snapshot {path} holds unservable kind {kind!r}")
        n, m = _graph_dims(info["meta"])
        if _KIND_QUERY[kind] is FrameType.ROUTE:
            router = load_snapshot(path)
            return _Generation(version, kind, path, None, router, n, m)
        service = ShardedQueryService.from_snapshot(
            path,
            num_shards=self.num_shards,
            mp_context=self.mp_context,
            cache_capacity=self.cache_capacity,
            max_chunk=self.max_chunk,
            hot_key_share=self.hot_key_share,
            chunk_timeout=self.chunk_timeout,
            metrics=self.metrics_enabled,
        )
        return _Generation(version, kind, path, service, None, n, m)

    @property
    def generation(self) -> _Generation:
        if self._gen is None:
            raise RuntimeError("server not started")
        return self._gen

    @property
    def version(self) -> int:
        return self.generation.version

    @property
    def kind(self) -> str:
        return self.generation.kind

    def worker_pids(self) -> list[int]:
        """Live shard worker pids (chaos-test hook; empty in local mode)."""
        gen = self.generation
        return [] if gen.service is None else gen.service.worker_pids()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "LabelServer":
        """Bind the listening socket and build the first generation."""
        loop = asyncio.get_running_loop()
        self._reload_lock = asyncio.Lock()
        self._gen = await loop.run_in_executor(
            self._reload_executor,
            partial(self._build_generation, self._snapshot_path),
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.install_sighup:
            loop.add_signal_handler(
                signal.SIGHUP,
                lambda: asyncio.ensure_future(self._reload_quietly()),
            )
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.install_sighup:
            with contextlib.suppress(Exception):
                asyncio.get_running_loop().remove_signal_handler(signal.SIGHUP)
        if self._gen is not None:
            await self._gen.aclose()
            self._gen = None
        self._blocking.shutdown(wait=True)
        self._reload_executor.shutdown(wait=True)

    async def __aenter__(self) -> "LabelServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Reload (blue/green generation swap)
    # ------------------------------------------------------------------
    async def reload(self, path: Optional[str] = None) -> tuple[int, int, str]:
        """Swap in a fresh generation with zero downtime.

        Loads ``path`` (default: the current snapshot path, re-opened —
        the blue/green pattern is *replace the file, then reload*) off
        the event loop, atomically redirects new requests to it, then
        drains and closes the old generation.  Returns
        ``(old_version, new_version, kind)``.
        """
        if path is None:
            path = self.generation.path
        if path is None:
            raise ValueError(
                "object-backed server has no snapshot path to reload"
            )
        loop = asyncio.get_running_loop()
        async with self._reload_lock:
            new = await loop.run_in_executor(
                self._reload_executor, partial(self._build_generation, path)
            )
            old = self._gen
            self._gen = new  # the swap: atomic on the loop thread
            self._snapshot_path = path
            self.stats.reloads += 1
            self.obs.counter("server.reloads").inc()
            await old.drain()
            await old.aclose()
            return old.version, new.version, new.kind

    async def _reload_quietly(self) -> None:
        try:
            old_v, new_v, kind = await self.reload()
        except Exception as exc:  # pragma: no cover - SIGHUP error path
            print(f"repro.server: reload failed: {exc}", flush=True)
        else:  # pragma: no cover - exercised via explicit reload() in tests
            print(
                f"repro.server: reloaded {kind} v{old_v} -> v{new_v}",
                flush=True,
            )

    # ------------------------------------------------------------------
    # Query dispatch
    # ------------------------------------------------------------------
    async def _service_chunk(
        self, gen: _Generation, pairs, faults, kw, trace: Optional[Trace] = None
    ) -> list:
        """One coalesced chunk through the generation's shard service.

        With a ``trace``, the chunk's shard window becomes a ``shard``
        span and the worker-reported decode time a ``partition`` span
        (placed at the window's tail: queue wait first, then the
        build).  Coalesced singles get these spans from the coalescer
        instead — their chunk is shared, so per-request attribution
        happens where the request is still individual.
        """
        service = gen.service
        if service._pools is None:
            # Local mode: numpy work on the (single) blocking thread.
            t0 = time.perf_counter()
            answers = await asyncio.get_running_loop().run_in_executor(
                self._blocking,
                partial(service.query_many, pairs, faults, **kw),
            )
            if trace is not None:
                trace.add_span("shard", t0, time.perf_counter() - t0)
            return answers
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def _ok(answers, meta, _loop=loop, _future=future):
            _loop.call_soon_threadsafe(
                self._settle_future, _future, (answers, meta), None
            )

        def _err(exc, _loop=loop, _future=future):
            _loop.call_soon_threadsafe(self._settle_future, _future, None, exc)

        t0 = time.perf_counter()
        shard = service.start_chunk(
            pairs, faults, kw, callback=_ok, error_callback=_err
        )
        epoch = service.shard_epoch(shard)
        try:
            answers, meta = await asyncio.wait_for(
                future, timeout=self.chunk_timeout
            )
        except asyncio.TimeoutError:
            # Presume the worker dead and heal deterministically: the
            # first timeout of this pool generation replaces the whole
            # pool (a worker killed while idle wedges its task queue
            # for good — Pool's own respawn cannot recover that).
            service.restart_shard(shard, epoch=epoch)
            raise ShardLostError(
                f"shard {shard} did not answer within {self.chunk_timeout}s"
            ) from None
        if trace is not None:
            dur = time.perf_counter() - t0
            trace.add_span("shard", t0, dur)
            worker_s = meta.get("worker_s")
            if worker_s is not None:
                trace.add_span(
                    "partition", t0 + max(0.0, dur - worker_s), worker_s
                )
            trace.meta.setdefault("shards", []).append(shard)
        return answers

    @staticmethod
    def _settle_future(future: asyncio.Future, answers, exc) -> None:
        if future.done():
            return
        if exc is None:
            future.set_result(answers)
        else:
            future.set_exception(exc)

    def _coalescer_for(self, gen: _Generation, kw: dict) -> AsyncQueryCoalescer:
        key = tuple(sorted(kw.items()))
        coalescer = gen.coalescers.get(key)
        if coalescer is None:

            async def backend(pairs, faults, _gen=gen, _kw=dict(kw)):
                return await self._service_chunk(_gen, pairs, faults, _kw)

            coalescer = AsyncQueryCoalescer(
                backend,
                max_chunk=self.max_chunk,
                max_delay=self.max_delay,
                chunk_hist=self.obs.histogram("server.coalesce_chunk_size"),
            )
            gen.coalescers[key] = coalescer
        return coalescer

    async def _query_via_service(
        self, gen: _Generation, pairs, faults, kw: dict,
        trace: Optional[Trace] = None,
    ) -> list:
        if len(pairs) == 1:
            # Singles coalesce across connections: concurrent clients
            # asking about one fault set share a partition decode.
            s, t = pairs[0]
            return [
                await self._coalescer_for(gen, kw).query(
                    s, t, faults, trace=trace
                )
            ]
        chunks = [
            pairs[lo : lo + self.max_chunk]
            for lo in range(0, len(pairs), self.max_chunk)
        ]
        answers = await asyncio.gather(
            *(
                self._service_chunk(gen, chunk, faults, kw, trace=trace)
                for chunk in chunks
            )
        )
        return [ans for chunk_answers in answers for ans in chunk_answers]

    def _validate(self, gen: _Generation, pairs, faults) -> None:
        if gen.n is not None:
            for s, t in pairs:
                if not (0 <= s < gen.n and 0 <= t < gen.n):
                    raise BadQueryError(
                        f"vertex pair ({s}, {t}) out of range for n={gen.n}"
                    )
        if gen.m is not None:
            for ei in faults:
                if not 0 <= ei < gen.m:
                    raise BadQueryError(
                        f"fault edge {ei} out of range for m={gen.m}"
                    )

    # ------------------------------------------------------------------
    # Frame serving
    # ------------------------------------------------------------------
    async def _answer(
        self, frame: Frame, trace: Optional[Trace] = None
    ) -> tuple[FrameType, object]:
        gen = self.generation
        if frame.type is FrameType.PING:
            return FrameType.PONG, gen.version
        if frame.type is FrameType.STATS:
            return FrameType.STATS_REPLY, await self._stats_payload(gen)
        if frame.type is FrameType.RELOAD:
            path = frame.payload
            if path is not None and not isinstance(path, str):
                raise BadQueryError("RELOAD payload must be None or a path")
            old_v, new_v, kind = await self.reload(path)
            return FrameType.RELOAD_REPLY, (old_v, new_v, kind)
        if frame.type in (FrameType.CONNECTIVITY, FrameType.DISTANCE):
            payload = frame.payload
            if frame.type is FrameType.CONNECTIVITY:
                if not isinstance(payload, (list, tuple)) or len(payload) != 3:
                    raise ProtocolError("CONNECTIVITY payload must be "
                                        "[pairs, faults, want_path]")
                raw_pairs, raw_faults, want_path = payload
                if not isinstance(want_path, bool):
                    raise ProtocolError("want_path must be a bool")
            else:
                if not isinstance(payload, (list, tuple)) or len(payload) != 2:
                    raise ProtocolError("DISTANCE payload must be "
                                        "[pairs, faults]")
                raw_pairs, raw_faults = payload
                want_path = None
            pairs = decode_pairs(raw_pairs)
            faults = decode_faults(raw_faults)
            if not pairs:
                raise BadQueryError("empty pair list")
            if frame.type is not gen.query_type:
                raise _Unsupported(
                    f"this server holds a {gen.kind!r} artifact; it cannot "
                    f"answer {frame.type.name} queries"
                )
            self._validate(gen, pairs, faults)
            kw = {} if want_path is None else {"want_path": want_path}
            self.stats.queries += len(pairs)
            self.obs.counter("server.queries_total").inc(len(pairs))
            answers = await self._query_via_service(
                gen, pairs, faults, kw, trace=trace
            )
            if frame.type is FrameType.CONNECTIVITY:
                wire = [
                    sk_result_to_wire(a) if isinstance(a, SkDecodeResult)
                    else bool(a)
                    for a in answers
                ]
                return FrameType.CONNECTIVITY_REPLY, wire
            return FrameType.DISTANCE_REPLY, [float(a) for a in answers]
        if frame.type is FrameType.ROUTE:
            payload = frame.payload
            if not isinstance(payload, (list, tuple)) or len(payload) != 2:
                raise ProtocolError("ROUTE payload must be [pairs, faults]")
            pairs = decode_pairs(payload[0])
            faults = decode_faults(payload[1])
            if not pairs:
                raise BadQueryError("empty pair list")
            if gen.query_type is not FrameType.ROUTE:
                raise _Unsupported(
                    f"this server holds a {gen.kind!r} artifact; it cannot "
                    "answer ROUTE queries"
                )
            self._validate(gen, pairs, faults)
            self.stats.queries += len(pairs)
            self.obs.counter("server.queries_total").inc(len(pairs))
            t0 = time.perf_counter()
            results = await asyncio.get_running_loop().run_in_executor(
                self._blocking,
                partial(gen.router.route_many, pairs, faults),
            )
            if trace is not None:
                trace.add_span("shard", t0, time.perf_counter() - t0)
            return FrameType.ROUTE_REPLY, [
                route_result_to_wire(r) for r in results
            ]
        raise _Unsupported(f"server cannot answer {frame.type.name} frames")

    async def _stats_payload(self, gen: _Generation) -> str:
        payload = {
            "version": gen.version,
            "kind": gen.kind,
            "snapshot": gen.path,
            "num_shards": self.num_shards,
            "n": gen.n,
            "m": gen.m,
            "metrics_enabled": self.metrics_enabled,
            "server": self.stats.snapshot(),
        }
        service_wire = None
        if gen.service is not None:
            # ``stats_bundle()`` round-trips every pool worker once —
            # blocking, so off the loop (and bounded by the caller's
            # deadline) — returning both the legacy counters and the
            # uniform registry dump (queue depth, per-shard cache
            # hit rates, exact-merged worker histograms).
            service_stats, service_wire = (
                await asyncio.get_running_loop().run_in_executor(
                    self._blocking, gen.service.stats_bundle
                )
            )
            payload["service"] = service_stats.snapshot()
        coalesced = {}
        for key, coalescer in gen.coalescers.items():
            coalesced[repr(dict(key))] = {
                "chunks": coalescer.stats.chunks,
                "queries": coalescer.stats.queries,
                "max_chunk": coalescer.stats.max_chunk,
                "mean_chunk": round(coalescer.stats.mean_chunk, 2),
            }
        payload["coalescers"] = coalesced
        # One uniform registry dump: front-door metrics + the service's
        # (worker registries merged exactly — same bucket family).
        merged = MetricsRegistry(enabled=self.metrics_enabled)
        if self.metrics_enabled:
            merged.merge_wire(self.obs.to_wire())
            if service_wire is not None:
                merged.merge_wire(service_wire)
        payload["metrics"] = merged.snapshot()
        payload["slow_queries"] = self.slow_log.snapshot()
        return json.dumps(payload, sort_keys=True)

    async def _serve_frame(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        sem: asyncio.Semaphore,
        trace: Trace,
    ) -> None:
        gen = self.generation.acquire()
        held = True
        # Replies echo the trace id only when the request carried one;
        # untraced clients see byte-identical pre-tracing frames.
        echo = frame.trace_id
        try:
            try:
                # RELOAD manages its own (much longer) timeline; every
                # query/stat frame is deadline-bounded.
                if frame.type is FrameType.RELOAD:
                    # Reload drains the outgoing generation — the ref this
                    # very frame holds on it would deadlock that drain.
                    gen.release()
                    held = False
                    ftype, payload = await self._answer(frame, trace)
                else:
                    ftype, payload = await asyncio.wait_for(
                        self._answer(frame, trace), timeout=self.deadline_s
                    )
                with trace.span("send"):
                    await self._send(
                        writer, write_lock, ftype, frame.request_id, payload,
                        trace_id=echo,
                    )
            except asyncio.CancelledError:
                raise
            except ShardLostError as exc:
                await self._send_error(
                    writer, write_lock, frame.request_id,
                    ErrorCode.SHARD_LOST, str(exc), trace_id=echo,
                )
            except asyncio.TimeoutError:
                await self._send_error(
                    writer, write_lock, frame.request_id, ErrorCode.DEADLINE,
                    f"request missed the {self.deadline_s}s deadline",
                    trace_id=echo,
                )
            except _Unsupported as exc:
                await self._send_error(
                    writer, write_lock, frame.request_id,
                    ErrorCode.UNSUPPORTED, str(exc), trace_id=echo,
                )
            except BadQueryError as exc:
                await self._send_error(
                    writer, write_lock, frame.request_id,
                    ErrorCode.BAD_QUERY, str(exc), trace_id=echo,
                )
            except ProtocolError as exc:
                await self._send_error(
                    writer, write_lock, frame.request_id,
                    ErrorCode.BAD_FRAME, str(exc), trace_id=echo,
                )
            except Exception as exc:
                await self._send_error(
                    writer, write_lock, frame.request_id,
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}",
                    trace_id=echo,
                )
        finally:
            if held:
                gen.release()
            sem.release()
            trace.finish()
            self.obs.histogram("server.request_seconds").observe(trace.total_s)
            self.slow_log.record(
                trace, request_id=frame.request_id, frame=frame.type.name
            )

    async def _send(
        self, writer, write_lock, ftype: FrameType, request_id: int, payload,
        trace_id: Optional[int] = None,
    ) -> None:
        data = encode_frame(ftype, request_id, payload, trace_id=trace_id)
        with contextlib.suppress(ConnectionError, RuntimeError):
            async with write_lock:
                writer.write(data)
                await writer.drain()

    async def _send_error(
        self, writer, write_lock, request_id: int, code: ErrorCode,
        message: str, trace_id: Optional[int] = None,
    ) -> None:
        self.stats.count_error(code)
        self.obs.counter(f"server.errors.{code.name}").inc()
        await self._send(
            writer, write_lock, FrameType.ERROR, request_id,
            (int(code), message), trace_id=trace_id,
        )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.stats.connections_total += 1
        self.stats.connections_open += 1
        self.obs.counter("server.connections_total").inc()
        self.obs.gauge("server.connections_open").inc()
        decoder = FrameDecoder()
        write_lock = asyncio.Lock()
        sem = asyncio.Semaphore(self.max_inflight)
        inflight: set = set()
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                t_dec = time.perf_counter()
                try:
                    decoder.feed(data)
                    frames = list(decoder.frames())
                except ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    self.obs.counter("server.protocol_errors").inc()
                    await self._send_error(
                        writer, write_lock, 0, ErrorCode.BAD_FRAME, str(exc)
                    )
                    break  # the stream is garbage: close the connection
                dec_dur = time.perf_counter() - t_dec
                for frame in frames:
                    self.stats.frames += 1
                    self.obs.counter("server.frames_total").inc()
                    # Every request gets a trace: the client's id when
                    # the frame carried one, a freshly minted one
                    # otherwise (so the slow-query log covers untraced
                    # clients too).  Birth is backdated to the read so
                    # the decode span sits at offset zero.
                    trace = Trace(frame.trace_id)
                    trace.t0 = t_dec
                    trace.add_span("decode", t_dec, dec_dur)
                    # Backpressure: stop consuming frames while
                    # max_inflight requests are unanswered.
                    await sem.acquire()
                    req = asyncio.ensure_future(
                        self._serve_frame(frame, writer, write_lock, sem, trace)
                    )
                    inflight.add(req)
                    req.add_done_callback(inflight.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; ending cleanly
            # here keeps asyncio's stream-protocol callback quiet (it
            # retrieves task.exception() on completed handler tasks).
            pass
        finally:
            # A dropped client cancels its pending requests — the
            # coalescer scrubs them from pending groups (see
            # AsyncQueryCoalescer); dispatched work completes harmlessly.
            for req in list(inflight):
                req.cancel()
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            self.stats.connections_open -= 1
            self.obs.gauge("server.connections_open").dec()
            try:
                with contextlib.suppress(ConnectionError):
                    writer.close()
                    await writer.wait_closed()
            finally:
                # Stay in _conn_tasks until fully done: aclose() must
                # be able to await a handler parked on wait_closed(),
                # else it dies pending when the loop closes.
                self._conn_tasks.discard(task)


class _Unsupported(RuntimeError):
    """This server's artifact cannot answer the requested frame type."""


def run_server(
    backend=None,
    *,
    snapshot: Optional[str] = None,
    ready_event: Optional[object] = None,
    **kw,
) -> None:
    """Blocking convenience runner (the ``cli.py serve`` entry point).

    Starts a :class:`LabelServer` and serves until cancelled
    (KeyboardInterrupt included).  ``ready_event`` (a
    ``threading.Event``-alike) is set once the socket is bound — test
    and bench harnesses that run the server in a thread wait on it.
    """

    async def _main():
        server = LabelServer(backend, snapshot=snapshot, **kw)
        await server.start()
        print(
            f"repro.server: serving {server.kind} on "
            f"{server.host}:{server.port} "
            f"({server.num_shards} shards, {server.mp_context})",
            flush=True,
        )
        if ready_event is not None:
            ready_event.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


#: kept importable for the multiprocessing timeout that start_chunk's
#: callers may need to distinguish.
MPTimeoutError = multiprocessing.TimeoutError

__all__ = [
    "BadQueryError",
    "LabelServer",
    "ServerStats",
    "ShardLostError",
    "run_server",
]
