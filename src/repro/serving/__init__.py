"""repro.serving — the fault-set-partition serving layer.

Production query serving on top of the immutable packed label stores
(see ``src/repro/serving/README.md`` and ``docs/ARCHITECTURE.md``):

* :mod:`repro.serving.partition_cache` — canonical fault-set keys and
  an LRU of memoized ``decode_partition`` results, so all same-fault
  queries in a stream cost one decode;
* :mod:`repro.serving.coalescer` — synchronous and asyncio request
  coalescers that group single ``(s, t, F)`` queries into fault-set
  chunks and dispatch them through ``query_many``;
* :mod:`repro.serving.shards` — a process-pool service that shares
  the packed stores with every worker (fork copy-on-write, or
  spawn-safe workers that mmap a :mod:`repro.store` snapshot) and fans
  chunks out by fault-set hash, with a :class:`ServiceStats` snapshot.
"""

from repro.serving.coalescer import (
    AsyncQueryCoalescer,
    ChunkStats,
    QueryCoalescer,
    Ticket,
)
from repro.serving.partition_cache import (
    CacheStats,
    PartitionCache,
    canonical_fault_key,
    presentation_fault_key,
)
from repro.serving.shards import ServiceStats, ShardedQueryService, shard_of

__all__ = [
    "AsyncQueryCoalescer",
    "CacheStats",
    "ChunkStats",
    "PartitionCache",
    "QueryCoalescer",
    "ServiceStats",
    "ShardedQueryService",
    "Ticket",
    "canonical_fault_key",
    "presentation_fault_key",
    "shard_of",
]
