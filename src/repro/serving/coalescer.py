"""Request coalescing: single ``(s, t, F)`` queries into batched chunks.

Interactive callers issue one query at a time, but the decode engine is
at its best on batches sharing a fault set (one partition decode, many
locates).  The coalescer bridges the two shapes:

* :class:`QueryCoalescer` — synchronous: ``submit`` buffers a query
  under its canonical fault key and returns a :class:`Ticket`; a group
  is dispatched through the backend's ``query_many`` the moment it
  reaches ``max_chunk`` queries, when it has been pending longer than
  ``max_delay`` (checked on every submit), or on ``flush()``.
* :class:`AsyncQueryCoalescer` — the asyncio front-end: ``await
  query(s, t, F)`` parks the caller on a future; a per-group timer
  (``max_delay`` seconds) or the ``max_chunk`` size bound triggers the
  dispatch, so concurrent tasks querying the same fault set are served
  by one batched decode.

The backend is any ``callable(pairs, faults) -> answers`` with
``query_many`` semantics — a scheme, a
:class:`~repro.serving.partition_cache.PartitionCache`, or a
:class:`~repro.serving.shards.ShardedQueryService`.  Dispatch order
never changes answers (each chunk shares one canonical fault list), and
every ticket/future receives exactly the answer the backend produced
for its position — asserted by ``tests/test_serving.py``.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.serving.partition_cache import FaultKey, canonical_fault_key

Backend = Callable[[Sequence[tuple[int, int]], list[int]], list]

_PENDING = object()


class Ticket:
    """Handle for one submitted query; filled when its chunk dispatches."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = _PENDING

    @property
    def done(self) -> bool:
        return self._value is not _PENDING

    def result(self):
        """The backend's answer; raises if the chunk was not dispatched
        yet (call ``flush()`` on the coalescer first)."""
        if self._value is _PENDING:
            raise RuntimeError("query not dispatched yet — flush() the coalescer")
        return self._value

    def _fill(self, value) -> None:
        self._value = value


@dataclass
class ChunkStats:
    """Dispatch accounting of one coalescer."""

    chunks: int = 0
    queries: int = 0
    max_chunk: int = 0

    @property
    def mean_chunk(self) -> float:
        return self.queries / self.chunks if self.chunks else 0.0

    def record(self, size: int) -> None:
        self.chunks += 1
        self.queries += size
        if size > self.max_chunk:
            self.max_chunk = size


@dataclass
class _Group:
    """Pending queries of one canonical fault set.

    ``traces`` holds one ``(trace, enqueue_perf_counter)`` entry per
    pair **when any waiter is traced** (``None`` entries for untraced
    waiters keep the lists index-aligned); it stays empty otherwise so
    the untraced hot path allocates nothing extra.
    """

    pairs: list = field(default_factory=list)
    tickets: list = field(default_factory=list)
    traces: list = field(default_factory=list)
    born: float = 0.0


class QueryCoalescer:
    """Synchronous coalescer: buffer singles, dispatch fault-set chunks.

    ``max_chunk`` bounds chunk size (a full group dispatches
    immediately); ``max_delay`` (seconds, optional) bounds how long a
    group may sit pending — it is checked against ``clock()`` on every
    ``submit``, which is the natural beat of a synchronous ingest loop.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        backend: Backend,
        max_chunk: int = 512,
        max_delay: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.backend = backend
        self.max_chunk = max_chunk
        self.max_delay = max_delay
        self.clock = clock
        self.stats = ChunkStats()
        self._groups: "OrderedDict[FaultKey, _Group]" = OrderedDict()

    @property
    def pending(self) -> int:
        """Number of buffered, not yet dispatched queries."""
        return sum(len(g.pairs) for g in self._groups.values())

    def submit(self, s: int, t: int, faults: Iterable[int] = ()) -> Ticket:
        """Buffer one query; returns its :class:`Ticket`.

        Dispatches the query's group when it reaches ``max_chunk``, and
        any group older than ``max_delay``.
        """
        key = canonical_fault_key(faults)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(born=self.clock())
        ticket = Ticket()
        group.pairs.append((s, t))
        group.tickets.append(ticket)
        if len(group.pairs) >= self.max_chunk:
            del self._groups[key]
            self._dispatch(key, group)
        if self.max_delay is not None:
            self._flush_expired()
        return ticket

    def flush(self) -> int:
        """Dispatch every pending group; returns the query count served."""
        served = 0
        while self._groups:
            key, group = self._groups.popitem(last=False)
            served += len(group.pairs)
            self._dispatch(key, group)
        return served

    def run(self, queries: Iterable[tuple[int, int, Iterable[int]]]) -> list:
        """Convenience pipeline: submit all, flush, return answers in
        submission order."""
        tickets = [self.submit(s, t, F) for s, t, F in queries]
        self.flush()
        return [tk.result() for tk in tickets]

    def _flush_expired(self) -> None:
        now = self.clock()
        while self._groups:
            key, group = next(iter(self._groups.items()))
            if now - group.born < self.max_delay:
                break  # groups are in insertion order: the rest is younger
            del self._groups[key]
            self._dispatch(key, group)

    def _dispatch(self, key: FaultKey, group: _Group) -> None:
        answers = self.backend(group.pairs, list(key))
        if len(answers) != len(group.tickets):  # pragma: no cover - tripwire
            raise RuntimeError("backend returned a short answer batch")
        self.stats.record(len(group.pairs))
        for ticket, ans in zip(group.tickets, answers):
            ticket._fill(ans)


class AsyncQueryCoalescer:
    """Asyncio front-end: ``await query(...)``, batched under the hood.

    Each canonical fault set gets a pending group with a
    ``loop.call_later(max_delay, ...)`` flush timer; hitting
    ``max_chunk`` dispatches immediately and cancels the timer.

    The backend may be a plain callable (runs inline on the event loop
    — partition-cache decodes are fast numpy work) **or** a coroutine
    function; an async backend is awaited in its own dispatch task, so
    slow fan-outs (the sharded server) never block the loop, and
    :meth:`aclose` drains those tasks.

    Cancellation is first-class: a waiter cancelled while its group is
    still pending (a disconnected client) is *scrubbed* from the group
    — its pair is removed, the remaining tickets keep their answers
    aligned, and a group whose every waiter vanished is dropped without
    ever touching the backend.  A waiter cancelled after dispatch
    simply ignores its answer; the rest of the chunk is unaffected
    (regression-tested by ``tests/test_serving.py``).
    """

    def __init__(
        self,
        backend: Backend,
        max_chunk: int = 512,
        max_delay: float = 0.002,
        chunk_hist=None,
    ):
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.backend = backend
        self._backend_is_async = asyncio.iscoroutinefunction(backend)
        self.max_chunk = max_chunk
        self.max_delay = max_delay
        self.stats = ChunkStats()
        #: optional obs histogram observing dispatched chunk sizes
        self.chunk_hist = chunk_hist
        self._groups: dict[FaultKey, _Group] = {}
        self._timers: dict[FaultKey, asyncio.TimerHandle] = {}
        self._inflight: set = set()  # async-backend dispatch tasks

    @property
    def pending(self) -> int:
        return sum(len(g.pairs) for g in self._groups.values())

    async def query(
        self, s: int, t: int, faults: Iterable[int] = (), trace=None
    ):
        """One query; resolves when its chunk is dispatched.

        ``trace`` (a :class:`repro.obs.Trace`) makes the waiter record
        a ``coalesce`` span (enqueue -> dispatch) and a ``shard`` span
        (backend duration) on its timeline; answers are identical with
        or without it.
        """
        loop = asyncio.get_running_loop()
        key = canonical_fault_key(faults)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group()
            self._timers[key] = loop.call_later(
                self.max_delay, self._dispatch_key, key
            )
        future = loop.create_future()
        group.pairs.append((s, t))
        group.tickets.append(future)
        if trace is not None or group.traces:
            # lazily backfill: the traces list only materializes once a
            # traced waiter joins, then stays index-aligned with pairs.
            while len(group.traces) < len(group.pairs) - 1:
                group.traces.append(None)
            group.traces.append(
                None if trace is None else (trace, time.perf_counter())
            )
        if len(group.pairs) >= self.max_chunk:
            self._dispatch_key(key)
        try:
            return await future
        except asyncio.CancelledError:
            self._scrub(key, future)
            raise

    def _scrub(self, key: FaultKey, future) -> None:
        """Remove a cancelled waiter from its still-pending group.

        Pair and ticket are removed at the same index, so the group's
        surviving tickets stay aligned with the backend's answer list;
        an emptied group is dropped (timer cancelled) without invoking
        the backend at all.  If the group already dispatched, there is
        nothing to scrub — the cancelled future just drops its answer.
        """
        group = self._groups.get(key)
        if group is None:
            return
        try:
            idx = group.tickets.index(future)
        except ValueError:  # pragma: no cover - future of a dispatched group
            return
        del group.tickets[idx]
        del group.pairs[idx]
        if group.traces:
            del group.traces[idx]
        if not group.pairs:
            del self._groups[key]
            timer = self._timers.pop(key, None)
            if timer is not None:
                timer.cancel()

    async def flush(self) -> int:
        """Dispatch everything pending; returns the query count served."""
        served = self.pending
        for key in list(self._groups):
            self._dispatch_key(key)
        return served

    async def aclose(self) -> None:
        """Flush pending work, cancel all timers, drain dispatch tasks."""
        await self.flush()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    @staticmethod
    def _settle(group: _Group, answers, exc) -> bool:
        """Fill every still-waiting ticket of a dispatched group."""
        if exc is not None:
            for future in group.tickets:
                if not future.done():
                    future.set_exception(exc)
            return False
        for future, ans in zip(group.tickets, answers):
            if not future.done():
                future.set_result(ans)
        return True

    @staticmethod
    def _trace_coalesce(group: _Group, t_disp: float) -> None:
        """``coalesce`` span (enqueue -> dispatch) for traced waiters."""
        for entry in group.traces:
            if entry is not None:
                trace, t_enq = entry
                trace.add_span("coalesce", t_enq, t_disp - t_enq)

    @staticmethod
    def _trace_shard(group: _Group, t_disp: float, dur: float) -> None:
        """``shard`` span (backend duration) for traced waiters."""
        for entry in group.traces:
            if entry is not None:
                entry[0].add_span("shard", t_disp, dur)

    def _record(self, size: int) -> None:
        self.stats.record(size)
        if self.chunk_hist is not None:
            self.chunk_hist.observe(size)

    async def _dispatch_async(self, group: _Group, key: FaultKey) -> None:
        """Await an async backend for one group (own task: a cancelled
        waiter never cancels the batch)."""
        t_disp = time.perf_counter()
        if group.traces:
            self._trace_coalesce(group, t_disp)
        try:
            answers = await self.backend(group.pairs, list(key))
        except asyncio.CancelledError:  # loop teardown: fail the waiters
            self._settle(group, None, ConnectionError("dispatch cancelled"))
            raise
        except Exception as exc:
            self._settle(group, None, exc)
            return
        if group.traces:
            self._trace_shard(group, t_disp, time.perf_counter() - t_disp)
        if self._settle(group, answers, None):
            self._record(len(group.pairs))

    def _dispatch_key(self, key: FaultKey) -> None:
        group = self._groups.pop(key, None)
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        if group is None or not group.pairs:
            return
        if self._backend_is_async:
            task = asyncio.get_running_loop().create_task(
                self._dispatch_async(group, key)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            return
        t_disp = time.perf_counter()
        if group.traces:
            self._trace_coalesce(group, t_disp)
        try:
            answers = self.backend(group.pairs, list(key))
        except Exception as exc:  # propagate to every waiter
            self._settle(group, None, exc)
            return
        if group.traces:
            self._trace_shard(group, t_disp, time.perf_counter() - t_disp)
        if self._settle(group, answers, None):
            self._record(len(group.pairs))
