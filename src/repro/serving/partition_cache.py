"""Per-fault-set partition caching (the serving layer's hot core).

The paper frames decoding as *fault set -> connectivity partition*
reconstruction: everything the Section 3.2.2 Boruvka decoder (or the
forest interval decoder, or the Section 4 scale scan) computes that is
expensive depends only on the fault set, never on the queried pair.
Every scheme therefore exposes ``decode_partition(faults)`` (factored
out of its ``query_many``), and this module memoizes those partitions:

* fault sets are **canonicalized** — deduplicated, sorted edge-index
  tuples — so permutations and repeats of the same failure event share
  one cache entry;
* partitions are kept in an **LRU** of bounded capacity with hit /
  miss / eviction counters, because real fault workloads are bursty
  (the same few fault sets are queried thousands of times while they
  are live);
* :meth:`PartitionCache.query_many` keeps the scheme's batched API:
  queries are grouped by canonical fault set, each group is answered
  off one partition, and answers come back in request order with the
  scheme's native answer type (``SkDecodeResult`` for the sketch
  scheme, ``bool`` for forest/cycle-space, ``float`` for distance).

Answers are bit-identical to the underlying scheme's ``query_many``
with canonically ordered faults (asserted by ``tests/test_serving.py``
across the five generator families); verdicts agree for any fault
order.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core._batch import normalize_faults

FaultKey = tuple[int, ...]


def canonical_fault_key(faults: Iterable[int]) -> FaultKey:
    """Canonical cache key of a fault set: sorted unique edge indices.

    Two fault iterables describe the same failure state iff their
    canonical keys are equal; partitions are pure functions of this key.
    """
    return tuple(sorted({int(ei) for ei in faults}))


def presentation_fault_key(faults: Iterable[int]) -> FaultKey:
    """Order-preserving cache key: unique edge indices, first-seen order.

    Connectivity *verdicts* are order-independent, but the succinct
    paths and merge records the sketch decoder emits depend on the
    order faults are presented in.  The packed routing engine therefore
    keys its retry-decode partitions by discovery order — exactly what
    the seed decoder was handed — so cached answers stay bit-identical
    to uncached ones (see ``PartitionCache(canonicalize=False)``).
    """
    return tuple(dict.fromkeys(int(ei) for ei in faults))


def group_by_canonical_key(
    per: Sequence[list[int]], key_of=None
) -> "OrderedDict[FaultKey, list[int]]":
    """Group query indices by the (canonical, by default) key of their
    fault list.

    ``per`` is the output of :func:`repro.core._batch.normalize_faults`;
    the shared-fault case aliases one list object across all queries,
    which this exploits to key it once.  ``key_of`` swaps the key
    function (:func:`presentation_fault_key` for the order-preserving
    cache mode).  The cache and the sharded service both group through
    here so the paths cannot drift.
    """
    if key_of is None:
        key_of = canonical_fault_key
    groups: "OrderedDict[FaultKey, list[int]]" = OrderedDict()
    prev = None
    prev_key: FaultKey = ()
    for qi, F in enumerate(per):
        if F is not prev:
            prev, prev_key = F, key_of(F)
        groups.setdefault(prev_key, []).append(qi)
    return groups


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PartitionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up yet)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def snapshot(self) -> dict:
        """A JSON-ready copy (used by ``ServiceStats`` and benches)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class PartitionCache:
    """LRU-memoized ``decode_partition`` under any labeling scheme.

    ``scheme`` is anything exposing ``decode_partition(faults)`` whose
    result answers queries via ``answer_many(pairs, **kw)`` — all four
    scheme classes and both ``core.api`` facades qualify.  The cache
    makes a stream of same-fault queries cost one decode total instead
    of one decode per query; capacity bounds the number of live fault
    sets kept (each partition is small: a component forest, a
    union-find and the recorded merges — not a sketch tensor).
    """

    def __init__(
        self,
        scheme,
        capacity: int = 128,
        canonicalize: bool = True,
        obs=None,
    ):
        """``canonicalize=False`` keys entries by *presentation order*
        (:func:`presentation_fault_key`) instead of sorted order: needed
        when the cached partition's answers must be bit-identical to
        decoding the faults exactly as presented (the routing engine's
        retry decodes); sorted-order canonicalization shares entries
        across permutations and is right for everything else.

        ``obs`` is an optional :class:`~repro.obs.MetricsRegistry`: hit
        and miss counters plus a ``cache.decode_seconds`` histogram are
        recorded into it per *fault-set group* (never per query), so the
        shard workers can ship exact decode-latency distributions back
        to the serving parent.  ``None`` keeps the cache metrics-free —
        :class:`CacheStats` is maintained either way."""
        if not hasattr(scheme, "decode_partition"):
            raise TypeError(
                f"{type(scheme).__name__} does not expose decode_partition"
            )
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.scheme = scheme
        self.capacity = capacity
        self.canonicalize = canonicalize
        self.obs = obs
        self._key = canonical_fault_key if canonicalize else presentation_fault_key
        self._lru: "OrderedDict[FaultKey, object]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, faults) -> bool:
        return self._key(faults) in self._lru

    def partition(self, faults: Iterable[int]):
        """The (memoized) partition for ``faults``.

        On a miss the scheme decodes the canonical fault list once; on a
        hit the stored partition is returned and refreshed in LRU order.
        """
        key = self._key(faults)
        part = self._lru.get(key)
        if part is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            if self.obs is not None:
                self.obs.counter("cache.hits").inc()
            return part
        self.stats.misses += 1
        t0 = time.perf_counter()
        part = self.scheme.decode_partition(list(key))
        if self.obs is not None:
            self.obs.counter("cache.misses").inc()
            self.obs.histogram("cache.decode_seconds").observe(
                time.perf_counter() - t0
            )
        self._lru[key] = part
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
        return part

    def query(self, s: int, t: int, faults: Iterable[int] = (), **kw):
        """One query through the cache (native answer type)."""
        return self.partition(faults).answer_many([(s, t)], **kw)[0]

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=(), **kw
    ) -> list:
        """Batched queries, answered off cached partitions.

        Same signature and answer list as the scheme's ``query_many``
        (``faults`` is one shared iterable or a per-pair sequence;
        ``**kw`` is forwarded to the partition — e.g. ``want_path`` for
        the sketch scheme).  Queries are grouped by canonical fault set
        so each distinct set is decoded at most once per call, then
        served from the LRU on every later call.
        """
        pairs = list(pairs)
        per = normalize_faults(pairs, faults)
        groups = group_by_canonical_key(per, key_of=self._key)
        results: list = [None] * len(pairs)
        for key, qis in groups.items():
            part = self.partition(key)
            answers = part.answer_many([pairs[qi] for qi in qis], **kw)
            for qi, ans in zip(qis, answers):
                results[qi] = ans
        return results

    def clear(self) -> None:
        """Drop every cached partition (stats are kept)."""
        self._lru.clear()
