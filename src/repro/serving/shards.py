"""Process-pool sharded query service over immutable packed stores.

Once constructed, a scheme's packed label store never mutates — the
whole query side is read-only — so serving can fan out across worker
processes without locks or copies.  :class:`ShardedQueryService`:

* forces the packed store to materialize in the parent, then **forks**
  one single-process pool per shard: the store transfers to every
  worker once, for free, via copy-on-write (on platforms without
  ``fork``, and with ``num_shards=0``, it degrades to in-process shard
  caches — same answers, no processes);
* routes every coalesced chunk by the **hash of its canonical fault
  set**, so all queries about one failure state land on the same
  worker and hit that worker's
  :class:`~repro.serving.partition_cache.PartitionCache`;
* aggregates a :class:`ServiceStats` snapshot: throughput, chunk
  sizes, per-shard load, and the workers' combined cache hit rate.

Answers are bit-identical to the single-process scheme (construction is
finished before the fork, so every worker holds the same store;
asserted by ``tests/test_serving.py``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core._batch import normalize_faults
from repro.serving.partition_cache import (
    FaultKey,
    PartitionCache,
    group_by_canonical_key,
)

#: Fork-time handoff: each live service parks its scheme here under a
#: unique token for its whole lifetime (not just during Pool creation),
#: so workers the pool respawns after a crash can still re-initialize
#: from the parent's (copy-on-write-inherited) view of this module.
_WORKER: dict = {}
_SERVICE_TOKENS = itertools.count()

#: Timeout (s) for any single chunk result; a worker that takes longer
#: is considered lost and the error propagates to the caller.
_CHUNK_TIMEOUT = 600.0


def _worker_init(token: int, cache_capacity: int) -> None:
    """Pool initializer (runs in the forked child)."""
    _WORKER["cache"] = PartitionCache(
        _WORKER[token], capacity=cache_capacity
    )


def _worker_query(pairs, faults, kw):
    """Serve one chunk off the worker's partition cache."""
    return _WORKER["cache"].query_many(pairs, faults, **kw)


def _worker_cache_stats():
    stats = _WORKER["cache"].stats
    return stats.hits, stats.misses, stats.evictions


def shard_of(key: FaultKey, num_shards: int) -> int:
    """Stable shard index of a canonical fault key.

    Computed in the parent only; ``hash`` of an int tuple is
    deterministic (integer hashing is not salted by ``PYTHONHASHSEED``).
    """
    return hash(key) % num_shards


@dataclass
class ServiceStats:
    """One snapshot of a :class:`ShardedQueryService`'s counters."""

    queries: int = 0
    chunks: int = 0
    busy_s: float = 0.0  # wall time spent inside query_many
    per_shard: tuple = ()
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    mode: str = "fork"
    max_chunk_seen: int = 0

    @property
    def qps(self) -> float:
        return self.queries / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def mean_chunk(self) -> float:
        return self.queries / self.chunks if self.chunks else 0.0

    @property
    def cache_hit_rate(self) -> float:
        n = self.cache_hits + self.cache_misses
        return self.cache_hits / n if n else 0.0

    def snapshot(self) -> dict:
        """JSON-ready summary (what ``serve-bench`` and benches print)."""
        return {
            "mode": self.mode,
            "queries": self.queries,
            "chunks": self.chunks,
            "busy_s": round(self.busy_s, 4),
            "qps": round(self.qps, 1),
            "mean_chunk": round(self.mean_chunk, 1),
            "max_chunk": self.max_chunk_seen,
            "per_shard": list(self.per_shard),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
        }


@dataclass
class _Tally:
    """Parent-side running counters (folded into ServiceStats)."""

    queries: int = 0
    chunks: int = 0
    busy_s: float = 0.0
    max_chunk: int = 0
    per_shard: list = field(default_factory=list)


class ShardedQueryService:
    """Fan coalesced fault-set chunks out over per-shard processes.

    ``scheme`` is anything with ``decode_partition`` (see
    :class:`~repro.serving.partition_cache.PartitionCache`); its packed
    store is materialized up front so the fork shares it.  With
    ``num_shards=0`` (or where ``fork`` is unavailable) the service
    runs in-process with one partition cache per logical shard —
    identical answers, useful as a baseline and on exotic platforms.

    Use as a context manager, or call :meth:`close` — worker pools are
    real OS processes.
    """

    def __init__(
        self,
        scheme,
        num_shards: int = 2,
        cache_capacity: int = 128,
        max_chunk: int = 1024,
        mp_context: str = "fork",
    ):
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.scheme = scheme
        self.max_chunk = max_chunk
        self.cache_capacity = cache_capacity
        self._tally = _Tally()
        self._pools: Optional[list] = None
        self._local: Optional[list[PartitionCache]] = None
        self._token: Optional[int] = None
        # Materialize the packed stores before any fork so workers
        # inherit them instead of each rebuilding their own copy (the
        # distance scheme keeps one store per (scale, cluster)
        # instance; the core.api facades hide theirs behind ``.impl``).
        scheme.decode_partition(())
        inner = getattr(scheme, "impl", scheme)
        for inst in getattr(inner, "instances", {}).values():
            inst.scheme.decode_partition(())
        ctx = None
        if num_shards > 0:
            try:
                ctx = multiprocessing.get_context(mp_context)
            except ValueError:
                ctx = None
        if ctx is None:
            self.num_shards = max(1, num_shards)
            self._local = [
                PartitionCache(scheme, capacity=cache_capacity)
                for _ in range(self.num_shards)
            ]
        else:
            self.num_shards = num_shards
            # The token-keyed slot stays populated until close(): pool
            # worker respawns re-run _worker_init in a fresh fork of the
            # parent and must still find the scheme.
            self._token = next(_SERVICE_TOKENS)
            _WORKER[self._token] = scheme
            self._pools = [
                ctx.Pool(
                    processes=1,
                    initializer=_worker_init,
                    initargs=(self._token, cache_capacity),
                )
                for _ in range(num_shards)
            ]
        self._tally.per_shard = [0] * self.num_shards

    @property
    def mode(self) -> str:
        """``"fork"`` (process pools) or ``"local"`` (in-process)."""
        return "fork" if self._pools is not None else "local"

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, faults: Iterable[int] = (), **kw):
        return self.query_many([(s, t)], faults, **kw)[0]

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=(), **kw
    ) -> list:
        """Batched queries: coalesce by fault set, shard by its hash.

        Chunks of at most ``max_chunk`` queries per fault set are
        dispatched to ``shard_of(key)``'s worker concurrently; answers
        return in request order with the scheme's native answer type.
        """
        t0 = time.perf_counter()
        pairs = list(pairs)
        per = normalize_faults(pairs, faults)
        groups = group_by_canonical_key(per)
        results: list = [None] * len(pairs)
        tally = self._tally
        dispatched = []  # (qis, async_result) in fork mode
        for key, qis in groups.items():
            shard = shard_of(key, self.num_shards)
            for lo in range(0, len(qis), self.max_chunk):
                chunk = qis[lo : lo + self.max_chunk]
                chunk_pairs = [pairs[qi] for qi in chunk]
                tally.chunks += 1
                tally.per_shard[shard] += len(chunk)
                if len(chunk) > tally.max_chunk:
                    tally.max_chunk = len(chunk)
                if self._pools is not None:
                    handle = self._pools[shard].apply_async(
                        _worker_query, (chunk_pairs, list(key), kw)
                    )
                    dispatched.append((chunk, handle))
                else:
                    answers = self._local[shard].query_many(
                        chunk_pairs, list(key), **kw
                    )
                    for qi, ans in zip(chunk, answers):
                        results[qi] = ans
        for chunk, handle in dispatched:
            answers = handle.get(timeout=_CHUNK_TIMEOUT)
            for qi, ans in zip(chunk, answers):
                results[qi] = ans
        tally.queries += len(pairs)
        tally.busy_s += time.perf_counter() - t0
        return results

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Aggregate parent counters with the workers' cache counters."""
        hits = misses = evictions = 0
        if self._pools is not None:
            for pool in self._pools:
                h, m, e = pool.apply(_worker_cache_stats)
                hits += h
                misses += m
                evictions += e
        else:
            for cache in self._local:
                hits += cache.stats.hits
                misses += cache.stats.misses
                evictions += cache.stats.evictions
        t = self._tally
        return ServiceStats(
            queries=t.queries,
            chunks=t.chunks,
            busy_s=t.busy_s,
            per_shard=tuple(t.per_shard),
            cache_hits=hits,
            cache_misses=misses,
            cache_evictions=evictions,
            mode=self.mode,
            max_chunk_seen=t.max_chunk,
        )

    def close(self) -> None:
        """Terminate the worker pools (idempotent)."""
        if self._pools is not None:
            for pool in self._pools:
                pool.terminate()
                pool.join()
            self._pools = None
        if self._token is not None:
            _WORKER.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
