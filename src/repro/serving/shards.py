"""Process-pool sharded query service over immutable packed stores.

Once constructed, a scheme's packed label store never mutates — the
whole query side is read-only — so serving can fan out across worker
processes without locks or copies.  :class:`ShardedQueryService`:

* forces the packed store to materialize in the parent, then **forks**
  one single-process pool per shard: the store transfers to every
  worker once, for free, via copy-on-write; alternatively, given a
  :mod:`repro.store` ``snapshot`` path, workers **open the snapshot
  themselves** (read-only mmap — one shared page-cache copy), which
  makes every start method viable, ``spawn`` included (see
  :meth:`ShardedQueryService.from_snapshot`).  Without fork and
  without a snapshot (and with ``num_shards=0``) it degrades to
  in-process shard caches — same answers, no processes;
* routes every coalesced chunk by the **hash of its canonical fault
  set**, so all queries about one failure state land on the same
  worker and hit that worker's
  :class:`~repro.serving.partition_cache.PartitionCache`;
* **replicates pathologically hot fault sets**: when one key takes
  more than ``hot_key_share`` of all traffic, its chunks fan out
  round-robin over *every* shard instead of pinning its hash owner —
  each worker's cache builds its own replica of the partition (cheap:
  one decode per worker) and the hot key stops serializing the fleet;
* owns its own **deadline-based flushing**: :meth:`submit` buffers
  single queries per fault set and dispatches a buffer when it reaches
  ``max_chunk`` *or* has been pending longer than ``flush_delay``
  seconds (checked on every submit and on :meth:`flush_due`), so a
  service can be fed singles directly without an external coalescer;
* aggregates a :class:`ServiceStats` snapshot: throughput, chunk
  sizes, per-shard load, hot-key replication, and the workers'
  combined cache hit rate.

Answers are bit-identical to the single-process scheme (construction is
finished before the fork, so every worker holds the same store;
asserted by ``tests/test_serving.py``).
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core._batch import normalize_faults
from repro.obs import MetricsRegistry
from repro.serving.coalescer import Ticket
from repro.serving.partition_cache import (
    FaultKey,
    PartitionCache,
    canonical_fault_key,
    group_by_canonical_key,
)

#: Fork-time handoff: each live service parks its scheme here under a
#: unique token for its whole lifetime (not just during Pool creation),
#: so workers the pool respawns after a crash can still re-initialize
#: from the parent's (copy-on-write-inherited) view of this module.
_WORKER: dict = {}
_SERVICE_TOKENS = itertools.count()

#: Timeout (s) for any single chunk result; a worker that takes longer
#: is considered lost and the error propagates to the caller.
_CHUNK_TIMEOUT = 600.0

#: Hot-key traffic counters are pruned to half this size when they
#: exceed it (coldest keys dropped), so a churning stream of distinct
#: fault sets cannot grow the tracking dict without bound.  A genuinely
#: hot key's count dwarfs the pruned tail, so detection is unaffected.
_HOT_TRACK_LIMIT = 4096


def _worker_init(token: int, cache_capacity: int, metrics: bool = True) -> None:
    """Pool initializer (runs in the forked child)."""
    _WORKER["cache"] = PartitionCache(
        _WORKER[token],
        capacity=cache_capacity,
        obs=MetricsRegistry(enabled=metrics),
    )


def _worker_init_snapshot(
    path: str, cache_capacity: int, metrics: bool = True
) -> None:
    """Pool initializer for snapshot-backed workers (spawn-safe).

    Runs in a fresh interpreter with no inherited state: the worker
    opens the snapshot itself (read-only mmap, so every worker on the
    host shares one page-cache copy of the packed stores) instead of
    receiving the scheme by fork copy-on-write.
    """
    from repro.store import load_snapshot

    _WORKER["cache"] = PartitionCache(
        load_snapshot(path),
        capacity=cache_capacity,
        obs=MetricsRegistry(enabled=metrics),
    )


def _worker_query(pairs, faults, kw):
    """Serve one chunk off the worker's partition cache.

    Returns ``(answers, meta)`` — ``meta`` carries the worker-side
    timing and pid back to the parent so per-request traces can show a
    ``partition`` span without touching the answer objects (the
    answers themselves stay bit-identical to a direct ``query_many``).
    """
    t0 = time.perf_counter()
    answers = _WORKER["cache"].query_many(pairs, faults, **kw)
    return answers, {
        "worker_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }


def _worker_cache_stats():
    """Cache counters + the worker's metrics registry (wire dump).

    The registry dump rides along so the parent can aggregate worker
    histograms (partition decode seconds) exactly — the fixed bucket
    family makes the cross-process merge lossless.
    """
    cache = _WORKER["cache"]
    stats = cache.stats
    obs_wire = cache.obs.to_wire() if cache.obs is not None else None
    return stats.hits, stats.misses, stats.evictions, len(cache), obs_wire


def shard_of(key: FaultKey, num_shards: int) -> int:
    """Stable shard index of a canonical fault key.

    Computed in the parent only; ``hash`` of an int tuple is
    deterministic (integer hashing is not salted by ``PYTHONHASHSEED``).
    """
    return hash(key) % num_shards


#: how long :func:`_reap_pool` lets ``Pool.terminate()`` run before it
#: escalates to SIGKILLing the workers directly.
_REAP_GRACE_S = 3.0


def _pool_worker_pids(pool) -> list[int]:
    try:
        return [proc.pid for proc in pool._pool]
    except Exception:  # pragma: no cover - pool mid-teardown
        return []


def _reap_pool(pool, grace: float = _REAP_GRACE_S) -> bool:
    """Tear down a (possibly lock-poisoned) pool, never blocking forever.

    ``Pool.terminate()`` can deadlock after a worker died by SIGKILL:
    an idle worker waits in ``inqueue.get()`` *holding* the task
    queue's reader semaphore (a plain POSIX semaphore — dying does not
    release it), and CPython's ``_help_stuff_finish`` acquires exactly
    that lock.  So terminate runs on a sacrificial daemon thread; if
    it has not finished within ``grace`` seconds the worker processes
    are SIGKILLed directly and the stuck thread is abandoned.  That is
    safe to abandon: the pool's helper threads are daemonic, and
    ``util.Finalize.__call__`` unregisters itself *before* running, so
    a stuck terminate is never re-entered at interpreter exit.

    Returns ``True`` when the pool shut down cleanly within the grace
    periods, ``False`` when it had to be abandoned.
    """
    pids = _pool_worker_pids(pool)
    done = threading.Event()

    def _terminate():
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - pool already broken
            pass
        finally:
            done.set()

    thread = threading.Thread(target=_terminate, name="pool-reaper", daemon=True)
    thread.start()
    if done.wait(grace):
        return True
    for pid in pids:
        with contextlib.suppress(ProcessLookupError, PermissionError):
            os.kill(pid, signal.SIGKILL)
    return done.wait(grace)


def _reap_pool_async(pool, grace: float = _REAP_GRACE_S) -> None:
    """Fire-and-forget :func:`_reap_pool` (for reaps on a live path)."""
    threading.Thread(
        target=_reap_pool, args=(pool, grace), name="pool-reaper-bg", daemon=True
    ).start()


@dataclass
class ServiceStats:
    """One snapshot of a :class:`ShardedQueryService`'s counters."""

    queries: int = 0
    chunks: int = 0
    busy_s: float = 0.0  # wall time spent inside query_many
    per_shard: tuple = ()
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0  # live partitions across all worker caches
    mode: str = "fork"
    max_chunk_seen: int = 0
    hot_keys: int = 0
    replicated_chunks: int = 0
    deadline_flushes: int = 0
    pool_restarts: int = 0  # shard pools rebuilt after a lost worker
    queue_depth: tuple = ()  # chunks in flight per shard, at snapshot time
    per_shard_cache: tuple = ()  # one cache-counter dict per shard

    @property
    def qps(self) -> float:
        return self.queries / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def mean_chunk(self) -> float:
        return self.queries / self.chunks if self.chunks else 0.0

    @property
    def cache_hit_rate(self) -> float:
        n = self.cache_hits + self.cache_misses
        return self.cache_hits / n if n else 0.0

    def snapshot(self) -> dict:
        """JSON-ready summary (what ``serve-bench`` and benches print)."""
        return {
            "mode": self.mode,
            "queries": self.queries,
            "chunks": self.chunks,
            "busy_s": round(self.busy_s, 4),
            "qps": round(self.qps, 1),
            "mean_chunk": round(self.mean_chunk, 1),
            "max_chunk": self.max_chunk_seen,
            "per_shard": list(self.per_shard),
            "hot_keys": self.hot_keys,
            "replicated_chunks": self.replicated_chunks,
            "deadline_flushes": self.deadline_flushes,
            "pool_restarts": self.pool_restarts,
            "queue_depth": list(self.queue_depth),
            "per_shard_cache": list(self.per_shard_cache),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "entries": self.cache_entries,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
        }


@dataclass
class _Tally:
    """Parent-side running counters (folded into ServiceStats)."""

    queries: int = 0
    chunks: int = 0
    busy_s: float = 0.0
    max_chunk: int = 0
    per_shard: list = field(default_factory=list)
    replicated_chunks: int = 0
    deadline_flushes: int = 0
    pool_restarts: int = 0


@dataclass
class _Buffer:
    """Pending :meth:`ShardedQueryService.submit` queries of one
    (canonical fault set, kw) group."""

    faults: list
    kw: dict
    pairs: list = field(default_factory=list)
    tickets: list = field(default_factory=list)
    born: float = 0.0


class ShardedQueryService:
    """Fan coalesced fault-set chunks out over per-shard processes.

    ``scheme`` is anything with ``decode_partition`` (see
    :class:`~repro.serving.partition_cache.PartitionCache`); its packed
    store is materialized up front so the fork shares it.  With
    ``num_shards=0`` (or where ``fork`` is unavailable) the service
    runs in-process with one partition cache per logical shard —
    identical answers, useful as a baseline and on exotic platforms.

    Use as a context manager, or call :meth:`close` — worker pools are
    real OS processes.
    """

    def __init__(
        self,
        scheme,
        num_shards: int = 2,
        cache_capacity: int = 128,
        max_chunk: int = 1024,
        mp_context: str = "fork",
        hot_key_share: Optional[float] = 0.5,
        hot_key_min_queries: int = 512,
        flush_delay: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        snapshot: Optional[str] = None,
        chunk_timeout: float = _CHUNK_TIMEOUT,
        metrics: bool = True,
    ):
        """``hot_key_share`` enables hot-fault-set replication: once a
        single canonical key has taken at least that share of all
        queries (and at least ``hot_key_min_queries`` queries were
        seen), its chunks rotate round-robin over every shard instead
        of going to the hash owner only (``None`` disables).
        ``flush_delay`` (seconds) bounds how long a :meth:`submit`
        buffer may sit pending before it is dispatched regardless of
        size; ``clock`` is injectable for deterministic tests.

        ``chunk_timeout`` (seconds) bounds how long :meth:`query_many`
        waits for any single chunk result; a worker that takes longer
        (e.g. it was SIGKILLed with the chunk in flight) is considered
        lost and a ``multiprocessing.TimeoutError`` surfaces to the
        caller — the pool respawns the worker underneath, so later
        chunks are unaffected.  The network server runs with a short
        timeout; the in-process benches keep the 600 s default.

        ``snapshot`` names a :mod:`repro.store` snapshot file of the
        scheme: workers then *open the snapshot themselves* instead of
        inheriting the store by fork copy-on-write, which makes every
        ``mp_context`` viable — ``"spawn"`` included — and lets shards
        span processes that share nothing but the file (see
        :meth:`from_snapshot`).  Without a snapshot, non-fork contexts
        degrade to the in-process local mode (a spawned worker cannot
        inherit the parent's scheme object)."""
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        if hot_key_share is not None and not (0.0 < hot_key_share <= 1.0):
            raise ValueError("hot_key_share must be in (0, 1] or None")
        if scheme is None and snapshot is None:
            raise ValueError("need a scheme or a snapshot path")
        self.scheme = scheme  # stays None in snapshot-worker pool mode
        self.snapshot = None if snapshot is None else str(snapshot)
        self.max_chunk = max_chunk
        self.cache_capacity = cache_capacity
        self.hot_key_share = hot_key_share
        self.hot_key_min_queries = hot_key_min_queries
        self.chunk_timeout = chunk_timeout
        self.flush_delay = flush_delay
        self.clock = clock
        self._key_traffic: dict[FaultKey, int] = {}
        self._total_traffic = 0
        self._hot_keys: set[FaultKey] = set()
        self._rr = 0  # round-robin pointer for replicated keys
        self._buffers: "OrderedDict[tuple, _Buffer]" = OrderedDict()
        self._tally = _Tally()
        #: parent-side metrics (chunk sizes, worker seconds, queue depth);
        #: worker registries are merged in by :meth:`registry_dump`.
        self.obs = MetricsRegistry(enabled=metrics)
        self.metrics_enabled = metrics
        self._inflight_lock = threading.Lock()
        self._inflight: list[int] = []
        self._pools: Optional[list] = None
        self._local: Optional[list[PartitionCache]] = None
        self._token: Optional[int] = None
        ctx = None
        if num_shards > 0:
            try:
                ctx = multiprocessing.get_context(mp_context)
            except ValueError:
                ctx = None
            if (
                ctx is not None
                and ctx.get_start_method() != "fork"
                and self.snapshot is None
            ):
                # A spawned worker starts from a fresh interpreter and
                # cannot inherit the parent's scheme object; without a
                # snapshot to open there is nothing to serve from.
                ctx = None
        self._start_method = None if ctx is None else ctx.get_start_method()
        if self.scheme is None and (ctx is None or self._start_method == "fork"):
            # The parent only needs the live scheme when it serves
            # queries itself (local mode) or hands it to workers by
            # fork; snapshot-backed (spawn) pools leave it unloaded —
            # workers open the file themselves and the parent scheme
            # would never serve a chunk.
            from repro.store import load_snapshot

            self.scheme = load_snapshot(self.snapshot)
        elif self.scheme is None:
            # Snapshot-worker pool mode: fail fast on a missing or
            # corrupt file *here*, with the real SnapshotError —
            # otherwise every worker dies in its initializer and the
            # pool respawns it in a silent loop until the chunk timeout.
            from repro.store import read_snapshot

            read_snapshot(self.snapshot, verify=False)
        if self._start_method == "fork":
            # Materialize the packed stores before any fork so workers
            # inherit them instead of each rebuilding their own copy
            # (the distance scheme keeps one store per (scale, cluster)
            # instance; the core.api facades hide theirs behind
            # ``.impl``).  Local mode builds its stores lazily on
            # first use instead.
            self.scheme.decode_partition(())
            inner = getattr(self.scheme, "impl", self.scheme)
            for inst in getattr(inner, "instances", {}).values():
                inst.scheme.decode_partition(())
        if ctx is None:
            self.num_shards = max(1, num_shards)
            self._local = [
                PartitionCache(
                    self.scheme,
                    capacity=cache_capacity,
                    obs=MetricsRegistry(enabled=metrics),
                )
                for _ in range(self.num_shards)
            ]
        else:
            self.num_shards = num_shards
            if self._start_method == "fork":
                # The token-keyed slot stays populated until close():
                # pool worker respawns re-run _worker_init in a fresh
                # fork of the parent and must still find the scheme.
                self._token = next(_SERVICE_TOKENS)
                _WORKER[self._token] = self.scheme
                initializer, initargs = _worker_init, (
                    self._token,
                    cache_capacity,
                    metrics,
                )
            else:
                # Spawn-compatible build/serve split: every worker
                # opens the snapshot itself; the read-only mmap means
                # all workers share one page-cache copy of the stores.
                initializer, initargs = _worker_init_snapshot, (
                    self.snapshot,
                    cache_capacity,
                    metrics,
                )
            self._mp_ctx = ctx
            self._pool_init = (initializer, initargs)
            self._pools = [self._make_pool() for _ in range(num_shards)]
            self._pool_epochs = [0] * num_shards
        self._tally.per_shard = [0] * self.num_shards
        self._inflight = [0] * self.num_shards

    @classmethod
    def from_snapshot(
        cls, path, num_shards: int = 2, mp_context: str = "spawn", **kw
    ) -> "ShardedQueryService":
        """Serve a saved scheme snapshot (build/serve split, no fork).

        Hands each worker the *path*: workers open the same file
        read-only, so N serving processes share one page-cache copy of
        the packed stores.  The parent itself loads the snapshot only
        if it ends up serving queries (the local fallback) — in pool
        mode ``self.scheme`` stays ``None``.  Defaults to the spawn
        context — the configuration fork-less platforms and multi-host
        deployments use.
        """
        return cls(
            None,
            num_shards=num_shards,
            mp_context=mp_context,
            snapshot=str(path),
            **kw,
        )

    @property
    def mode(self) -> str:
        """``"fork"``/``"spawn"``/... (process pools) or ``"local"``."""
        return self._start_method if self._pools is not None else "local"

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, faults: Iterable[int] = (), **kw):
        return self.query_many([(s, t)], faults, **kw)[0]

    def _shard_for(self, key: FaultKey, chunk_size: int) -> int:
        """Shard of one chunk: hash owner, or round-robin for hot keys.

        Traffic shares are tracked per canonical key (only while the
        feature is enabled, and pruned to :data:`_HOT_TRACK_LIMIT` —
        the coldest keys are dropped, never the hot ones); once a key
        crosses ``hot_key_share`` of all queries it is (stickily)
        marked hot and its chunks rotate over every shard — each
        shard's partition cache builds its own replica, so a single
        pathologically hot fault set stops serializing one worker.
        """
        if self.hot_key_share is None or self.num_shards <= 1:
            return shard_of(key, self.num_shards)
        self._total_traffic += chunk_size
        traffic = self._key_traffic.get(key, 0) + chunk_size
        self._key_traffic[key] = traffic
        if len(self._key_traffic) > _HOT_TRACK_LIMIT:
            keep = sorted(
                self._key_traffic.items(), key=lambda kv: kv[1], reverse=True
            )[: _HOT_TRACK_LIMIT // 2]
            self._key_traffic = dict(keep)
        if (
            key not in self._hot_keys
            and self._total_traffic >= self.hot_key_min_queries
            and traffic >= self.hot_key_share * self._total_traffic
        ):
            self._hot_keys.add(key)
        if key in self._hot_keys:
            self._rr = (self._rr + 1) % self.num_shards
            self._tally.replicated_chunks += 1
            return self._rr
        return shard_of(key, self.num_shards)

    def _chunk_started(self, shard: int) -> None:
        with self._inflight_lock:
            self._inflight[shard] += 1

    def _chunk_finished(self, shard: int, meta: Optional[dict]) -> None:
        with self._inflight_lock:
            if self._inflight[shard] > 0:
                self._inflight[shard] -= 1
        if meta is not None:
            self.obs.histogram("shard.worker_seconds").observe(
                meta["worker_s"]
            )

    def queue_depths(self) -> list[int]:
        """Chunks currently in flight, per shard (live queue depth)."""
        with self._inflight_lock:
            return list(self._inflight)

    def query_many(
        self, pairs: Sequence[tuple[int, int]], faults=(), **kw
    ) -> list:
        """Batched queries: coalesce by fault set, shard by its hash.

        Chunks of at most ``max_chunk`` queries per fault set are
        dispatched to ``shard_of(key)``'s worker concurrently (hot keys
        round-robin over all shards — see :meth:`_shard_for`); answers
        return in request order with the scheme's native answer type.
        """
        t0 = time.perf_counter()
        pairs = list(pairs)
        per = normalize_faults(pairs, faults)
        groups = group_by_canonical_key(per)
        results: list = [None] * len(pairs)
        tally = self._tally
        chunk_hist = self.obs.histogram("shard.chunk_size")
        dispatched = []  # (qis, shard, async_result) in pool mode
        for key, qis in groups.items():
            for lo in range(0, len(qis), self.max_chunk):
                chunk = qis[lo : lo + self.max_chunk]
                shard = self._shard_for(key, len(chunk))
                chunk_pairs = [pairs[qi] for qi in chunk]
                tally.chunks += 1
                tally.per_shard[shard] += len(chunk)
                if len(chunk) > tally.max_chunk:
                    tally.max_chunk = len(chunk)
                chunk_hist.observe(len(chunk))
                if self._pools is not None:
                    self._chunk_started(shard)
                    handle = self._pools[shard].apply_async(
                        _worker_query, (chunk_pairs, list(key), kw)
                    )
                    dispatched.append((chunk, shard, handle))
                else:
                    answers = self._local[shard].query_many(
                        chunk_pairs, list(key), **kw
                    )
                    for qi, ans in zip(chunk, answers):
                        results[qi] = ans
        for chunk, shard, handle in dispatched:
            try:
                answers, meta = handle.get(timeout=self.chunk_timeout)
            except BaseException:
                self._chunk_finished(shard, None)
                raise
            self._chunk_finished(shard, meta)
            for qi, ans in zip(chunk, answers):
                results[qi] = ans
        tally.queries += len(pairs)
        tally.busy_s += time.perf_counter() - t0
        return results

    def start_chunk(
        self,
        pairs: Sequence[tuple[int, int]],
        faults: Sequence[int],
        kw: Optional[dict] = None,
        callback: Optional[Callable] = None,
        error_callback: Optional[Callable] = None,
    ) -> int:
        """Dispatch ONE already-coalesced chunk without blocking.

        The asyncio front door (:mod:`repro.server.server`) coalesces
        and chunks requests itself; this is its non-blocking entry
        point.  The chunk is routed like :meth:`query_many` routes it
        (hash owner, or round-robin when the key is hot) and handed to
        the shard's pool via ``apply_async`` — ``callback(answers,
        meta)`` / ``error_callback(exc)`` fire on the pool's
        result-handler thread when the worker finishes (``meta`` is the
        worker-side timing dict of :func:`_worker_query` — the
        ``partition`` span of a request trace).  A SIGKILLed worker never
        completes its chunk, so callers must pair this with their own
        deadline and report the loss via :meth:`restart_shard` (with
        the :meth:`shard_epoch` read at dispatch time), after which
        the next chunk is served by a fresh pool.  In local (no-pool)
        mode the chunk is answered inline and the callback runs before
        returning.

        Returns the shard index the chunk was routed to.
        """
        kw = kw or {}
        key = canonical_fault_key(faults)
        pairs = list(pairs)
        shard = self._shard_for(key, len(pairs))
        tally = self._tally
        tally.chunks += 1
        tally.queries += len(pairs)
        tally.per_shard[shard] += len(pairs)
        if len(pairs) > tally.max_chunk:
            tally.max_chunk = len(pairs)
        self.obs.histogram("shard.chunk_size").observe(len(pairs))
        if self._pools is not None:
            self._chunk_started(shard)

            def _on_ok(res, _shard=shard, _cb=callback):
                answers, meta = res
                self._chunk_finished(_shard, meta)
                if _cb is not None:
                    _cb(answers, meta)

            def _on_err(exc, _shard=shard, _ecb=error_callback):
                self._chunk_finished(_shard, None)
                if _ecb is not None:
                    _ecb(exc)

            self._pools[shard].apply_async(
                _worker_query,
                (pairs, list(key), kw),
                callback=_on_ok,
                error_callback=_on_err,
            )
            return shard
        t0 = time.perf_counter()
        try:
            answers = self._local[shard].query_many(pairs, list(key), **kw)
        except Exception as exc:  # pragma: no cover - scheme-level failure
            if error_callback is not None:
                error_callback(exc)
                return shard
            raise
        if callback is not None:
            callback(
                answers,
                {"worker_s": time.perf_counter() - t0, "pid": os.getpid()},
            )
        return shard

    def worker_pids(self) -> list[int]:
        """Live worker process ids, one per shard (empty in local mode).

        The chaos tests SIGKILL entries of this list; once the loss is
        detected (:meth:`restart_shard`) the shard gets a whole new
        pool, so calling this again returns the replacements.
        """
        if self._pools is None:
            return []
        return [proc.pid for pool in self._pools for proc in pool._pool]

    def _make_pool(self):
        initializer, initargs = self._pool_init
        return self._mp_ctx.Pool(
            processes=1, initializer=initializer, initargs=initargs
        )

    def shard_epoch(self, shard: int) -> int:
        """Generation counter of a shard's pool (see :meth:`restart_shard`)."""
        return 0 if self._pools is None else self._pool_epochs[shard]

    def restart_shard(self, shard: int, epoch: Optional[int] = None) -> bool:
        """Replace one shard's pool wholesale after a presumed-lost worker.

        ``multiprocessing.Pool`` does respawn a worker that died
        mid-task, but a worker SIGKILLed while *idle* dies holding the
        task queue's reader semaphore and the pool is wedged for good —
        no respawn can read tasks again.  Healing therefore never
        trusts the old pool: the shard gets a brand-new pool (fresh
        queues, fresh locks, initializer re-run) and the old one is
        reaped in the background with SIGKILL escalation.

        ``epoch`` (from :meth:`shard_epoch`, read at dispatch time)
        makes concurrent failure reports idempotent: only the first
        report of a given pool generation restarts it; the rest were
        in flight on the pool that is already being replaced.  Returns
        whether a restart actually happened.
        """
        if self._pools is None:
            return False
        if epoch is not None and epoch != self._pool_epochs[shard]:
            return False
        old = self._pools[shard]
        self._pools[shard] = self._make_pool()
        self._pool_epochs[shard] += 1
        self._tally.pool_restarts += 1
        self.obs.counter("shard.pool_restarts").inc()
        with self._inflight_lock:
            # everything in flight on the old pool is lost with it
            self._inflight[shard] = 0
        _reap_pool_async(old)
        return True

    # ------------------------------------------------------------------
    # Buffered singles: size- and deadline-bounded flushing
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of buffered, not yet dispatched :meth:`submit` queries."""
        return sum(len(b.pairs) for b in self._buffers.values())

    def submit(self, s: int, t: int, faults: Iterable[int] = (), **kw) -> Ticket:
        """Buffer one query; returns a :class:`Ticket`.

        The query's buffer dispatches the moment it holds ``max_chunk``
        queries; independently, every submit checks all buffers against
        ``flush_delay`` (when set) so no query waits longer than the
        deadline while traffic keeps arriving.  Call :meth:`flush` (or
        :meth:`flush_due` from a timer loop) to drain the tail.
        """
        key = canonical_fault_key(faults)
        bkey = (key, tuple(sorted(kw.items())))
        buf = self._buffers.get(bkey)
        if buf is None:
            buf = self._buffers[bkey] = _Buffer(
                faults=list(key), kw=kw, born=self.clock()
            )
        ticket = Ticket()
        buf.pairs.append((s, t))
        buf.tickets.append(ticket)
        if len(buf.pairs) >= self.max_chunk:
            del self._buffers[bkey]
            self._dispatch_buffer(buf)
        if self.flush_delay is not None:
            self.flush_due()
        return ticket

    def flush_due(self, now: Optional[float] = None) -> int:
        """Dispatch every buffer older than ``flush_delay``; returns the
        query count served.  No-op when no deadline is configured."""
        if self.flush_delay is None:
            return 0
        now = self.clock() if now is None else now
        served = 0
        for bkey in list(self._buffers):
            buf = self._buffers[bkey]
            if now - buf.born < self.flush_delay:
                continue
            del self._buffers[bkey]
            served += len(buf.pairs)
            self._tally.deadline_flushes += 1
            self._dispatch_buffer(buf)
        return served

    def flush(self) -> int:
        """Dispatch every pending buffer; returns the query count served."""
        served = 0
        while self._buffers:
            _bkey, buf = self._buffers.popitem(last=False)
            served += len(buf.pairs)
            self._dispatch_buffer(buf)
        return served

    def _dispatch_buffer(self, buf: _Buffer) -> None:
        answers = self.query_many(buf.pairs, buf.faults, **buf.kw)
        for ticket, ans in zip(buf.tickets, answers):
            ticket._fill(ans)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def _worker_sweep(self) -> list[tuple]:
        """One ``(hits, misses, evictions, entries, obs_wire)`` per shard.

        Pool mode round-trips every worker (blocking); local mode reads
        the in-process caches directly.
        """
        if self._pools is not None:
            return [pool.apply(_worker_cache_stats) for pool in self._pools]
        sweep = []
        for cache in self._local:
            wire = cache.obs.to_wire() if cache.obs is not None else None
            sweep.append(
                (
                    cache.stats.hits,
                    cache.stats.misses,
                    cache.stats.evictions,
                    len(cache),
                    wire,
                )
            )
        return sweep

    def stats(self, _sweep: Optional[list] = None) -> ServiceStats:
        """Aggregate parent counters with the workers' cache counters."""
        sweep = self._worker_sweep() if _sweep is None else _sweep
        hits = misses = evictions = entries = 0
        per_shard_cache = []
        for h, m, e, live, _wire in sweep:
            hits += h
            misses += m
            evictions += e
            entries += live
            per_shard_cache.append(
                {
                    "hits": h,
                    "misses": m,
                    "evictions": e,
                    "entries": live,
                    "hit_rate": round(h / (h + m), 4) if h + m else 0.0,
                }
            )
        t = self._tally
        return ServiceStats(
            queries=t.queries,
            chunks=t.chunks,
            busy_s=t.busy_s,
            per_shard=tuple(t.per_shard),
            cache_hits=hits,
            cache_misses=misses,
            cache_evictions=evictions,
            cache_entries=entries,
            mode=self.mode,
            max_chunk_seen=t.max_chunk,
            hot_keys=len(self._hot_keys),
            replicated_chunks=t.replicated_chunks,
            deadline_flushes=t.deadline_flushes,
            pool_restarts=t.pool_restarts,
            queue_depth=tuple(self.queue_depths()),
            per_shard_cache=tuple(per_shard_cache),
        )

    def _registry_from_sweep(self, sweep: list) -> dict:
        """Uniform registry dump: parent metrics, exact-merged worker
        histograms, and per-shard gauges (queue depth, cache hit rate)."""
        merged = MetricsRegistry(enabled=self.metrics_enabled)
        if not self.metrics_enabled:
            return merged.to_wire()
        merged.merge_wire(self.obs.to_wire())
        t = self._tally
        merged.counter("service.queries").inc(t.queries)
        merged.counter("service.chunks").inc(t.chunks)
        merged.counter("service.pool_restarts").inc(t.pool_restarts)
        merged.counter("service.replicated_chunks").inc(t.replicated_chunks)
        merged.counter("service.deadline_flushes").inc(t.deadline_flushes)
        merged.gauge("service.hot_keys").set(len(self._hot_keys))
        depths = self.queue_depths()
        for shard, (h, m, e, live, wire) in enumerate(sweep):
            if wire:
                merged.merge_wire(wire)
            merged.counter(f"shard.{shard}.cache_hits").inc(h)
            merged.counter(f"shard.{shard}.cache_misses").inc(m)
            merged.counter(f"shard.{shard}.cache_evictions").inc(e)
            merged.gauge(f"shard.{shard}.cache_entries").set(live)
            merged.gauge(f"shard.{shard}.cache_hit_rate").set(
                h / (h + m) if h + m else 0.0
            )
            merged.gauge(f"shard.{shard}.queue_depth").set(depths[shard])
            merged.counter(f"shard.{shard}.queries").inc(t.per_shard[shard])
        return merged.to_wire()

    def registry_dump(self) -> dict:
        """The service's metrics as one mergeable wire dict."""
        return self._registry_from_sweep(self._worker_sweep())

    def stats_bundle(self) -> tuple[ServiceStats, dict]:
        """``(stats(), registry_dump())`` off one worker round trip."""
        sweep = self._worker_sweep()
        return self.stats(_sweep=sweep), self._registry_from_sweep(sweep)

    def close(self) -> None:
        """Flush pending submits, then reap the pools (idempotent).

        Each pool gets :func:`_reap_pool`'s bounded shutdown — a clean
        terminate+join normally, SIGKILL escalation when a chaos event
        left the pool's queue locks poisoned — so ``close()`` returns
        in bounded time with every worker process dead either way.
        """
        if self._buffers:
            self.flush()
        if self._pools is not None:
            pools, self._pools = self._pools, None
            for pool in pools:
                _reap_pool(pool)
        if self._token is not None:
            _WORKER.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
