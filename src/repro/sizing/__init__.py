"""Bit-size accounting for labels, tables and headers."""

from repro.sizing.bits import (
    bits_for_count,
    bits_for_id,
    bits_for_weight_scales,
    BitWriter,
    BitReader,
)

__all__ = [
    "bits_for_count",
    "bits_for_id",
    "bits_for_weight_scales",
    "BitWriter",
    "BitReader",
]
