"""Bit accounting and a small bit-level codec.

Every label/table/header type in the package reports its size in bits
through a ``bit_length()`` method; the helpers here centralize the field
width computations so the accounting matches the encodings.  The
:class:`BitWriter`/:class:`BitReader` pair provides real (not just
counted) serialization for the label payloads exercised in tests, which
keeps the reported sizes honest.
"""

from __future__ import annotations

import math


def bits_for_count(x: int) -> int:
    """Bits to store a value in ``0..x`` (at least 1)."""
    return max(1, math.ceil(math.log2(x + 1))) if x > 0 else 1


def bits_for_id(n: int) -> int:
    """Bits for a vertex id in an n-vertex graph."""
    return bits_for_count(max(0, n - 1))


def bits_for_weight_scales(n: int, max_weight: float) -> int:
    """Number of distance scales K = ceil(log2(n * W)) of Section 4."""
    return max(1, math.ceil(math.log2(max(2.0, n * max(1.0, max_weight)))))


class BitWriter:
    """Append-only bit buffer (MSB-first within each field)."""

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> "BitWriter":
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width
        return self

    @property
    def bit_length(self) -> int:
        return self._bits

    def to_bytes(self) -> bytes:
        nbytes = (self._bits + 7) // 8
        return (self._value << (nbytes * 8 - self._bits)).to_bytes(max(nbytes, 1), "big")

    def to_int(self) -> int:
        return self._value


class BitReader:
    """Sequential reader matching :class:`BitWriter` field order."""

    def __init__(self, data: bytes, total_bits: int):
        self._value = int.from_bytes(data, "big") >> (len(data) * 8 - total_bits)
        self._remaining = total_bits

    @classmethod
    def from_int(cls, value: int, total_bits: int) -> "BitReader":
        reader = cls.__new__(cls)
        reader._value = value
        reader._remaining = total_bits
        return reader

    def read(self, width: int) -> int:
        if width > self._remaining:
            raise ValueError("read past end of bit buffer")
        self._remaining -= width
        out = (self._value >> self._remaining) & ((1 << width) - 1)
        return out

    @property
    def remaining(self) -> int:
        return self._remaining
