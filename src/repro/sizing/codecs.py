"""Byte-level codecs for the core label types.

The schemes' ``bit_length()`` methods *count* bits from field layouts;
these codecs actually *serialize* the labels, which keeps the counting
honest (tests assert the encoded size matches the counted size) and
makes the labels transportable — e.g. a monitoring service shipping
labels over the wire, as in ``examples/overlay_connectivity.py``.

Codecs cover the label types whose layouts are fully self-describing
given scheme-level constants (n, b, f): ancestry labels, cycle-space
vertex/edge labels.  Sketch labels serialize their EID + flags; the
numpy sketch payloads are serialized as raw little-endian words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cycle_space_scheme import CSEdgeLabel, CSVertexLabel
from repro.graph.ancestry import AncLabel
from repro.sizing.bits import BitReader, BitWriter, bits_for_count


@dataclass(frozen=True)
class CodecParams:
    """Scheme-level constants a decoder is assumed to know."""

    n: int
    b: int = 0
    max_components: int = 0

    @property
    def time_bits(self) -> int:
        return bits_for_count(2 * self.n + 1)

    @property
    def comp_bits(self) -> int:
        return bits_for_count(max(self.max_components, 1))


# ----------------------------------------------------------------------
# Ancestry labels
# ----------------------------------------------------------------------
def encode_ancestry(label: AncLabel, params: CodecParams) -> bytes:
    writer = BitWriter()
    writer.write(label[0], params.time_bits)
    writer.write(label[1], params.time_bits)
    return writer.to_bytes()


def decode_ancestry(data: bytes, params: CodecParams) -> AncLabel:
    reader = BitReader(data, 2 * params.time_bits)
    return (reader.read(params.time_bits), reader.read(params.time_bits))


def ancestry_bits(params: CodecParams) -> int:
    return 2 * params.time_bits


# ----------------------------------------------------------------------
# Cycle-space labels (Section 3.1)
# ----------------------------------------------------------------------
def encode_cs_vertex(label: CSVertexLabel, params: CodecParams) -> bytes:
    writer = BitWriter()
    writer.write(label.component, params.comp_bits)
    writer.write(label.anc[0], params.time_bits)
    writer.write(label.anc[1], params.time_bits)
    return writer.to_bytes()


def decode_cs_vertex(data: bytes, params: CodecParams) -> CSVertexLabel:
    total = params.comp_bits + 2 * params.time_bits
    reader = BitReader(data, total)
    component = reader.read(params.comp_bits)
    anc = (reader.read(params.time_bits), reader.read(params.time_bits))
    return CSVertexLabel(component=component, anc=anc, n=params.n)


def cs_vertex_bits(params: CodecParams) -> int:
    return params.comp_bits + 2 * params.time_bits


def encode_cs_edge(label: CSEdgeLabel, params: CodecParams) -> bytes:
    if label.b != params.b:
        raise ValueError("label width does not match codec parameters")
    writer = BitWriter()
    writer.write(label.component, params.comp_bits)
    writer.write(label.phi, params.b)
    for anc in (label.anc_u, label.anc_v):
        writer.write(anc[0], params.time_bits)
        writer.write(anc[1], params.time_bits)
    writer.write(1 if label.is_tree else 0, 1)
    return writer.to_bytes()


def decode_cs_edge(data: bytes, params: CodecParams) -> CSEdgeLabel:
    total = params.comp_bits + params.b + 4 * params.time_bits + 1
    reader = BitReader(data, total)
    component = reader.read(params.comp_bits)
    phi = reader.read(params.b)
    anc_u = (reader.read(params.time_bits), reader.read(params.time_bits))
    anc_v = (reader.read(params.time_bits), reader.read(params.time_bits))
    is_tree = bool(reader.read(1))
    return CSEdgeLabel(
        component=component,
        phi=phi,
        b=params.b,
        anc_u=anc_u,
        anc_v=anc_v,
        is_tree=is_tree,
        n=params.n,
    )


def cs_edge_bits(params: CodecParams) -> int:
    return params.comp_bits + params.b + 4 * params.time_bits + 1


# ----------------------------------------------------------------------
# Sketch payloads (numpy word arrays)
# ----------------------------------------------------------------------
def encode_sketch_array(sketch: np.ndarray) -> bytes:
    """Serialize a sketch (uint64 array) as little-endian words."""
    return sketch.astype("<u8").tobytes()


def decode_sketch_array(data: bytes, shape: tuple[int, ...]) -> np.ndarray:
    arr = np.frombuffer(data, dtype="<u8").astype(np.uint64)
    return arr.reshape(shape)
