"""Structured size reports for schemes and routers.

Benches and examples repeatedly need the same questions answered —
"how big are the labels / tables, in total and per vertex, and how are
they distributed?" — so this module centralizes them into a
:class:`SizeReport` with percentile summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class SizeReport:
    """Distribution summary of per-item bit sizes."""

    name: str
    sizes: tuple[int, ...]

    @classmethod
    def from_items(
        cls, name: str, items: Sequence, bits_of: Callable[[object], int]
    ) -> "SizeReport":
        return cls(name=name, sizes=tuple(sorted(bits_of(x) for x in items)))

    @property
    def count(self) -> int:
        return len(self.sizes)

    @property
    def total_bits(self) -> int:
        return sum(self.sizes)

    @property
    def max_bits(self) -> int:
        return self.sizes[-1] if self.sizes else 0

    @property
    def min_bits(self) -> int:
        return self.sizes[0] if self.sizes else 0

    @property
    def mean_bits(self) -> float:
        return self.total_bits / self.count if self.sizes else 0.0

    def percentile(self, q: float) -> int:
        """q-th percentile (q in [0, 100]) of the size distribution."""
        if not self.sizes:
            return 0
        if not (0.0 <= q <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        idx = min(len(self.sizes) - 1, int(math.ceil(q / 100.0 * len(self.sizes))) - 1)
        return self.sizes[max(idx, 0)]

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.sizes:
            return f"{self.name}: empty"
        return (
            f"{self.name}: n={self.count} total={self.total_bits}b "
            f"mean={self.mean_bits:.0f}b p50={self.percentile(50)}b "
            f"p95={self.percentile(95)}b max={self.max_bits}b"
        )


def connectivity_report(scheme) -> dict[str, SizeReport]:
    """Vertex/edge label size reports for a connectivity scheme."""
    graph = scheme.graph
    return {
        "vertex_labels": SizeReport.from_items(
            "vertex labels",
            list(graph.vertices()),
            lambda v: scheme.vertex_label(v).bit_length(),
        ),
        "edge_labels": SizeReport.from_items(
            "edge labels",
            [e.index for e in graph.edges],
            lambda ei: scheme.edge_label(ei).bit_length(),
        ),
    }


def router_report(router) -> dict[str, SizeReport]:
    """Table/label size reports for a FaultTolerantRouter."""
    graph = router.graph
    return {
        "tables": SizeReport.from_items(
            "routing tables",
            list(graph.vertices()),
            lambda v: router.table_bits(v),
        ),
        "labels": SizeReport.from_items(
            "routing labels",
            list(graph.vertices()),
            lambda v: router.routing_label(v).bit_length(),
        ),
    }
