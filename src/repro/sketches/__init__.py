"""Linear graph sketches [AGM12] and their ingredients.

* :mod:`repro.sketches.hashing` — pairwise-independent hash families
  (Definition A.1 / Fact A.2) determined by a short seed ``S_h``.
* :mod:`repro.sketches.edge_ids` — unique edge identifiers (Lemma 3.8)
  and the extended edge identifier codec (Equations (1) and (5)).
* :mod:`repro.sketches.sketch` — per-vertex XOR sketches, subtree
  aggregation, and single-edge extraction (Lemmas 3.9/3.10/3.13).
"""

from repro.sketches.hashing import PairwiseHashFamily
from repro.sketches.edge_ids import DecodedEid, EidCodec, ExtendedEdgeIds, UidScheme
from repro.sketches.sketch import SketchDims, VertexSketches, eid_to_words, words_to_eid

__all__ = [
    "PairwiseHashFamily",
    "DecodedEid",
    "EidCodec",
    "ExtendedEdgeIds",
    "UidScheme",
    "SketchDims",
    "VertexSketches",
    "eid_to_words",
    "words_to_eid",
]
