"""Unique and extended edge identifiers (Lemma 3.8, Equations (1)/(5)).

The sketch-based scheme XORs edge identifiers together and must be able
to tell "a single edge id" from "the XOR of two or more ids".  Lemma 3.8
achieves this with an ε-bias collection [NN93]; here the collection is
realized by a keyed BLAKE2b PRF truncated to ``uid_bits`` bits (see the
substitution note in DESIGN.md): given the seed ``S_ID`` and the two
endpoint ids, anyone can recompute ``UID(e)`` in O(1), and the XOR of
two or more UIDs equals the UID of the decoded endpoint pair with
probability ``2^-uid_bits`` per test — matching the ``<= 1/n^10``
guarantee of Lemma 3.8 at every scale we run.

The *extended* identifier ``EID_T(e)`` packs, at fixed per-instance
field widths::

    [UID(e), ID(u), ID(v), ANC_T(u), ANC_T(v)]                (Eq. 1)
    [... , port(u,v), port(v,u), L_T(u), L_T(v)]               (Eq. 5)

so that identifiers can be XOR-combined word-wise and any validated
XOR directly hands the decoder the routing information it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro._util import prf_int
from repro.graph.ancestry import AncLabel
from repro.graph.graph import Graph
from repro.sizing.bits import bits_for_count, bits_for_id


class UidScheme:
    """Seeded unique edge identifiers (the ``S_ID`` seed of Lemma 3.8)."""

    #: seed size in bits, counted as the paper's O(log^2 n)-bit S_ID.
    SEED_BITS = 128

    def __init__(self, seed: int, uid_bits: int = 64):
        self.seed = seed
        self.uid_bits = uid_bits

    def uid(self, u: int, v: int) -> int:
        """UID of the edge {u, v} (order-insensitive)."""
        a, b = (u, v) if u < v else (v, u)
        return prf_int(self.seed, "uid", a, b, bits=self.uid_bits)

    def matches(self, candidate_uid: int, u: int, v: int) -> bool:
        """Validity test of Lemma 3.10: does the uid belong to {u, v}?"""
        return candidate_uid == self.uid(u, v)


class EidCodec:
    """Fixed-width bit packer for extended edge identifiers.

    Fields are packed most-significant-first in the given order; the
    total width is the per-instance EID length (``O(log n)`` bits for
    connectivity, Eq. (1); larger for routing, Eq. (5), where the two
    embedded tree-routing labels dominate).
    """

    def __init__(self, fields: Sequence[tuple[str, int]]):
        self.fields = list(fields)
        self.total_bits = sum(w for _, w in fields)
        offsets = {}
        pos = self.total_bits
        for name, width in fields:
            pos -= width
            offsets[name] = (pos, width)
        self._offsets = offsets

    def pack(self, values: dict[str, int]) -> int:
        out = 0
        for name, width in self.fields:
            value = values[name]
            if value < 0 or value >= (1 << width):
                raise ValueError(f"field {name}={value} does not fit in {width} bits")
            out = (out << width) | value
        return out

    def unpack(self, eid: int) -> dict[str, int]:
        return {
            name: (eid >> pos) & ((1 << width) - 1)
            for name, (pos, width) in self._offsets.items()
        }


@dataclass(frozen=True)
class DecodedEid:
    """A validated single-edge identifier, with all Eq. (1)/(5) fields."""

    u: int
    v: int
    anc_u: AncLabel
    anc_v: AncLabel
    port_u: Optional[int] = None  # port at u of the edge (u, v)
    port_v: Optional[int] = None  # port at v of the edge (v, u)
    tlabel_u: Optional[int] = None  # encoded tree-routing label of u
    tlabel_v: Optional[int] = None  # encoded tree-routing label of v
    raw: int = 0  # the packed EID this record was decoded from

    def endpoint_info(self, x: int) -> tuple[AncLabel, Optional[int], Optional[int]]:
        """(ancestry label, outgoing port, tree label) for endpoint ``x``."""
        if x == self.u:
            return self.anc_u, self.port_u, self.tlabel_u
        if x == self.v:
            return self.anc_v, self.port_v, self.tlabel_v
        raise ValueError(f"{x} is not an endpoint")


class ExtendedEdgeIds:
    """Extended edge identifiers for one labeling instance.

    ``routing_fields`` switches between the Eq. (1) layout and the
    Eq. (5) layout.  Tree labels are supplied pre-encoded as integers of
    at most ``tlabel_bits`` bits by the caller (see
    ``repro.trees.tree_routing.TreeRoutingScheme.encoded_label``).
    """

    def __init__(
        self,
        graph: Graph,
        uid_scheme: UidScheme,
        anc_of: Callable[[int], AncLabel],
        port_bits: int = 0,
        tlabel_bits: int = 0,
        tlabel_of: Optional[Callable[[int], int]] = None,
        id_of: Optional[Callable[[int], int]] = None,
        id_space: Optional[int] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
    ):
        """``id_of``/``id_space``/``port_fn`` translate the instance's
        local vertices into globally meaningful ids and ports, so that
        identifiers extracted from sketches are directly routable even
        when the labeling instance lives on a tree-cover cluster."""
        self.graph = graph
        self.uid_scheme = uid_scheme
        self._anc_of = anc_of
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self.id_space = id_space if id_space is not None else graph.n
        self._port_fn = port_fn if port_fn is not None else graph.port_of
        n = graph.n
        time_bits = bits_for_count(2 * n + 1)
        id_bits = bits_for_id(max(self.id_space, 2))
        fields: list[tuple[str, int]] = [
            ("uid", uid_scheme.uid_bits),
            ("id_u", id_bits),
            ("id_v", id_bits),
            ("tin_u", time_bits),
            ("tout_u", time_bits),
            ("tin_v", time_bits),
            ("tout_v", time_bits),
        ]
        self.routing = port_bits > 0
        self.port_bits = port_bits
        self.tlabel_bits = tlabel_bits
        self._tlabel_of = tlabel_of
        if self.routing:
            fields.append(("port_u", port_bits))
            fields.append(("port_v", port_bits))
            fields.append(("tl_u", tlabel_bits))
            fields.append(("tl_v", tlabel_bits))
        self.codec = EidCodec(fields)

    def eid(self, edge_index: int) -> int:
        """The packed extended identifier of an edge."""
        e = self.graph.edge(edge_index)
        anc_u = self._anc_of(e.u)
        anc_v = self._anc_of(e.v)
        gu, gv = self._id_of(e.u), self._id_of(e.v)
        values = {
            "uid": self.uid_scheme.uid(gu, gv),
            "id_u": gu,
            "id_v": gv,
            "tin_u": anc_u[0],
            "tout_u": anc_u[1],
            "tin_v": anc_v[0],
            "tout_v": anc_v[1],
        }
        if self.routing:
            values["port_u"] = self._port_fn(e.u, e.v)
            values["port_v"] = self._port_fn(e.v, e.u)
            assert self._tlabel_of is not None
            values["tl_u"] = self._tlabel_of(e.u)
            values["tl_v"] = self._tlabel_of(e.v)
        return self.codec.pack(values)

    def try_decode(self, candidate: int) -> Optional[DecodedEid]:
        """Lemma 3.10: decide whether ``candidate`` is a single-edge EID.

        Returns the decoded fields when the UID validates against the
        decoded endpoint ids (w.h.p. exactly the single-edge case), else
        ``None``.
        """
        if candidate == 0:
            return None
        fields = self.codec.unpack(candidate)
        u, v = fields["id_u"], fields["id_v"]
        if u >= self.id_space or v >= self.id_space or u == v:
            return None
        if not self.uid_scheme.matches(fields["uid"], u, v):
            return None
        return DecodedEid(
            u=u,
            v=v,
            anc_u=(fields["tin_u"], fields["tout_u"]),
            anc_v=(fields["tin_v"], fields["tout_v"]),
            port_u=fields.get("port_u"),
            port_v=fields.get("port_v"),
            tlabel_u=fields.get("tl_u"),
            tlabel_v=fields.get("tl_v"),
            raw=candidate,
        )

    @property
    def total_bits(self) -> int:
        return self.codec.total_bits
