"""Unique and extended edge identifiers (Lemma 3.8, Equations (1)/(5)).

The sketch-based scheme XORs edge identifiers together and must be able
to tell "a single edge id" from "the XOR of two or more ids".  Lemma 3.8
achieves this with an ε-bias collection [NN93]; here the collection is
realized by a keyed BLAKE2b PRF truncated to ``uid_bits`` bits (a
standard substitution: any ε-bias family works; the PRF keeps labels
short and recomputable from the seed): given the seed ``S_ID`` and the two
endpoint ids, anyone can recompute ``UID(e)`` in O(1), and the XOR of
two or more UIDs equals the UID of the decoded endpoint pair with
probability ``2^-uid_bits`` per test — matching the ``<= 1/n^10``
guarantee of Lemma 3.8 at every scale we run.

The *extended* identifier ``EID_T(e)`` packs, at fixed per-instance
field widths::

    [UID(e), ID(u), ID(v), ANC_T(u), ANC_T(v)]                (Eq. 1)
    [... , port(u,v), port(v,u), L_T(u), L_T(v)]               (Eq. 5)

so that identifiers can be XOR-combined word-wise and any validated
XOR directly hands the decoder the routing information it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro._util import prf_int, prf_int_pairs
from repro.graph.ancestry import AncLabel
from repro.graph.graph import Graph
from repro.sizing.bits import bits_for_count, bits_for_id


class UidScheme:
    """Seeded unique edge identifiers (the ``S_ID`` seed of Lemma 3.8)."""

    #: seed size in bits, counted as the paper's O(log^2 n)-bit S_ID.
    SEED_BITS = 128

    def __init__(self, seed: int, uid_bits: int = 64):
        self.seed = seed
        self.uid_bits = uid_bits
        self._frame_cache: dict[int, bytes] = {}

    def uid(self, u: int, v: int) -> int:
        """UID of the edge {u, v} (order-insensitive)."""
        a, b = (u, v) if u < v else (v, u)
        return prf_int(self.seed, "uid", a, b, bits=self.uid_bits)

    def uid_batch(self, pairs: Iterable[tuple[int, int]]) -> list[int]:
        """UIDs of many edges in one pass, bit-identical to :meth:`uid`.

        Delegates to :func:`repro._util.prf_int_pairs`, which hoists the
        PRF key and salt framing out of the per-edge loop — the per-edge
        BLAKE2b hash is the only remaining work.
        """
        ordered = ((u, v) if u < v else (v, u) for u, v in pairs)
        return prf_int_pairs(
            self.seed,
            "uid",
            ordered,
            bits=self.uid_bits,
            frame_cache=self._frame_cache,
        )

    def matches(self, candidate_uid: int, u: int, v: int) -> bool:
        """Validity test of Lemma 3.10: does the uid belong to {u, v}?"""
        return candidate_uid == self.uid(u, v)


class EidCodec:
    """Fixed-width bit packer for extended edge identifiers.

    Fields are packed most-significant-first in the given order; the
    total width is the per-instance EID length (``O(log n)`` bits for
    connectivity, Eq. (1); larger for routing, Eq. (5), where the two
    embedded tree-routing labels dominate).
    """

    def __init__(self, fields: Sequence[tuple[str, int]]):
        self.fields = list(fields)
        self.total_bits = sum(w for _, w in fields)
        offsets = {}
        pos = self.total_bits
        for name, width in fields:
            pos -= width
            offsets[name] = (pos, width)
        self._offsets = offsets

    def pack(self, values: dict[str, int]) -> int:
        out = 0
        for name, width in self.fields:
            value = values[name]
            if value < 0 or value >= (1 << width):
                raise ValueError(f"field {name}={value} does not fit in {width} bits")
            out = (out << width) | value
        return out

    def unpack(self, eid: int) -> dict[str, int]:
        return {
            name: (eid >> pos) & ((1 << width) - 1)
            for name, (pos, width) in self._offsets.items()
        }

    @property
    def word_count(self) -> int:
        """Number of 64-bit words of the big-endian word layout."""
        return max(1, (self.total_bits + 63) // 64)

    def unpack_words_batch(
        self, words: "np.ndarray", fields: Optional[Sequence[str]] = None
    ) -> dict[str, "np.ndarray"]:
        """Field columns of a ``(N, word_count)`` uint64 word matrix.

        Inverse of :meth:`pack_words_batch` (same <= 64-bit-per-field
        restriction): ``out[name][i]`` equals ``unpack(eid_i)[name]``
        for every row.  This is the decoder-side half of the packed
        label store — candidate words coming out of sketch cells are
        field-sliced in bulk instead of through per-int ``unpack``.
        ``fields`` restricts the slicing to the named columns (the
        validator only needs ``uid``/``id_u``/``id_v``).
        """
        import numpy as np

        n_words = words.shape[1]
        out: dict[str, np.ndarray] = {}
        for name, (pos, width) in self._offsets.items():
            if fields is not None and name not in fields:
                continue
            if width > 64:
                raise ValueError(f"field {name} wider than a word")
            if width == 0:
                out[name] = np.zeros(words.shape[0], dtype=np.uint64)
                continue
            lo = pos % 64
            wi = n_words - 1 - pos // 64
            vals = words[:, wi] >> np.uint64(lo) if lo else words[:, wi].copy()
            if lo and lo + width > 64:
                vals |= words[:, wi - 1] << np.uint64(64 - lo)
            if width < 64:
                vals &= np.uint64((1 << width) - 1)
            out[name] = vals
        return out

    def pack_words_batch(self, columns: dict[str, "np.ndarray"]) -> "np.ndarray":
        """Pack a batch of EIDs straight into big-endian uint64 words.

        ``columns[name]`` is a uint64 array of field values (each field
        must fit 64 bits, which holds for every Eq. (1)/(5) field except
        oversized routing tree labels — callers fall back to
        :meth:`pack` in that case).  Returns ``(E, word_count)``,
        bit-identical to ``eid_to_words(pack(...), word_count)``.
        """
        import numpy as np

        n_words = self.word_count
        some = next(iter(columns.values()))
        out = np.zeros((some.shape[0], n_words), dtype=np.uint64)
        for name, (pos, width) in self._offsets.items():
            if width > 64:
                raise ValueError(f"field {name} wider than a word")
            vals = columns[name].astype(np.uint64)
            if width < 64 and np.any(vals >> np.uint64(width)):
                bad = int(vals[np.argmax(vals >> np.uint64(width) != 0)])
                raise ValueError(f"field {name}={bad} does not fit in {width} bits")
            if width == 0:
                continue
            lo = pos % 64
            wi = n_words - 1 - pos // 64
            out[:, wi] |= (vals << np.uint64(lo)) if lo else vals
            if lo and lo + width > 64:
                out[:, wi - 1] |= vals >> np.uint64(64 - lo)
        return out


@dataclass(frozen=True)
class DecodedEid:
    """A validated single-edge identifier, with all Eq. (1)/(5) fields."""

    u: int
    v: int
    anc_u: AncLabel
    anc_v: AncLabel
    port_u: Optional[int] = None  # port at u of the edge (u, v)
    port_v: Optional[int] = None  # port at v of the edge (v, u)
    tlabel_u: Optional[int] = None  # encoded tree-routing label of u
    tlabel_v: Optional[int] = None  # encoded tree-routing label of v
    raw: int = 0  # the packed EID this record was decoded from

    def endpoint_info(self, x: int) -> tuple[AncLabel, Optional[int], Optional[int]]:
        """(ancestry label, outgoing port, tree label) for endpoint ``x``."""
        if x == self.u:
            return self.anc_u, self.port_u, self.tlabel_u
        if x == self.v:
            return self.anc_v, self.port_v, self.tlabel_v
        raise ValueError(f"{x} is not an endpoint")


class ExtendedEdgeIds:
    """Extended edge identifiers for one labeling instance.

    ``routing_fields`` switches between the Eq. (1) layout and the
    Eq. (5) layout.  Tree labels are supplied pre-encoded as integers of
    at most ``tlabel_bits`` bits by the caller (see
    ``repro.trees.tree_routing.TreeRoutingScheme.encoded_label``).
    """

    def __init__(
        self,
        graph: Graph,
        uid_scheme: UidScheme,
        anc_of: Callable[[int], AncLabel],
        port_bits: int = 0,
        tlabel_bits: int = 0,
        tlabel_of: Optional[Callable[[int], int]] = None,
        id_of: Optional[Callable[[int], int]] = None,
        id_space: Optional[int] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
        anc_arrays: Optional[tuple] = None,
    ):
        """``id_of``/``id_space``/``port_fn`` translate the instance's
        local vertices into globally meaningful ids and ports, so that
        identifiers extracted from sketches are directly routable even
        when the labeling instance lives on a tree-cover cluster.

        ``anc_arrays`` optionally supplies the full-n ``(tin, tout)``
        DFS-interval arrays (``repro.graph.ancestry.stitched_intervals``)
        so batch packing gathers timestamps with two numpy indexes
        instead of one ``anc_of`` call per touched vertex; values must
        agree with ``anc_of`` on every spanned vertex."""
        self.graph = graph
        self.uid_scheme = uid_scheme
        self._anc_of = anc_of
        self._anc_arrays = anc_arrays
        self._identity_ids = id_of is None
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self.id_space = id_space if id_space is not None else graph.n
        self._port_fn = port_fn if port_fn is not None else graph.port_of
        n = graph.n
        time_bits = bits_for_count(2 * n + 1)
        id_bits = bits_for_id(max(self.id_space, 2))
        fields: list[tuple[str, int]] = [
            ("uid", uid_scheme.uid_bits),
            ("id_u", id_bits),
            ("id_v", id_bits),
            ("tin_u", time_bits),
            ("tout_u", time_bits),
            ("tin_v", time_bits),
            ("tout_v", time_bits),
        ]
        self.routing = port_bits > 0
        self.port_bits = port_bits
        self.tlabel_bits = tlabel_bits
        self._tlabel_of = tlabel_of
        if self.routing:
            fields.append(("port_u", port_bits))
            fields.append(("port_v", port_bits))
            fields.append(("tl_u", tlabel_bits))
            fields.append(("tl_v", tlabel_bits))
        self.codec = EidCodec(fields)

    def _field_values(
        self,
        e,
        uid: int,
        ids: Callable[[int], int],
        ancs: Callable[[int], AncLabel],
        tlabels: Optional[Callable[[int], int]],
    ) -> dict[str, int]:
        """The Eq. (1)/(5) field dict of one edge — the single owner of
        the field list shared by :meth:`eid` and :meth:`eid_batch` (the
        per-vertex accessors let batch callers pass cached lookups)."""
        anc_u = ancs(e.u)
        anc_v = ancs(e.v)
        values = {
            "uid": uid,
            "id_u": ids(e.u),
            "id_v": ids(e.v),
            "tin_u": anc_u[0],
            "tout_u": anc_u[1],
            "tin_v": anc_v[0],
            "tout_v": anc_v[1],
        }
        if self.routing:
            values["port_u"] = self._port_fn(e.u, e.v)
            values["port_v"] = self._port_fn(e.v, e.u)
            assert tlabels is not None
            values["tl_u"] = tlabels(e.u)
            values["tl_v"] = tlabels(e.v)
        return values

    def eid(self, edge_index: int) -> int:
        """The packed extended identifier of an edge."""
        e = self.graph.edge(edge_index)
        uid = self.uid_scheme.uid(self._id_of(e.u), self._id_of(e.v))
        return self.codec.pack(
            self._field_values(e, uid, self._id_of, self._anc_of, self._tlabel_of)
        )

    def eid_batch(self, edge_indices: Optional[Iterable[int]] = None) -> list[int]:
        """Packed EIDs for many edges, identical to per-edge :meth:`eid`.

        Per-vertex quantities (identifier-space ids, ancestry labels,
        encoded tree labels) are gathered once instead of once per
        incident edge, and UIDs go through :meth:`UidScheme.uid_batch`;
        only the fixed-width packing stays per edge.
        """
        graph = self.graph
        indices = list(range(graph.m)) if edge_indices is None else list(edge_indices)
        if not indices:
            return []
        edges = [graph.edge(ei) for ei in indices]
        used = sorted({v for e in edges for v in (e.u, e.v)})
        ids = {v: self._id_of(v) for v in used}
        ancs = {v: self._anc_of(v) for v in used}
        tlabels = None
        if self.routing:
            assert self._tlabel_of is not None
            tlabels = {v: self._tlabel_of(v) for v in used}
            tl_get = tlabels.__getitem__
        else:
            tl_get = None
        uids = self.uid_scheme.uid_batch((ids[e.u], ids[e.v]) for e in edges)
        pack = self.codec.pack
        ids_get, ancs_get = ids.__getitem__, ancs.__getitem__
        return [
            pack(self._field_values(e, uid, ids_get, ancs_get, tl_get))
            for e, uid in zip(edges, uids)
        ]

    @property
    def word_batchable(self) -> bool:
        """True when every EID field fits one 64-bit word, i.e. the
        vectorized column packer of :meth:`eid_words_batch` applies.
        Callers that also want the Python-int EIDs should check this
        and use :meth:`eid_batch` directly when it is False, avoiding a
        pack/unpack round trip through the word matrix."""
        return self.uid_scheme.uid_bits <= 64 and not (
            self.routing and self.tlabel_bits > 64
        )

    def eid_words_batch(self, edge_indices: Optional[Iterable[int]] = None):
        """Packed EIDs as a ``(E, word_count)`` uint64 word matrix.

        The fast path packs every field with vectorized word shifts
        (:meth:`EidCodec.pack_words_batch`); layouts with an oversized
        routing tree-label field fall back to the per-edge packer.  Rows
        equal ``eid_to_words(self.eid(ei), word_count)`` either way.
        """
        import numpy as np

        from repro.sketches.sketch import eids_to_word_matrix

        graph = self.graph
        indices = list(range(graph.m)) if edge_indices is None else list(edge_indices)
        n_words = self.codec.word_count
        if not indices:
            return np.zeros((0, n_words), dtype=np.uint64)
        if not self.word_batchable:
            return eids_to_word_matrix(self.eid_batch(indices), n_words)
        csr = graph.as_csr()
        idx = np.asarray(indices, dtype=np.int64)
        eu = csr.edge_u[idx]
        ev = csr.edge_v[idx]
        # Per-vertex quantities gathered once; vertices never touched by
        # an edge are skipped (they may carry no ancestry label).
        n = graph.n
        touched = np.zeros(n, dtype=bool)
        touched[eu] = True
        touched[ev] = True
        if self._identity_ids:
            # Identity mapping: every gather below reads ids[v] = v, so
            # one arange replaces the per-vertex Python loop (untouched
            # entries are never read either way).
            ids = np.arange(n, dtype=np.uint64)
        else:
            ids = np.zeros(n, dtype=np.uint64)
            id_of = self._id_of
            for v in np.flatnonzero(touched).tolist():
                ids[v] = id_of(v)
        if self._anc_arrays is not None:
            tin = self._anc_arrays[0].astype(np.uint64)
            tout = self._anc_arrays[1].astype(np.uint64)
        else:
            tin = np.zeros(n, dtype=np.uint64)
            tout = np.zeros(n, dtype=np.uint64)
            anc_of = self._anc_of
            for v in np.flatnonzero(touched).tolist():
                a = anc_of(v)
                tin[v] = a[0]
                tout[v] = a[1]
        gu = ids[eu].tolist()
        gv = ids[ev].tolist()
        cols = {
            "uid": np.array(
                self.uid_scheme.uid_batch(zip(gu, gv)), dtype=np.uint64
            ),
            "id_u": ids[eu],
            "id_v": ids[ev],
            "tin_u": tin[eu],
            "tout_u": tout[eu],
            "tin_v": tin[ev],
            "tout_v": tout[ev],
        }
        if self.routing:
            assert self._tlabel_of is not None
            tlabels = np.zeros(n, dtype=np.uint64)
            for v in np.flatnonzero(touched).tolist():
                tlabels[v] = self._tlabel_of(v)
            port_fn = self._port_fn
            ul, vl = eu.tolist(), ev.tolist()
            cols["port_u"] = np.array(
                [port_fn(u, v) for u, v in zip(ul, vl)], dtype=np.uint64
            )
            cols["port_v"] = np.array(
                [port_fn(v, u) for u, v in zip(ul, vl)], dtype=np.uint64
            )
            cols["tl_u"] = tlabels[eu]
            cols["tl_v"] = tlabels[ev]
        return self.codec.pack_words_batch(cols)

    def try_decode_words(
        self, words: "np.ndarray"
    ) -> tuple["np.ndarray", dict[int, DecodedEid]]:
        """Vectorized Lemma 3.10 over a ``(N, word_count)`` candidate matrix.

        Returns ``(valid, decoded)``: ``valid[i]`` iff row ``i`` is a
        single-edge EID (same test as :meth:`try_decode`), ``decoded``
        holding a :class:`DecodedEid` for every valid row.  Field
        slicing and the id-range prefilter run as array ops; only the
        survivors pay a (batched) PRF evaluation, and only valid rows
        materialize Python objects — that ratio is what makes the
        batched Boruvka decoder fast.  Layouts with an oversized routing
        tree-label field fall back to the per-row scalar path.
        """
        import numpy as np

        from repro.sketches.sketch import words_to_eid

        n_rows = words.shape[0]
        valid = np.zeros(n_rows, dtype=bool)
        decoded: dict[int, DecodedEid] = {}
        if n_rows == 0:
            return valid, decoded
        if not self.word_batchable:
            for i in range(n_rows):
                d = self.try_decode(words_to_eid(words[i]))
                if d is not None:
                    valid[i] = True
                    decoded[i] = d
            return valid, decoded
        fields = self.codec.unpack_words_batch(words, fields=("uid", "id_u", "id_v"))
        id_u = fields["id_u"].astype(np.int64)
        id_v = fields["id_v"].astype(np.int64)
        plausible = (
            (words != 0).any(axis=1)
            & (id_u < self.id_space)
            & (id_v < self.id_space)
            & (id_u != id_v)
        )
        rows = np.flatnonzero(plausible)
        if rows.size == 0:
            return valid, decoded
        ul = id_u[rows].tolist()
        vl = id_v[rows].tolist()
        expected = self.uid_scheme.uid_batch(zip(ul, vl))
        got = fields["uid"][rows].tolist()
        for pos, exp in enumerate(expected):
            if exp != got[pos]:
                continue
            row = int(rows[pos])
            valid[row] = True
            # Valid rows are rare; the scalar decoder materializes the
            # full field set (including any routing payload) for them.
            decoded[row] = self.try_decode(words_to_eid(words[row]))
        return valid, decoded

    def try_decode(self, candidate: int) -> Optional[DecodedEid]:
        """Lemma 3.10: decide whether ``candidate`` is a single-edge EID.

        Returns the decoded fields when the UID validates against the
        decoded endpoint ids (w.h.p. exactly the single-edge case), else
        ``None``.
        """
        if candidate == 0:
            return None
        fields = self.codec.unpack(candidate)
        u, v = fields["id_u"], fields["id_v"]
        if u >= self.id_space or v >= self.id_space or u == v:
            return None
        if not self.uid_scheme.matches(fields["uid"], u, v):
            return None
        return DecodedEid(
            u=u,
            v=v,
            anc_u=(fields["tin_u"], fields["tout_u"]),
            anc_v=(fields["tin_v"], fields["tout_v"]),
            port_u=fields.get("port_u"),
            port_v=fields.get("port_v"),
            tlabel_u=fields.get("tl_u"),
            tlabel_v=fields.get("tl_v"),
            raw=candidate,
        )

    @property
    def total_bits(self) -> int:
        return self.codec.total_bits
