"""Pairwise-independent hash families (Definition A.1, Fact A.2).

Both families are the classic ``h(x) = ((a x + b) mod p) mod 2^J`` with
``p`` a Mersenne prime and per-function coefficients derived from the
seed ``S_h`` by the package PRF:

* :class:`PairwiseHashFamily` uses ``p = 2^31 - 1``.  Products
  ``a * x + b`` then fit comfortably below 2^63, so one vectorized
  uint64 multiply-add-mod evaluates the whole family — but edge keys
  ``min_id * id_space + max_id`` must stay below ``p``, capping the
  identifier space at 46341 ids.
* :class:`Mersenne61HashFamily` uses ``p = 2^61 - 1`` and lifts that
  cap to ~1.5 * 10^9 ids.  The 122-bit products no longer fit in one
  machine word, so the family evaluates them with split-multiply limb
  arithmetic: operands split into hi/lo 32-bit limbs, partial products
  are folded with the Mersenne identity ``2^61 = 1 (mod p)`` and the
  sums are reduced lazily (every intermediate is proved < 2^63, so pure
  numpy uint64 arithmetic never wraps unintentionally).

:func:`family_for_key_space` picks between them: m31 whenever the key
space fits (keeping the legacy labels bit-identical), m61 beyond it.

Each m31 function is determined by 2 * 31 seed bits, each m61 function
by 2 * 61; a family of L functions is the paper's ``S_h`` seed of
O(L log n) bits.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro._util import prf_int

MERSENNE_P = (1 << 31) - 1
MERSENNE61_P = (1 << 61) - 1

_M61 = np.uint64(MERSENNE61_P)
_LO32 = np.uint64(0xFFFFFFFF)
_LO29 = np.uint64((1 << 29) - 1)


@lru_cache(maxsize=None)
def max_sketch_id_space(modulus: int) -> int:
    """Largest identifier space whose edge keys fit under ``modulus``.

    Edge sampling keys are ``min_id * K + max_id`` with distinct ids, so
    the largest key uses ids ``K - 2`` and ``K - 1``: the bound is the
    largest ``K`` with ``(K - 2) * K + (K - 1) < modulus``.  For
    ``2^31 - 1`` this is the historical 46341-id cap; for ``2^61 - 1``
    it is 1518500250.
    """
    k = math.isqrt(modulus)
    while (k - 1) * (k + 1) + k < modulus:  # f(k + 1) = (k+1)^2 - (k+1) - 1
        k += 1
    while (k - 2) * k + (k - 1) >= modulus:
        k -= 1
    return k


class PairwiseHashFamily:
    """``count`` pairwise-independent functions onto ``[0, 2^out_bits)``
    over the 31-bit Mersenne prime ``2^31 - 1``."""

    modulus = MERSENNE_P

    def __init__(self, count: int, out_bits: int, seed: int):
        if count < 1:
            raise ValueError("need at least one hash function")
        if not (1 <= out_bits <= 31):
            raise ValueError("out_bits must be in 1..31")
        self.count = count
        self.out_bits = out_bits
        self.seed = seed
        self._a = np.array(
            [prf_int(seed, "hash_a", i, bits=40) % (MERSENNE_P - 1) + 1 for i in range(count)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [prf_int(seed, "hash_b", i, bits=40) % MERSENNE_P for i in range(count)],
            dtype=np.uint64,
        )
        self._mask = np.uint64((1 << out_bits) - 1)

    def value(self, i: int, x: int) -> int:
        """h_i(x) for a single key."""
        if not (0 <= x < MERSENNE_P):
            raise ValueError("key out of range for the hash family")
        return int(((int(self._a[i]) * x + int(self._b[i])) % MERSENNE_P) & int(self._mask))

    def all_values(self, x: int) -> np.ndarray:
        """Vector ``[h_0(x), ..., h_{count-1}(x)]`` (uint64)."""
        xv = np.uint64(x)
        return ((self._a * xv + self._b) % np.uint64(MERSENNE_P)) & self._mask

    def all_values_many(self, keys: np.ndarray) -> np.ndarray:
        """Matrix ``H[e, i] = h_i(keys[e])`` for a batch of keys (uint64).

        Same modular arithmetic as :meth:`all_values`, broadcast over a
        key vector — ``a * x + b < 2^62`` so the uint64 products never
        wrap.
        """
        k = keys.astype(np.uint64)[:, None]
        return ((self._a[None, :] * k + self._b[None, :]) % np.uint64(MERSENNE_P)) & self._mask

    def unit_values_many(self, i: int, keys: np.ndarray) -> np.ndarray:
        """Column ``i`` of :meth:`all_values_many` without materializing
        the full (E, count) matrix — the memory-frugal builders evaluate
        one unit at a time."""
        k = keys.astype(np.uint64)
        return ((self._a[i] * k + self._b[i]) % np.uint64(MERSENNE_P)) & self._mask

    def block_values_many(self, keys: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Units ``[lo, hi)`` over all keys as one unit-major
        ``(hi - lo, E)`` evaluation — the coarse unit batches of the
        fused ragged builder.  Row ``i`` is elementwise-identical to
        ``unit_values_many(lo + i, keys)`` (same uint64 arithmetic,
        broadcast instead of looped); unit-major rows write contiguously
        into the builder's level cache."""
        k = keys.astype(np.uint64)[None, :]
        return (
            (self._a[lo:hi, None] * k + self._b[lo:hi, None]) % np.uint64(MERSENNE_P)
        ) & self._mask

    def seed_bits(self) -> int:
        """Size of the seed S_h in bits: two coefficients per function."""
        return self.count * 2 * 31


def _mulmod_m61(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``a * x mod (2^61 - 1)`` over uint64 arrays via 32-bit limb splits.

    With ``a, x < 2^61`` write ``a = a_hi * 2^32 + a_lo`` (``a_hi <
    2^29``, ``a_lo < 2^32``) and likewise for ``x``; then modulo ``p``:

    * ``a_hi * x_hi * 2^64 = 8 * a_hi * x_hi``           (< 2^61)
    * ``(a_hi * x_lo + a_lo * x_hi) * 2^32``: the cross sum ``c < 2^62``
      splits at 29 bits into ``c_hi * 2^61 + c_lo * 2^32``, i.e.
      ``c_hi + (c_lo << 32)``                             (< 2^33 + 2^61)
    * ``a_lo * x_lo < 2^64`` is exact in uint64 and reduces to
      ``(p & m61) + (p >> 61)``                           (< 2^61 + 8)

    The lazy sum of the partials stays below 2^63, so two fold-reduce
    steps and one conditional subtract produce the exact residue.
    """
    a_hi = a >> np.uint64(32)
    a_lo = a & _LO32
    x_hi = x >> np.uint64(32)
    x_lo = x & _LO32
    cross = a_hi * x_lo + a_lo * x_hi
    low = a_lo * x_lo
    s = (
        ((a_hi * x_hi) << np.uint64(3))
        + (cross >> np.uint64(29))
        + ((cross & _LO29) << np.uint64(32))
        + (low & _M61)
        + (low >> np.uint64(61))
    )
    s = (s & _M61) + (s >> np.uint64(61))
    s = (s & _M61) + (s >> np.uint64(61))
    return np.where(s >= _M61, s - _M61, s)


class Mersenne61HashFamily:
    """``count`` pairwise-independent functions onto ``[0, 2^out_bits)``
    over the 61-bit Mersenne prime ``2^61 - 1`` (split-multiply limbs).

    Drop-in interface twin of :class:`PairwiseHashFamily` with a
    ~1.5 * 10^9-id key domain; selected automatically by the sketch
    schemes once the identifier space outgrows the m31 cap.
    """

    modulus = MERSENNE61_P

    def __init__(self, count: int, out_bits: int, seed: int):
        if count < 1:
            raise ValueError("need at least one hash function")
        if not (1 <= out_bits <= 61):
            raise ValueError("out_bits must be in 1..61")
        self.count = count
        self.out_bits = out_bits
        self.seed = seed
        self._a = np.array(
            [
                prf_int(seed, "hash61_a", i, bits=80) % (MERSENNE61_P - 1) + 1
                for i in range(count)
            ],
            dtype=np.uint64,
        )
        self._b = np.array(
            [
                prf_int(seed, "hash61_b", i, bits=80) % MERSENNE61_P
                for i in range(count)
            ],
            dtype=np.uint64,
        )
        self._mask = np.uint64((1 << out_bits) - 1)

    def value(self, i: int, x: int) -> int:
        """h_i(x) for a single key (exact big-int arithmetic — the
        reference the vectorized limb path is tested against)."""
        if not (0 <= x < MERSENNE61_P):
            raise ValueError("key out of range for the hash family")
        return int(
            ((int(self._a[i]) * x + int(self._b[i])) % MERSENNE61_P) & int(self._mask)
        )

    def _eval(self, a: np.ndarray, b: np.ndarray, keys: np.ndarray) -> np.ndarray:
        s = _mulmod_m61(a, keys) + b  # both < 2^61, sum < 2^62
        s = (s & _M61) + (s >> np.uint64(61))
        return np.where(s >= _M61, s - _M61, s) & self._mask

    def all_values(self, x: int) -> np.ndarray:
        """Vector ``[h_0(x), ..., h_{count-1}(x)]`` (uint64)."""
        return self._eval(self._a, self._b, np.uint64(x))

    def all_values_many(self, keys: np.ndarray) -> np.ndarray:
        """Matrix ``H[e, i] = h_i(keys[e])`` for a batch of keys (uint64)."""
        k = keys.astype(np.uint64)[:, None]
        return self._eval(self._a[None, :], self._b[None, :], k)

    def unit_values_many(self, i: int, keys: np.ndarray) -> np.ndarray:
        """Column ``i`` of :meth:`all_values_many`, one unit at a time."""
        return self._eval(self._a[i], self._b[i], keys.astype(np.uint64))

    def block_values_many(self, keys: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Units ``[lo, hi)`` over all keys, unit-major ``(hi - lo, E)``,
        in one broadcast limb evaluation; row ``i`` is
        elementwise-identical to ``unit_values_many(lo + i, keys)``."""
        return self._eval(
            self._a[lo:hi, None], self._b[lo:hi, None], keys.astype(np.uint64)[None, :]
        )

    def seed_bits(self) -> int:
        """Size of the seed S_h in bits: two coefficients per function."""
        return self.count * 2 * 61


def family_for_key_space(count: int, out_bits: int, seed: int, key_space: int):
    """The widest-necessary pairwise family for an identifier space.

    Returns the legacy :class:`PairwiseHashFamily` whenever every edge
    key of ``key_space`` ids fits below ``2^31 - 1`` — keeping all
    existing labels bit-identical — and :class:`Mersenne61HashFamily`
    beyond that (the auto-upgrade that retired the 46341-id cap).
    """
    if key_space <= max_sketch_id_space(MERSENNE_P):
        return PairwiseHashFamily(count, out_bits, seed)
    return Mersenne61HashFamily(count, out_bits, seed)
