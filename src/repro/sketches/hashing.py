"""Pairwise-independent hash families (Definition A.1, Fact A.2).

The family is the classic ``h(x) = ((a x + b) mod p) mod 2^J`` with
``p = 2^31 - 1`` (a Mersenne prime) and per-function coefficients derived
from the seed ``S_h`` by the package PRF.  Keys are edge keys
``u * n + v < n^2 < p``, so the multiplication fits comfortably in 64-bit
arithmetic and the whole family can be evaluated with vectorized numpy,
which is what makes label construction tractable at n ~ 10^3 (the "slow
label construction" caveat of the reproduction notes).

Each function is determined by 2 * 31 seed bits; a family of L functions
is the paper's ``S_h`` seed of O(L log n) bits.
"""

from __future__ import annotations

import numpy as np

from repro._util import prf_int

MERSENNE_P = (1 << 31) - 1


class PairwiseHashFamily:
    """``count`` pairwise-independent functions onto ``[0, 2^out_bits)``."""

    def __init__(self, count: int, out_bits: int, seed: int):
        if count < 1:
            raise ValueError("need at least one hash function")
        if not (1 <= out_bits <= 31):
            raise ValueError("out_bits must be in 1..31")
        self.count = count
        self.out_bits = out_bits
        self.seed = seed
        self._a = np.array(
            [prf_int(seed, "hash_a", i, bits=40) % (MERSENNE_P - 1) + 1 for i in range(count)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [prf_int(seed, "hash_b", i, bits=40) % MERSENNE_P for i in range(count)],
            dtype=np.uint64,
        )
        self._mask = np.uint64((1 << out_bits) - 1)

    def value(self, i: int, x: int) -> int:
        """h_i(x) for a single key."""
        if not (0 <= x < MERSENNE_P):
            raise ValueError("key out of range for the hash family")
        return int(((int(self._a[i]) * x + int(self._b[i])) % MERSENNE_P) & int(self._mask))

    def all_values(self, x: int) -> np.ndarray:
        """Vector ``[h_0(x), ..., h_{count-1}(x)]`` (uint64)."""
        xv = np.uint64(x)
        return ((self._a * xv + self._b) % np.uint64(MERSENNE_P)) & self._mask

    def all_values_many(self, keys: np.ndarray) -> np.ndarray:
        """Matrix ``H[e, i] = h_i(keys[e])`` for a batch of keys (uint64).

        Same modular arithmetic as :meth:`all_values`, broadcast over a
        key vector — ``a * x + b < 2^62`` so the uint64 products never
        wrap.
        """
        k = keys.astype(np.uint64)[:, None]
        return ((self._a[None, :] * k + self._b[None, :]) % np.uint64(MERSENNE_P)) & self._mask

    def seed_bits(self) -> int:
        """Size of the seed S_h in bits: two coefficients per function."""
        return self.count * 2 * 31
