"""Per-vertex XOR graph sketches (Section 3.2.1) over numpy uint64 words.

A *basic sketch unit* ``Sketch_{G,i}(v)`` is the vector
``[XOR(E_{i,0}(v)), ..., XOR(E_{i,log m}(v))]`` (Eq. 2) where
``E_{i,j}`` samples each edge with probability ``2^-j`` through the
pairwise-independent function ``h_i`` (edge ``e`` is in ``E_{i,j}`` iff
``h_i(e) < 2^{J-j}``).  The full sketch concatenates L units.

Sketches are linear: the sketch of a vertex set is the XOR of the
vertices' sketches, and internal edges cancel, so the sketch of a set S
exposes only edges of the cut (S, V \\ S) — the property behind
outgoing-edge extraction (Lemma 3.13).

Representation: a numpy array of shape ``(L, J+1, W)`` of uint64 words
per sketch (W = ceil(eid_bits / 64)); per-vertex sketches stack to
``(n, L, J+1, W)``.  All XOR aggregation is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree
from repro.sketches.edge_ids import DecodedEid, ExtendedEdgeIds
from repro.sketches.hashing import PairwiseHashFamily


@dataclass(frozen=True)
class SketchDims:
    """Sketch dimensions: L units, J+1 levels, W 64-bit words per cell."""

    units: int
    levels: int
    words: int

    def cell_count(self) -> int:
        return self.units * self.levels

    def bit_length(self) -> int:
        """Size of one sketch in bits, counting eid-width cells."""
        return self.units * self.levels * self.words * 64

    def zeros(self) -> np.ndarray:
        return np.zeros((self.units, self.levels, self.words), dtype=np.uint64)


def eid_to_words(eid: int, words: int) -> np.ndarray:
    """Split an EID int into big-endian uint64 words."""
    out = np.zeros(words, dtype=np.uint64)
    for k in range(words - 1, -1, -1):
        out[k] = eid & 0xFFFFFFFFFFFFFFFF
        eid >>= 64
    return out


def words_to_eid(arr: np.ndarray) -> int:
    """Inverse of :func:`eid_to_words`."""
    value = 0
    for word in arr.tolist():
        value = (value << 64) | int(word)
    return value


def edge_key(n: int, u: int, v: int) -> int:
    """Canonical sampling key of the edge {u, v}."""
    a, b = (u, v) if u < v else (v, u)
    return a * n + b


class VertexSketches:
    """The stacked per-vertex sketches of one (graph, unit family) instance.

    Sampling keys are derived from the *identifier-space* endpoint ids
    (``id_of``/``key_space``): the decoder only knows an edge through
    its extended identifier, so the sampling positions must be
    recomputable from the embedded ids alone.  For a standalone instance
    these are the graph's own vertex ids; for a tree-cover instance they
    are the global ids the EIDs embed.
    """

    def __init__(
        self,
        graph: Graph,
        dims: SketchDims,
        family: PairwiseHashFamily,
        id_of: Optional[Callable[[int], int]] = None,
        key_space: Optional[int] = None,
    ):
        if family.count < dims.units:
            raise ValueError("hash family smaller than the number of units")
        self.graph = graph
        self.dims = dims
        self.family = family
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self.key_space = key_space if key_space is not None else graph.n
        self._level_idx = np.arange(dims.levels)

    # ------------------------------------------------------------------
    # Sampling structure (arguments are identifier-space ids)
    # ------------------------------------------------------------------
    def max_levels(self, u: int, v: int) -> np.ndarray:
        """Per-unit deepest level containing edge {u,v}: e in E_{i,j} iff
        j <= J - bitlen(h_i(e)).  ``u``/``v`` are identifier-space ids."""
        h = self.family.all_values(edge_key(self.key_space, u, v))[: self.dims.units]
        h = h.astype(np.float64)
        bitlen = np.where(h == 0, 0, np.floor(np.log2(np.maximum(h, 1))) + 1).astype(int)
        return (self.dims.levels - 1) - bitlen

    def membership_mask(self, u: int, v: int) -> np.ndarray:
        """Boolean (L, J+1) mask of the cells the edge is sampled into.
        ``u``/``v`` are identifier-space ids."""
        ml = self.max_levels(u, v)
        return self._level_idx[None, :] <= ml[:, None]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(
        self,
        eid_of: Callable[[int], int],
        edge_indices: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Per-vertex sketch array of shape (n, L, J+1, W).

        ``eid_of`` maps an edge index to its packed EID; ``edge_indices``
        restricts which edges participate (default: all).
        """
        n = self.graph.n
        arr = np.zeros((n, self.dims.units, self.dims.levels, self.dims.words), dtype=np.uint64)
        indices = (
            range(self.graph.m) if edge_indices is None else edge_indices
        )
        for ei in indices:
            e = self.graph.edge(ei)
            mask = self.membership_mask(self._id_of(e.u), self._id_of(e.v))
            ew = eid_to_words(eid_of(ei), self.dims.words)
            contrib = np.where(mask[:, :, None], ew[None, None, :], np.uint64(0))
            arr[e.u] ^= contrib
            arr[e.v] ^= contrib
        return arr

    @staticmethod
    def aggregate_subtrees(tree: RootedTree, vertex_sketches: np.ndarray) -> np.ndarray:
        """Row v of the result is the XOR of vertex sketches over subtree(v).

        One post-order pass (children XOR into parents), matching the
        labeling algorithm's Õ(n) subtree computation (Claim 3.12).
        """
        agg = vertex_sketches.copy()
        for v in tree.post_order():
            p = tree.parent[v]
            if p >= 0:
                agg[p] ^= agg[v]
        return agg

    @staticmethod
    def xor_rows(arr: np.ndarray, vertices: Sequence[int]) -> np.ndarray:
        """Sketch of a vertex set: XOR of the selected rows."""
        if len(vertices) == 0:
            return np.zeros(arr.shape[1:], dtype=np.uint64)
        return np.bitwise_xor.reduce(arr[list(vertices)], axis=0)

    # ------------------------------------------------------------------
    # Cancellation and extraction
    # ------------------------------------------------------------------
    def cancel_edge(self, sketch: np.ndarray, u: int, v: int, eid: int) -> None:
        """Remove edge {u,v} from a set sketch in place (Step 3 of the
        decoder: subtracting faulty-edge information).  ``u``/``v`` are
        identifier-space ids as decoded from the EID."""
        mask = self.membership_mask(u, v)
        ew = eid_to_words(eid, self.dims.words)
        sketch ^= np.where(mask[:, :, None], ew[None, None, :], np.uint64(0))

    @staticmethod
    def extract_outgoing(
        sketch: np.ndarray, unit: int, eids: ExtendedEdgeIds
    ) -> Optional[DecodedEid]:
        """Lemma 3.13: recover one outgoing edge from basic unit ``unit``.

        Scans the unit's levels for a cell whose XOR validates as a
        single-edge EID (Lemma 3.10).  Returns None when no level
        isolates a single edge (constant probability per unit, hence the
        L independent repetitions).
        """
        levels = sketch.shape[1]
        for j in range(levels):
            candidate = words_to_eid(sketch[unit, j])
            if candidate == 0:
                continue
            decoded = eids.try_decode(candidate)
            if decoded is not None:
                return decoded
        return None
