"""Per-vertex XOR graph sketches (Section 3.2.1) over numpy uint64 words.

A *basic sketch unit* ``Sketch_{G,i}(v)`` is the vector
``[XOR(E_{i,0}(v)), ..., XOR(E_{i,log m}(v))]`` (Eq. 2) where
``E_{i,j}`` samples each edge with probability ``2^-j`` through the
pairwise-independent function ``h_i`` (edge ``e`` is in ``E_{i,j}`` iff
``h_i(e) < 2^{J-j}``).  The full sketch concatenates L units.

Sketches are linear: the sketch of a vertex set is the XOR of the
vertices' sketches, and internal edges cancel, so the sketch of a set S
exposes only edges of the cut (S, V \\ S) — the property behind
outgoing-edge extraction (Lemma 3.13).

Representation: a numpy array of shape ``(L, J+1, W)`` of uint64 words
per sketch (W = ceil(eid_bits / 64)); per-vertex sketches stack to
``(n, L, J+1, W)``.  All XOR aggregation is vectorized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree
from repro.sketches.edge_ids import DecodedEid, ExtendedEdgeIds
from repro.sketches.hashing import (
    MERSENNE61_P,
    MERSENNE_P,
    PairwiseHashFamily,
    max_sketch_id_space,
)

#: Largest identifier space the *m31* sampling keys support.  Edge keys
#: are ``min_id * id_space + max_id`` and must stay below the hash
#: family's Mersenne modulus; the largest key uses the two biggest ids,
#: so the bound is the largest K with ``(K - 2) * K + (K - 1) < p``.
#: For ``p = 2^31 - 1`` that is 46341 — the historical repo-wide cap.
#: Schemes now auto-select the ``2^61 - 1`` split-multiply family
#: (:class:`repro.sketches.hashing.Mersenne61HashFamily`) past it, which
#: lifts the ceiling to :data:`MAX_SKETCH_ID_SPACE_M61` ids; m31 remains
#: the default below, keeping all small-instance labels bit-identical.
MAX_SKETCH_ID_SPACE = max_sketch_id_space(MERSENNE_P)  # 46341

#: Identifier-space ceiling of the ``2^61 - 1`` family: ~1.5 * 10^9 ids.
MAX_SKETCH_ID_SPACE_M61 = max_sketch_id_space(MERSENNE61_P)  # 1518500250


@dataclass(frozen=True)
class SketchDims:
    """Sketch dimensions: L units, J+1 levels, W 64-bit words per cell."""

    units: int
    levels: int
    words: int

    def cell_count(self) -> int:
        return self.units * self.levels

    def bit_length(self) -> int:
        """Size of one sketch in bits, counting eid-width cells."""
        return self.units * self.levels * self.words * 64

    def zeros(self) -> np.ndarray:
        return np.zeros((self.units, self.levels, self.words), dtype=np.uint64)


def eid_to_words(eid: int, words: int) -> np.ndarray:
    """Split an EID int into big-endian uint64 words."""
    out = np.zeros(words, dtype=np.uint64)
    for k in range(words - 1, -1, -1):
        out[k] = eid & 0xFFFFFFFFFFFFFFFF
        eid >>= 64
    return out


def eids_to_word_matrix(eids: Sequence[int], words: int) -> np.ndarray:
    """Stack :func:`eid_to_words` over a batch: ``(len(eids), words)``.

    One ``to_bytes`` per EID plus a single big-endian ``frombuffer``
    decode, instead of per-edge word loops.
    """
    if len(eids) == 0:
        return np.zeros((0, words), dtype=np.uint64)
    buf = b"".join(int(e).to_bytes(words * 8, "big") for e in eids)
    return (
        np.frombuffer(buf, dtype=">u8")
        .reshape(len(eids), words)
        .astype(np.uint64)
    )


def words_to_eid(arr: np.ndarray) -> int:
    """Inverse of :func:`eid_to_words`."""
    value = 0
    for word in arr.tolist():
        value = (value << 64) | int(word)
    return value


def word_matrix_to_eids(matrix: np.ndarray) -> list[int]:
    """Row-wise :func:`words_to_eid` via one big-endian byte decode."""
    rows, words = matrix.shape
    if rows == 0:
        return []
    buf = matrix.astype(">u8").tobytes()
    step = words * 8
    from_bytes = int.from_bytes
    return [from_bytes(buf[i * step : (i + 1) * step], "big") for i in range(rows)]


def edge_key(n: int, u: int, v: int) -> int:
    """Canonical sampling key of the edge {u, v}."""
    a, b = (u, v) if u < v else (v, u)
    return a * n + b


@dataclass(frozen=True)
class SketchScatterPlan:
    """Copy-invariant layout of the vectorized sketch scatter.

    ``keys``: per-edge sampling keys (dense edge-index space).
    ``srows`` / ``sedges``: target row and dense edge index per CSR
    slot, in scatter order.  See :meth:`VertexSketches.scatter_plan`.

    The plan also memoizes the *scatter-ordered EID word view*
    (:meth:`scatter_words`): every copy and every unit of the ragged
    builder used to re-gather ``eid_words[sedges[order]]`` per pass —
    hoisting the copy-invariant ``eid_words[sedges]`` gather here turns
    that into a single precomputed view shared by all of them.
    """

    keys: np.ndarray
    srows: np.ndarray
    sedges: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def scatter_words(self, eid_words: np.ndarray) -> np.ndarray:
        """``eid_words[sedges]`` — EID word rows in scatter order,
        computed once per word matrix and shared across copies/units."""
        cached = self._cache.get("swords")
        if cached is None or cached[0] is not eid_words:
            cached = (eid_words, eid_words[self.sedges])
            self._cache["swords"] = cached
        return cached[1]


@dataclass(frozen=True)
class RaggedPrefix:
    """Sparse change-point storage of the prefix-XOR sketch tensor.

    Logically identical to the dense ``(rows, L, J+1, W)`` array of
    :meth:`VertexSketches.build_prefix`, but only *change points* are
    stored: within each plane — one ``(unit, level)`` cell tracked down
    the row axis — the prefix value changes only at rows that received a
    scatter, so the tensor has at most ``2 m L`` live entries against
    ``rows * L * (J+1)`` dense cells (the dense padding is what capped
    construction memory at large n).

    ``keys`` holds the sorted global positions ``plane * rows + row``
    (``plane = unit * levels + level``) of the change points and
    ``vals`` the plane-cumulative XOR at each; ``prefix[r, unit,
    level]`` is recovered by binary-searching for the last change point
    at or before row ``r`` within the plane (zero when there is none).
    """

    rows: int
    units: int
    levels: int
    width: int
    keys: np.ndarray  # (nnz,) int64, sorted
    vals: np.ndarray  # (nnz, width) uint64

    @property
    def nnz(self) -> int:
        return int(self.keys.size)

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.vals.nbytes)

    def _lookup(self, q: np.ndarray) -> np.ndarray:
        """Prefix values at flat positions ``q = plane * rows + row``."""
        idx = np.searchsorted(self.keys, q, side="right") - 1
        plane_base = (q // self.rows) * self.rows
        valid = (idx >= 0) & (self.keys[np.maximum(idx, 0)] >= plane_base)
        out = np.zeros(q.shape + (self.width,), dtype=np.uint64)
        out[valid] = self.vals[idx[valid]]
        return out

    def gather(self, rows_idx: np.ndarray, unit: int) -> np.ndarray:
        """Dense ``(len(rows_idx), levels, width)`` slab of one unit —
        the decoder's replacement for ``prefix[rows_idx, unit]``."""
        lv = (
            np.int64(unit) * self.levels + np.arange(self.levels, dtype=np.int64)
        ) * np.int64(self.rows)
        q = np.asarray(rows_idx, dtype=np.int64)[:, None] + lv[None, :]
        return self._lookup(q)

    def full_row(self, r: int) -> np.ndarray:
        """Dense ``(units, levels, width)`` sketch of prefix row ``r``."""
        planes = np.arange(self.units * self.levels, dtype=np.int64)
        q = planes * np.int64(self.rows) + np.int64(r)
        return self._lookup(q).reshape(self.units, self.levels, self.width)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``(rows, L, J+1, W)`` tensor (tests and
        small instances only — this reintroduces the padding)."""
        planes = self.units * self.levels
        flat = np.zeros((planes * self.rows, self.width), dtype=np.uint64)
        if self.keys.size:
            plane = self.keys // self.rows
            row = self.keys - plane * self.rows
            nxt = np.empty(self.keys.size, dtype=np.int64)
            nxt[:-1] = np.where(plane[1:] == plane[:-1], row[1:], self.rows)
            nxt[-1] = self.rows
            counts = nxt - row
            total = int(counts.sum())
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            flat[np.repeat(self.keys, counts) + within] = np.repeat(
                self.vals, counts, axis=0
            )
        return np.ascontiguousarray(
            flat.reshape(self.units, self.levels, self.rows, self.width).transpose(
                2, 0, 1, 3
            )
        )


#: hash-matrix elements (edge keys x units) evaluated per blocked call.
#: Small enough that the limb-arithmetic temporaries (~8 per eval) stay
#: cache-resident — measured faster than both one-unit-at-a-time calls
#: (per-call setup dominates on small graphs) and whole-family blocks
#: (64 MB temporaries thrash cache on large ones).
UNIT_BLOCK_ELEMS = 1 << 21


def _segment_digest_hex(arr: np.ndarray) -> str:
    """BLAKE2b-128 of an array's bytes — the per-segment digest of
    :mod:`repro.store.format` (same parameters), computed build-side so
    parallel copy workers can fingerprint their output while other
    copies still build."""
    return hashlib.blake2b(
        arr.data if arr.nbytes else b"", digest_size=16
    ).hexdigest()


def exact_levels_block(
    family, levels: int, keys: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Exact sampling levels of units ``[lo, hi)`` as a unit-major
    ``(hi-lo, E)`` int8 matrix — row ``i`` is value-identical to
    :meth:`VertexSketches.unit_max_levels_many` for unit ``lo + i``
    (same per-unit float arithmetic, one broadcast hash evaluation
    instead of a Python loop over units).  Levels fit int8: ``levels - 1
    <= 63`` for any 64-bit hash range."""
    h = family.block_values_many(keys, lo, hi).astype(np.float64)
    bitlen = np.where(h == 0, 0, np.floor(np.log2(np.maximum(h, 1))) + 1).astype(
        np.int8
    )
    return np.int8(levels - 1) - bitlen


def ragged_prefix_units(
    family,
    levels: int,
    width: int,
    keys: np.ndarray,
    srows: np.ndarray,
    sedges: np.ndarray,
    swords: np.ndarray,
    rows: int,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Change points of prefix planes for units ``[lo, hi)`` — the
    pass-fused core of :meth:`VertexSketches.build_prefix_ragged` and
    the unit of work a parallel build farms out.

    Returns ``(keys64, vals)``, exactly the slice of the serial
    builder's output covering those units (unit chunks concatenate
    already globally sorted: the unit index is the top of the position
    key), so any contiguous partition of ``[0, units)`` reassembles
    bit-identically.

    Fusions over the original two-pass builder:

    * the per-unit hash columns are evaluated **once** (cached as one
      int8 exact-level matrix, ``(hi-lo) * E`` bytes) instead of once
      per pass, in coarse unit blocks (:data:`UNIT_BLOCK_ELEMS`) that
      amortize hash-family setup;
    * the sort key shrinks from a 64-bit global position to the int8
      per-slot level: ``srows`` is already sorted (row-major scatter),
      so a *stable* argsort of the level alone yields the same group
      structure while numpy's radix path replaces comparison sorting;
    * the per-unit ``eid_words[sedges[order]]`` double gather reads the
      precomputed scatter-ordered ``swords`` view instead.
    """
    stride = np.int64(rows)
    count = hi - lo
    # Hash every unit in the range once, in coarse blocks.
    ml8 = np.empty((count, keys.size), dtype=np.int8)
    block = max(1, min(count, UNIT_BLOCK_ELEMS // max(1, keys.size)))
    for b in range(lo, hi, block):
        e = min(hi, b + block)
        ml8[b - lo : e - lo] = exact_levels_block(family, levels, keys, b, e)
    # Pass 1: exact change-point count per unit via one boolean scatter
    # over the (level, row) key space — no sort; knowing the counts up
    # front lets pass 2 write every unit straight into the final arrays
    # (the store is never held twice).
    counts_per_unit = np.empty(count, dtype=np.int64)
    flags = np.zeros(levels * int(stride), dtype=bool)
    for i in range(count):
        flags[ml8[i][sedges].astype(np.int64) * stride + srows] = True
        counts_per_unit[i] = int(np.count_nonzero(flags))
        flags[:] = False
    del flags
    total = int(counts_per_unit.sum())
    out_keys = np.empty(total, dtype=np.int64)
    out_vals = np.empty((total, width), dtype=np.uint64)
    # Pass 2: per-unit radix sort / XOR-merge, writing in place.
    off = 0
    for i in range(count):
        sl = ml8[i][sedges]
        # srows is sorted, so a stable sort by the int8 level alone is
        # the (level, row) order the 64-bit position sort produced.
        order = np.argsort(sl, kind="stable")
        sls = sl[order]
        srs = srows[order]
        wv = swords[order]
        starts = np.flatnonzero(
            np.r_[True, (sls[1:] != sls[:-1]) | (srs[1:] != srs[:-1])]
        )
        start_lvl = sls[starts].astype(np.int64)
        uk = (np.int64(lo + i) * levels + start_lvl) * stride + srs[starts]
        gv = np.empty((uk.size, width), dtype=np.uint64)
        for w in range(width):
            gv[:, w] = np.bitwise_xor.reduceat(wv[:, w], starts)
        # Exact-level group XORs -> plane-cumulative prefix values:
        # accumulate globally, then XOR away the running value at each
        # plane boundary (entries of a plane are consecutive).
        acc = np.bitwise_xor.accumulate(gv, axis=0)
        pstarts = np.flatnonzero(np.r_[True, start_lvl[1:] != start_lvl[:-1]])
        counts = np.diff(np.append(pstarts, uk.size))
        base = np.zeros((pstarts.size, width), dtype=np.uint64)
        nz = pstarts > 0
        base[nz] = acc[pstarts[nz] - 1]
        end = off + uk.size
        out_keys[off:end] = uk
        out_vals[off:end] = acc ^ np.repeat(base, counts, axis=0)
        off = end
    return out_keys, out_vals


def dense_prefix_units(
    family,
    levels: int,
    width: int,
    keys: np.ndarray,
    srows: np.ndarray,
    sedges: np.ndarray,
    swords: np.ndarray,
    rows: int,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Dense prefix slab of unit columns ``[lo, hi)`` — bit-identical to
    ``build_prefix(...)[:, lo:hi]`` (XOR scatter order is immaterial and
    the row fold is independent per unit column), so contiguous unit
    slabs concatenate into the full tensor."""
    count = hi - lo
    arr = np.zeros((rows, count, levels, width), dtype=np.uint64)
    ml = exact_levels_block(family, levels, keys, lo, hi).T.astype(np.int64)
    cell = np.arange(count, dtype=np.int64)[None, :] * levels + ml[sedges]
    targets = (srows[:, None] * np.int64(count * levels) + cell).ravel()
    flat = arr.reshape(-1, width)
    for w in range(width):
        np.bitwise_xor.at(
            flat[:, w],
            targets,
            np.repeat(np.ascontiguousarray(swords[:, w]), count),
        )
    rowflat = arr.reshape(rows, -1)
    for r in range(1, rows):
        rowflat[r] ^= rowflat[r - 1]
    return arr


def prefix_store_task(payload, ctx, family, layout: str, lo: int, hi: int):
    """Build-pool task: units ``[lo, hi)`` of one copy's prefix store.

    ``ctx`` is the build context dict (shared-pool tasks carry it in
    the task; fork-payload pools pass None and use ``payload``).
    Returns ``(keys, vals, keys_digest, vals_digest)`` for the ragged
    layout or ``(slab, digest)`` for dense; digests are only computed
    when the range covers every unit — a full-copy result is exactly
    the segment the snapshot will persist, so fingerprinting it here
    overlaps digest work with the other copies' construction.
    """
    c = payload if ctx is None else ctx
    full = lo == 0 and hi == c["units"]
    args = (
        family,
        c["levels"],
        c["width"],
        c["keys"],
        c["srows"],
        c["sedges"],
        c["swords"],
        c["rows"],
        lo,
        hi,
    )
    if layout == "ragged":
        ks, vs = ragged_prefix_units(*args)
        if full:
            return ks, vs, _segment_digest_hex(ks), _segment_digest_hex(vs)
        return ks, vs, None, None
    arr = dense_prefix_units(*args)
    return arr, (_segment_digest_hex(arr) if full else None)


class VertexSketches:
    """The stacked per-vertex sketches of one (graph, unit family) instance.

    Sampling keys are derived from the *identifier-space* endpoint ids
    (``id_of``/``key_space``): the decoder only knows an edge through
    its extended identifier, so the sampling positions must be
    recomputable from the embedded ids alone.  For a standalone instance
    these are the graph's own vertex ids; for a tree-cover instance they
    are the global ids the EIDs embed.
    """

    def __init__(
        self,
        graph: Graph,
        dims: SketchDims,
        family: PairwiseHashFamily,
        id_of: Optional[Callable[[int], int]] = None,
        key_space: Optional[int] = None,
    ):
        if family.count < dims.units:
            raise ValueError("hash family smaller than the number of units")
        if family.out_bits > dims.levels - 1:
            # bitlen(h) can then exceed J, giving negative exact levels —
            # the reference builder drops such edges but the vectorized
            # scatter would write into neighboring cells, so reject the
            # mismatch outright.
            raise ValueError(
                f"hash range {family.out_bits} bits exceeds J={dims.levels - 1}"
            )
        self.graph = graph
        self.dims = dims
        self.family = family
        self._identity_ids = id_of is None
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self.key_space = key_space if key_space is not None else graph.n
        # The largest possible edge key is min_id * key_space + max_id
        # with min_id < max_id (simple graphs), i.e. at ids k-2 and k-1.
        # Keys must stay below the hash family's Mersenne modulus, which
        # also keeps the batched int64 key arithmetic exact.  The cap
        # therefore depends on the family: 46341 ids for the legacy m31
        # family, ~1.5 * 10^9 for the 2^61 - 1 family the schemes
        # auto-select beyond it (family_for_key_space).
        cap = max_sketch_id_space(self.family.modulus)
        if self.key_space > cap:
            raise ValueError(
                f"identifier space {self.key_space} exceeds the "
                f"{type(self.family).__name__} cap of {cap} ids: edge keys "
                f"must stay below the family's {self.family.modulus:#x} "
                f"modulus (use family_for_key_space to auto-select the "
                f"2^61 - 1 family past {MAX_SKETCH_ID_SPACE} ids)"
            )
        self._level_idx = np.arange(dims.levels)

    # ------------------------------------------------------------------
    # Sampling structure (arguments are identifier-space ids)
    # ------------------------------------------------------------------
    def max_levels(self, u: int, v: int) -> np.ndarray:
        """Per-unit deepest level containing edge {u,v}: e in E_{i,j} iff
        j <= J - bitlen(h_i(e)).  ``u``/``v`` are identifier-space ids."""
        key = np.array([edge_key(self.key_space, u, v)], dtype=np.int64)
        return self.max_levels_many(key)[0]

    def membership_mask(self, u: int, v: int) -> np.ndarray:
        """Boolean (L, J+1) mask of the cells the edge is sampled into.
        ``u``/``v`` are identifier-space ids."""
        ml = self.max_levels(u, v)
        return self._level_idx[None, :] <= ml[:, None]

    def max_levels_many(self, keys: np.ndarray) -> np.ndarray:
        """``(E, L)`` per-unit deepest levels for a batch of edge keys,
        with the same float arithmetic as :meth:`max_levels`."""
        h = self.family.all_values_many(keys)[:, : self.dims.units].astype(np.float64)
        bitlen = np.where(h == 0, 0, np.floor(np.log2(np.maximum(h, 1))) + 1).astype(int)
        return (self.dims.levels - 1) - bitlen

    def unit_max_levels_many(self, unit: int, keys: np.ndarray) -> np.ndarray:
        """Column ``unit`` of :meth:`max_levels_many` (identical per-column
        arithmetic) without the full ``(E, L)`` hash matrix — the ragged
        builder evaluates one unit at a time to bound peak memory."""
        h = self.family.unit_values_many(unit, keys).astype(np.float64)
        bitlen = np.where(h == 0, 0, np.floor(np.log2(np.maximum(h, 1))) + 1).astype(int)
        return (self.dims.levels - 1) - bitlen

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _ids_of(self, n: int) -> np.ndarray:
        """Identifier-space ids of vertices ``0..n-1`` as one batch.

        The identity mapping (standalone instances — the common case) is
        one ``np.arange`` instead of a million-call Python loop; a
        custom ``id_of`` falls back to a single batched ``fromiter``.
        """
        if self._identity_ids:
            return np.arange(n, dtype=np.int64)
        id_of = self._id_of
        return np.fromiter((id_of(v) for v in range(n)), dtype=np.int64, count=n)

    def scatter_plan(self, row_of: Optional[np.ndarray] = None) -> "SketchScatterPlan":
        """Copy-invariant scatter layout for the vectorized builders.

        Holds the per-edge sampling keys and the slot arrays in scatter
        order (CSR vertex-major, or sorted by ``row_of`` when rows are
        remapped).  Everything here depends only on the graph and the
        identifier space — per-copy builders reuse one plan and evaluate
        only their own hash family against it.
        """
        csr = self.graph.as_csr()
        n = self.graph.n
        ids = self._ids_of(n)
        gu = ids[csr.edge_u]
        gv = ids[csr.edge_v]
        keys = np.minimum(gu, gv) * np.int64(self.key_space) + np.maximum(gu, gv)
        slot_u = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(csr.indptr).astype(np.int64)
        )
        srows = slot_u if row_of is None else row_of[slot_u]
        sedges = csr.edge_ids
        if row_of is not None:
            # Keep the scatter row-major so writes stream block-locally.
            order = np.argsort(srows, kind="stable")
            srows = srows[order]
            sedges = sedges[order]
        return SketchScatterPlan(keys=keys, srows=srows, sedges=sedges)

    def _scatter_exact_levels(
        self,
        arr: np.ndarray,
        srows: np.ndarray,
        sedges: np.ndarray,
        ml: np.ndarray,
        eid_words: np.ndarray,
        word_row: Optional[np.ndarray] = None,
    ) -> None:
        """XOR EID words into the exact-level cells ``(row, i, ml[e, i])``.

        ``ml`` is the dense ``(m, L)`` exact-level matrix; ``word_row``
        maps a dense edge index to its row of ``eid_words`` (identity by
        default).  Narrow per-word 1-D scatters keep ``ufunc.at`` cheap.
        """
        units, levels, width = self.dims.units, self.dims.levels, self.dims.words
        cell = np.arange(units, dtype=np.int64)[None, :] * levels + ml[sedges]
        targets = (srows[:, None] * np.int64(units * levels) + cell).ravel()
        vrows = sedges if word_row is None else word_row[sedges]
        flat = arr.reshape(-1, width)
        for w in range(width):
            np.bitwise_xor.at(
                flat[:, w],
                targets,
                np.repeat(np.ascontiguousarray(eid_words[vrows, w]), units),
            )

    def build(
        self,
        eid_of: Callable[[int], int],
        edge_indices: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Per-vertex sketch array of shape (n, L, J+1, W).

        ``eid_of`` maps an edge index to its packed EID; ``edge_indices``
        restricts which edges participate (default: all).

        Vectorized in three passes with no per-edge Python work:

        1. one batched hash evaluation gives each edge its per-unit
           deepest sampled level ``ml[e, i]``;
        2. the EID words XOR-scatter into the *exact-level* cells
           ``(v, i, ml[e, i])`` (:meth:`_scatter_exact_levels`);
        3. because membership is nested (``e in E_{i,j}`` iff
           ``j <= ml[e, i]``), one reversed XOR-accumulate along the
           level axis turns exact-level cells into the cumulative
           cells of Eq. 2.

        The scheme's hot path uses :meth:`build_prefix` instead (same
        scatter, preorder-rank rows, prefix folding);
        :meth:`build_reference` is the sequential implementation
        producing the identical array to this one.
        """
        n = self.graph.n
        units, levels, width = self.dims.units, self.dims.levels, self.dims.words
        arr = np.zeros((n, units, levels, width), dtype=np.uint64)
        restricted = edge_indices is not None
        indices = list(range(self.graph.m)) if not restricted else list(edge_indices)
        if not indices:
            return arr
        plan = self.scatter_plan()
        eid_words = eids_to_word_matrix([eid_of(ei) for ei in indices], width)
        if restricted:
            # Rows of eid_words follow ``indices``; mask the slots of
            # excluded edges and route kept edges to their word rows.
            # Participation is by XOR parity — an edge listed an even
            # number of times cancels itself, matching the sequential
            # reference's repeated-XOR semantics.
            idx = np.asarray(indices, dtype=np.int64)
            keep = (np.bincount(idx, minlength=self.graph.m) % 2).astype(bool)
            word_row = np.zeros(self.graph.m, dtype=np.int64)
            word_row[idx] = np.arange(idx.size)
            ml = np.zeros((self.graph.m, units), dtype=np.int64)
            ml[idx] = self.max_levels_many(plan.keys[idx])
            sk = keep[plan.sedges]
            self._scatter_exact_levels(
                arr, plan.srows[sk], plan.sedges[sk], ml, eid_words, word_row
            )
        else:
            ml = self.max_levels_many(plan.keys)
            self._scatter_exact_levels(arr, plan.srows, plan.sedges, ml, eid_words)
        rev = arr[:, :, ::-1, :]
        np.bitwise_xor.accumulate(rev, axis=2, out=rev)
        return arr

    def build_prefix(
        self,
        eid_words: np.ndarray,
        row_of: np.ndarray,
        rows: int,
        plan: Optional["SketchScatterPlan"] = None,
    ) -> np.ndarray:
        """Prefix-XOR tensor of *exact-level* sketch cells (the hot path).

        Row ``r`` holds, per cell ``(i, d)``, the XOR of the EID words of
        every edge whose endpoint maps to a row ``<= r`` and whose unit-i
        sampling depth is exactly ``d``.  With ``row_of`` mapping each
        vertex to ``preorder_rank + 1``, any subtree's exact-level sketch
        is the XOR of two rows (subtrees are contiguous preorder
        intervals), and the cumulative cells of Eq. 2 follow by one tiny
        suffix-XOR over levels at query time (:meth:`suffix_levels`) —
        membership is nested, ``e in E_{i,j}`` iff ``j <= ml[e, i]``.

        Three vectorized construction passes, none per-edge: batched
        hashing, the exact-level scatter, and a sequential row loop that
        folds the tensor into prefix XORs (contiguous row-sized XORs
        beat ``ufunc.accumulate`` by an order of magnitude).  ``plan``
        lets multi-copy callers share one :meth:`scatter_plan`.
        """
        units, levels, width = self.dims.units, self.dims.levels, self.dims.words
        if self.graph.m == 0:
            return np.zeros((rows, units, levels, width), dtype=np.uint64)
        if plan is None:
            plan = self.scatter_plan(row_of)
        return dense_prefix_units(
            self.family,
            levels,
            width,
            plan.keys,
            plan.srows,
            plan.sedges,
            plan.scatter_words(eid_words),
            rows,
            0,
            units,
        )

    def build_prefix_ragged(
        self,
        eid_words: np.ndarray,
        row_of: np.ndarray,
        rows: int,
        plan: Optional["SketchScatterPlan"] = None,
    ) -> RaggedPrefix:
        """Memory-frugal :meth:`build_prefix`: same prefix semantics,
        change points only (:class:`RaggedPrefix`).

        The dense tensor is ``rows * L * (J+1) * W`` words regardless of
        how sparse the sketch cells are — ~4 GB per copy at n = 2 * 10^5
        — while the live content is one change point per (slot, unit):
        at most ``2 m L`` entries.  Delegates to
        :func:`ragged_prefix_units` over the full unit range — the
        pass-fused core that hashes each unit once, radix-sorts the int8
        exact levels, XOR-merges duplicate positions and converts the
        per-plane group XORs into cumulative prefix values.  Unit chunks
        concatenate already globally sorted (the unit index is the top
        of the position key), which is also what lets a parallel build
        partition ``[0, units)`` across workers.
        """
        units, levels, width = self.dims.units, self.dims.levels, self.dims.words
        if self.graph.m == 0:
            return RaggedPrefix(
                rows=rows,
                units=units,
                levels=levels,
                width=width,
                keys=np.zeros(0, dtype=np.int64),
                vals=np.zeros((0, width), dtype=np.uint64),
            )
        if plan is None:
            plan = self.scatter_plan(row_of)
        all_keys, all_vals = ragged_prefix_units(
            self.family,
            levels,
            width,
            plan.keys,
            plan.srows,
            plan.sedges,
            plan.scatter_words(eid_words),
            rows,
            0,
            units,
        )
        return RaggedPrefix(
            rows=rows,
            units=units,
            levels=levels,
            width=width,
            keys=all_keys,
            vals=all_vals,
        )

    @staticmethod
    def suffix_levels(cells: np.ndarray) -> np.ndarray:
        """Turn exact-level cells into the cumulative cells of Eq. 2.

        ``cells`` is one sketch of shape (L, J+1, W); returns a new array
        with cell ``(i, j)`` the XOR of the input cells ``(i, j..J)``.
        """
        out = cells.copy()
        rev = out[:, ::-1, :]
        np.bitwise_xor.accumulate(rev, axis=1, out=rev)
        return out

    def build_reference(
        self,
        eid_of: Callable[[int], int],
        edge_indices: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Sequential per-edge builder (the seed path), kept as the
        correctness reference for :meth:`build` and for benchmarking."""
        n = self.graph.n
        arr = np.zeros((n, self.dims.units, self.dims.levels, self.dims.words), dtype=np.uint64)
        indices = (
            range(self.graph.m) if edge_indices is None else edge_indices
        )
        for ei in indices:
            e = self.graph.edge(ei)
            mask = self.membership_mask(self._id_of(e.u), self._id_of(e.v))
            ew = eid_to_words(eid_of(ei), self.dims.words)
            contrib = np.where(mask[:, :, None], ew[None, None, :], np.uint64(0))
            arr[e.u] ^= contrib
            arr[e.v] ^= contrib
        return arr

    @staticmethod
    def aggregate_subtrees(tree: RootedTree, vertex_sketches: np.ndarray) -> np.ndarray:
        """Row v of the result is the XOR of vertex sketches over subtree(v).

        Bottom-up per-depth-layer XOR folding (Claim 3.12's Õ(n) subtree
        computation) via :func:`repro.graph.csr.subtree_xor`.
        """
        from repro.graph.csr import subtree_xor

        arr = tree.arrays()
        return subtree_xor(arr.parent, arr.layers, vertex_sketches)

    @staticmethod
    def aggregate_subtrees_reference(
        tree: RootedTree, vertex_sketches: np.ndarray
    ) -> np.ndarray:
        """Sequential post-order aggregation (the seed path)."""
        agg = vertex_sketches.copy()
        for v in tree.post_order():
            p = tree.parent[v]
            if p >= 0:
                agg[p] ^= agg[v]
        return agg

    @staticmethod
    def xor_rows(arr: np.ndarray, vertices: Sequence[int]) -> np.ndarray:
        """Sketch of a vertex set: XOR of the selected rows."""
        if len(vertices) == 0:
            return np.zeros(arr.shape[1:], dtype=np.uint64)
        return np.bitwise_xor.reduce(arr[list(vertices)], axis=0)

    # ------------------------------------------------------------------
    # Cancellation and extraction
    # ------------------------------------------------------------------
    def cancel_edge(self, sketch: np.ndarray, u: int, v: int, eid: int) -> None:
        """Remove edge {u,v} from a set sketch in place (Step 3 of the
        decoder: subtracting faulty-edge information).  ``u``/``v`` are
        identifier-space ids as decoded from the EID."""
        mask = self.membership_mask(u, v)
        ew = eid_to_words(eid, self.dims.words)
        sketch ^= np.where(mask[:, :, None], ew[None, None, :], np.uint64(0))

    @staticmethod
    def extract_outgoing(
        sketch: np.ndarray, unit: int, eids: ExtendedEdgeIds
    ) -> Optional[DecodedEid]:
        """Lemma 3.13: recover one outgoing edge from basic unit ``unit``.

        Scans the unit's levels for a cell whose XOR validates as a
        single-edge EID (Lemma 3.10).  Returns None when no level
        isolates a single edge (constant probability per unit, hence the
        L independent repetitions).
        """
        levels = sketch.shape[1]
        for j in range(levels):
            candidate = words_to_eid(sketch[unit, j])
            if candidate == 0:
                continue
            decoded = eids.try_decode(candidate)
            if decoded is not None:
                return decoded
        return None
