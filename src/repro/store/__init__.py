"""repro.store — mmap-backed persistence for the packed label stores.

The build/serve split (see ``src/repro/store/README.md``): a *build*
process constructs labels once and calls :func:`save_snapshot`; any
number of *serve* processes call :func:`load_snapshot` and answer
``query_many`` / ``route_many`` bit-identically to the builder, with
the big array segments memory-mapped read-only so every process shares
one page-cache copy.

* :mod:`repro.store.format` — the versioned binary container (header +
  JSON manifest + 64-byte-aligned raw segments, BLAKE2b-checksummed);
* :mod:`repro.store.artifacts` — per-artifact state extraction and
  restore (schemes, the fault-tolerant router, the ``core.api``
  facades).
"""

from repro.store.artifacts import (
    load_snapshot,
    save_snapshot,
    snapshot_info,
)
from repro.store.format import (
    FORMAT_VERSION,
    RawSnapshot,
    SnapshotError,
    read_snapshot,
    verify_snapshot,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "RawSnapshot",
    "SnapshotError",
    "load_snapshot",
    "read_snapshot",
    "save_snapshot",
    "snapshot_info",
    "verify_snapshot",
    "write_snapshot",
]
