"""Object-level snapshot save/load for every packed artifact.

The paper's central observation is that *the labels are the data
structure*: once constructed, the packed label stores and routing
tables are immutable arrays plus a handful of scalars (scheme
parameters, RNG seeds).  This module maps each artifact onto the
container format of :mod:`repro.store.format`:

========================  ====================================================
kind                      artifact
========================  ====================================================
``sketch``                :class:`~repro.core.sketch_scheme.SketchConnectivityScheme`
``cycle_space``           :class:`~repro.core.cycle_space_scheme.CycleSpaceConnectivityScheme`
``forest``                :class:`~repro.core.forest_scheme.ForestConnectivityScheme`
``distance``              :class:`~repro.core.distance_labels.DistanceLabelScheme`
``router``                :class:`~repro.routing.fault_tolerant.FaultTolerantRouter`
``connectivity-facade``   :class:`~repro.core.api.FaultTolerantConnectivity`
``distance-facade``       :class:`~repro.core.api.FaultTolerantDistance`
``routing-facade``        :class:`~repro.core.api.FaultTolerantRouting`
========================  ====================================================

What gets persisted is exactly the expensive-to-rebuild state: graph
edge arrays, spanning-forest parent arrays, packed EID word matrices,
the per-copy prefix-XOR sketch tensors, per-instance tree/cover
structure, cycle-space ``phi`` words and the packed tree-routing
arrays.  Cheap derived state (ancestry intervals, hash families —
reconstructed from the persisted seeds — heavy-light decompositions,
the lazy query-side stores) is recomputed at load; every recomputation
is deterministic, so a restored artifact answers ``query_many`` /
``route_many`` **bit-identically** to the instance that was saved
(asserted by ``tests/test_snapshot.py`` across the generator families).

Loads default to ``mmap=True``: the big segments come back as
read-only views into one shared file mapping, so any number of serving
processes opening the same snapshot share a single page-cache copy —
the build-once / serve-many story the serving layer's spawn mode
(:class:`~repro.serving.shards.ShardedQueryService`) builds on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro._util import derive_seed
from repro.store.format import (
    RawSnapshot,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)

# Imports of the scheme modules happen lazily inside the handlers: the
# store must stay importable from the serving layer without dragging
# the whole routing plane in at module import time.


# ----------------------------------------------------------------------
# Shared graph / forest helpers
# ----------------------------------------------------------------------
def _graph_arrays(graph, arrays: dict, prefix: str) -> None:
    if graph.m:
        csr = graph.as_csr()
        arrays[prefix + "edge_u"] = csr.edge_u
        arrays[prefix + "edge_v"] = csr.edge_v
        arrays[prefix + "edge_w"] = csr.edge_weight
    else:
        arrays[prefix + "edge_u"] = np.zeros(0, dtype=np.int64)
        arrays[prefix + "edge_v"] = np.zeros(0, dtype=np.int64)
        arrays[prefix + "edge_w"] = np.zeros(0, dtype=np.float64)


def _restore_graph(n: int, arrays: dict, prefix: str):
    from repro.graph.graph import Graph

    # The arrays may be read-only snapshot mmaps; the array-resident
    # Graph shares them without copying (and without materializing any
    # Python adjacency until a caller actually needs it).
    return Graph.from_edge_arrays(
        n,
        arrays[prefix + "edge_u"],
        arrays[prefix + "edge_v"],
        arrays[prefix + "edge_w"],
    )


def _forest_arrays(trees, comp_of, arrays: dict, prefix: str) -> None:
    """Merge a spanning forest's per-tree parent arrays into one pair.

    Trees are vertex-disjoint, so the element-wise merge is lossless;
    ``comp_of`` splits it back per tree at restore time.
    """
    some = trees[0]
    n = some.graph.n
    forest = getattr(some, "_forest", None)
    if forest is not None and len(trees) == forest.comp_count:
        # Forest trees already share one full-n parent/parent_edge pair:
        # roots hold -1 and every non-root slot is owned by exactly one
        # component, so the shared arrays ARE the merged arrays.
        arrays[prefix + "parent"] = forest.parent
        arrays[prefix + "parent_edge"] = forest.parent_edge
        arrays[prefix + "comp_of"] = np.asarray(comp_of, dtype=np.int64)
        return
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    for tree in trees:
        ta = tree.arrays()
        vs = ta.order[1:]  # non-root vertices of this tree only
        parent[vs] = ta.parent[vs]
        parent_edge[vs] = ta.parent_edge[vs]
    arrays[prefix + "parent"] = parent
    arrays[prefix + "parent_edge"] = parent_edge
    arrays[prefix + "comp_of"] = np.asarray(comp_of, dtype=np.int64)


def _restore_forest(graph, arrays: dict, prefix: str, roots):
    from repro.graph.spanning_tree import Forest

    forest = Forest.from_parent_arrays(
        graph,
        arrays[prefix + "parent"],
        arrays[prefix + "parent_edge"],
        arrays[prefix + "comp_of"],
        [int(r) for r in roots],
    )
    return forest.trees


def _phi_words(phi: list, b: int) -> np.ndarray:
    from repro.sketches.sketch import eids_to_word_matrix

    return eids_to_word_matrix(phi, max(1, (b + 63) // 64))


def _words_phi(words: np.ndarray) -> list:
    from repro.sketches.sketch import word_matrix_to_eids

    return word_matrix_to_eids(np.ascontiguousarray(words))


def _prefix_entries(arrays: dict, prefix: str, copies: int) -> tuple:
    """Per-copy prefix stores as saved: dense tensors persist as one
    ``prefix{c}`` segment, ragged stores as a ``prefix{c}_keys`` /
    ``prefix{c}_vals`` segment pair (format version 2) that the scheme
    rehydrates into a :class:`~repro.sketches.sketch.RaggedPrefix`."""
    entries = []
    for c in range(copies):
        dense = arrays.get(f"{prefix}prefix{c}")
        if dense is not None:
            entries.append(dense)
        else:
            entries.append(
                (arrays[f"{prefix}prefix{c}_keys"], arrays[f"{prefix}prefix{c}_vals"])
            )
    return tuple(entries)


# ----------------------------------------------------------------------
# Sketch scheme (standalone)
# ----------------------------------------------------------------------
def _sketch_state(scheme) -> tuple[dict, dict]:
    if scheme._prefix is None:
        raise SnapshotError(
            "only the vectorized (csr) engine has packed stores to snapshot"
        )
    if scheme._routing is not None or scheme._custom_wiring:
        raise SnapshotError(
            "instance-embedded sketch schemes are persisted through their "
            "distance scheme, not standalone"
        )
    meta = {
        "n": scheme.graph.n,
        "m": scheme.graph.m,
        "seed": scheme.seed,
        "copies": scheme.context.copies,
        "units": scheme.context.dims.units,
        "roots": [tree.root for tree in scheme.trees],
        "id_space": scheme._id_space,
        "hash_family": scheme.hash_family,
        "prefix_layout": scheme.prefix_layout,
    }
    arrays: dict = {}
    _graph_arrays(scheme.graph, arrays, "graph/")
    _forest_arrays(scheme.trees, scheme.comp_of, arrays, "trees/")
    for name, arr in scheme.__arrays__().items():
        arrays["store/" + name] = arr
    return meta, arrays


def _restore_sketch(meta: dict, arrays: dict):
    from repro.core.sketch_scheme import (
        PreloadedSketchArrays,
        SketchConnectivityScheme,
    )

    graph = _restore_graph(meta["n"], arrays, "graph/")
    trees = _restore_forest(graph, arrays, "trees/", meta["roots"])
    preloaded = PreloadedSketchArrays(
        eid_words=arrays["store/eid_words"],
        prefix=_prefix_entries(arrays, "store/", meta["copies"]),
    )
    return SketchConnectivityScheme(
        graph,
        seed=meta["seed"],
        copies=meta["copies"],
        units=meta["units"],
        trees=trees,
        id_space=meta.get("id_space", meta["n"]),
        engine="csr",
        _preloaded=preloaded,
    )


# ----------------------------------------------------------------------
# Forest scheme
# ----------------------------------------------------------------------
def _forest_state(scheme) -> tuple[dict, dict]:
    meta = {"n": scheme.graph.n, "m": scheme.graph.m}
    arrays: dict = {}
    _graph_arrays(scheme.graph, arrays, "graph/")
    return meta, arrays


def _restore_forest_scheme(meta: dict, arrays: dict):
    from repro.core.forest_scheme import ForestConnectivityScheme

    return ForestConnectivityScheme(_restore_graph(meta["n"], arrays, "graph/"))


# ----------------------------------------------------------------------
# Cycle-space scheme
# ----------------------------------------------------------------------
def _cycle_state(scheme) -> tuple[dict, dict]:
    meta = {
        "n": scheme.graph.n,
        "m": scheme.graph.m,
        "f": scheme.f,
        "seed": scheme.seed,
        "b": scheme.b,
        "all_queries": scheme.all_queries,
        "engine": scheme.engine,
        "roots": [tree.root for tree in scheme.trees],
    }
    arrays: dict = {}
    _graph_arrays(scheme.graph, arrays, "graph/")
    _forest_arrays(scheme.trees, scheme.comp_of, arrays, "trees/")
    for ci, labels in enumerate(scheme._labels):
        arrays[f"phi{ci}"] = _phi_words(labels._phi, scheme.b)
    return meta, arrays


def _restore_cycle(meta: dict, arrays: dict):
    graph = _restore_graph(meta["n"], arrays, "graph/")
    trees = _restore_forest(graph, arrays, "trees/", meta["roots"])
    return _rebuild_cycle_scheme(
        graph,
        trees,
        arrays["trees/comp_of"].tolist(),
        f=meta["f"],
        seed=meta["seed"],
        b=meta["b"],
        all_queries=meta["all_queries"],
        engine=meta["engine"],
        phi_words=[arrays[f"phi{ci}"] for ci in range(len(trees))],
    )


def _rebuild_cycle_scheme(
    graph, trees, comp_of, f, seed, b, all_queries, engine, phi_words
):
    """Reassemble a cycle-space scheme around persisted ``phi`` labels.

    Mirrors ``CycleSpaceConnectivityScheme.__init__`` with the random
    circulation sampling replaced by the stored words — the one step
    whose cost (and randomness) the snapshot exists to freeze.
    """
    from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
    from repro.cycle_space.labels import CycleSpaceLabels
    from repro.graph.ancestry import AncestryLabeling

    scheme = CycleSpaceConnectivityScheme.__new__(CycleSpaceConnectivityScheme)
    scheme.engine = engine
    scheme.graph = graph
    scheme.f = f
    scheme.seed = seed
    scheme.all_queries = all_queries
    scheme.b = b
    scheme.trees = list(trees)
    scheme.comp_of = list(comp_of)
    scheme._anc = [AncestryLabeling(tree) for tree in trees]
    scheme._labels = [
        CycleSpaceLabels(graph, tree, b, _words_phi(words))
        for tree, words in zip(trees, phi_words)
    ]
    scheme._qstore = None
    return scheme


# ----------------------------------------------------------------------
# Distance scheme (the whole tree-cover stack)
# ----------------------------------------------------------------------
def _distance_state(scheme) -> tuple[dict, dict]:
    from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme

    if scheme.engine != "csr":
        raise SnapshotError(
            "only the vectorized (csr) engine has packed stores to snapshot"
        )
    gamma_f = None
    instances_meta = []
    arrays: dict = {}
    _graph_arrays(scheme.graph, arrays, "graph/")
    i_star = np.full((scheme.K + 1, scheme.graph.n), -1, dtype=np.int64)
    v_col, i_col, j_col = scheme._i_star.columns()
    i_star[i_col, v_col] = j_col
    arrays["i_star"] = i_star
    for idx, (key, inst) in enumerate(scheme.instances.items()):
        prefix = f"inst{idx}/"
        sub = inst.sub
        arrays[prefix + "vertex_to_parent"] = np.asarray(
            sub.vertex_to_parent, dtype=np.int64
        )
        arrays[prefix + "edge_to_parent"] = np.asarray(
            sub.edge_to_parent, dtype=np.int64
        )
        _graph_arrays(sub.graph, arrays, prefix + "graph/")
        tree_arr = inst.tree.arrays()
        arrays[prefix + "tree_parent"] = np.asarray(
            tree_arr.parent, dtype=np.int64
        )
        arrays[prefix + "tree_parent_edge"] = np.asarray(
            tree_arr.parent_edge, dtype=np.int64
        )
        im = {
            "key": list(key),
            "n_local": sub.graph.n,
            "root": inst.tree.root,
            "center_local": inst.center_local,
            "radius": inst.radius,
        }
        if isinstance(inst.scheme, CycleSpaceConnectivityScheme):
            im["b"] = inst.scheme.b
            arrays[prefix + "phi0"] = _phi_words(
                inst.scheme._labels[0]._phi, inst.scheme.b
            )
        else:
            im["units"] = inst.scheme.context.dims.units
            for name, arr in inst.scheme.__arrays__().items():
                arrays[prefix + "store/" + name] = arr
        if inst.tree_routing is not None:
            gamma_f = inst.tree_routing.gamma_f
            for name, arr in inst.tree_routing.packed().__arrays__().items():
                arrays[prefix + "troute/" + name] = arr
        instances_meta.append(im)
    meta = {
        "n": scheme.graph.n,
        "m": scheme.graph.m,
        "f": scheme.f,
        "k": scheme.k,
        "seed": scheme.seed,
        "base_scheme": scheme.base_scheme,
        "copies": scheme.copies,
        "routing": scheme.routing,
        "gamma_f": gamma_f,
        "K": scheme.K,
        "key_bits": scheme.key_bits,
        "id_space": scheme.id_space,
        "instances": instances_meta,
    }
    return meta, arrays


def _restore_distance(meta: dict, arrays: dict):
    from repro.core.distance_labels import (
        DistanceLabelScheme,
        FlatIStar,
        FlatMembership,
        LabelInstance,
        instance_wiring,
        routing_port_bits,
    )
    from repro.core.sketch_scheme import (
        PreloadedSketchArrays,
        RoutingAugmentation,
        SketchConnectivityScheme,
    )
    from repro.graph.graph import InducedSubgraph
    from repro.graph.spanning_tree import RootedTree
    from repro.trees.tree_routing import PackedTreeRouting, TreeRoutingScheme

    graph = _restore_graph(meta["n"], arrays, "graph/")
    n = meta["n"]
    id_space = meta.get("id_space", n)
    scheme = DistanceLabelScheme.__new__(DistanceLabelScheme)
    scheme.graph = graph
    scheme.id_space = id_space
    scheme.f = meta["f"]
    scheme.k = meta["k"]
    scheme.seed = meta["seed"]
    scheme.base_scheme = meta["base_scheme"]
    scheme.routing = meta["routing"]
    scheme.copies = meta["copies"]
    scheme.engine = "csr"
    scheme.K = meta["K"]
    scheme.key_bits = meta["key_bits"]
    scheme.instances = {}
    scheme._vertex_membership = FlatMembership()
    scheme._edge_membership = FlatMembership()
    scheme._i_star = FlatIStar()
    gamma_f = meta["gamma_f"]
    for idx, im in enumerate(meta["instances"]):
        prefix = f"inst{idx}/"
        key = tuple(im["key"])
        i, j = key
        sub_graph = _restore_graph(im["n_local"], arrays, prefix + "graph/")
        vtp = tuple(arrays[prefix + "vertex_to_parent"].tolist())
        sub = InducedSubgraph(
            graph=sub_graph,
            vertex_to_parent=vtp,
            vertex_from_parent={pv: lv for lv, pv in enumerate(vtp)},
            edge_to_parent=tuple(arrays[prefix + "edge_to_parent"].tolist()),
        )
        tree = RootedTree(
            sub_graph,
            int(im["root"]),
            arrays[prefix + "tree_parent"].tolist(),
            arrays[prefix + "tree_parent_edge"].tolist(),
        )
        # The exact closures _build_scale installs (shared helper, so
        # construction and restore cannot drift apart).
        id_of, port_fn = instance_wiring(graph, sub.vertex_to_parent)
        tree_routing = None
        aug = None
        inst_seed = derive_seed(meta["seed"], "instance", i, j)
        if scheme.routing:
            tree_routing = TreeRoutingScheme(
                tree,
                gamma_f=gamma_f,
                id_of=id_of,
                port_fn=port_fn,
                id_space=id_space,
            )
            tree_routing._packed = PackedTreeRouting.from_arrays(
                {
                    name: arrays[prefix + "troute/" + name]
                    for name in PackedTreeRouting._ARRAY_FIELDS
                }
            )
            tr = tree_routing
            aug = RoutingAugmentation(
                port_bits=routing_port_bits(id_space),
                tlabel_bits=tr.encoded_label_bits(),
                tlabel_of=lambda lv, _tr=tr: _tr.encode_label(_tr.label(lv)),
            )
        if scheme.base_scheme == "cycle_space":
            inst_scheme = _rebuild_cycle_scheme(
                sub_graph,
                [tree],
                _comp_of_from_trees(sub_graph.n, [tree]),
                f=scheme.f,
                seed=inst_seed,
                b=im["b"],
                all_queries=False,
                engine="csr",
                phi_words=[arrays[prefix + "phi0"]],
            )
        else:
            preloaded = PreloadedSketchArrays(
                eid_words=arrays[prefix + "store/eid_words"],
                prefix=_prefix_entries(
                    arrays, prefix + "store/", scheme.copies
                ),
            )
            inst_scheme = SketchConnectivityScheme(
                sub_graph,
                seed=inst_seed,
                copies=scheme.copies,
                units=im["units"],
                routing=aug,
                trees=[tree],
                id_of=id_of,
                id_space=id_space,
                port_fn=port_fn,
                engine="csr",
                _preloaded=preloaded,
            )
        inst = LabelInstance(
            key=key,
            sub=sub,
            tree=tree,
            scheme=inst_scheme,
            tree_routing=tree_routing,
            center_local=int(im["center_local"]),
            radius=float(im["radius"]),
        )
        scheme.instances[key] = inst
        scheme._vertex_membership.add_cluster(vtp, i, j)
        scheme._edge_membership.add_cluster(sub.edge_to_parent, i, j)
    max_clusters = max((key[1] for key in scheme.instances), default=0)
    scheme._vertex_membership.freeze(scheme.K, max_clusters)
    scheme._edge_membership.freeze(scheme.K, max_clusters)
    i_star = arrays["i_star"]
    for i in range(scheme.K + 1):
        row = i_star[i]
        vs = np.flatnonzero(row >= 0)
        scheme._i_star.add_scale(vs, row[vs], i)
    scheme._i_star.freeze(scheme.K)
    return scheme


def _comp_of_from_trees(n: int, trees) -> list[int]:
    comp_of = np.full(n, -1, dtype=np.int64)
    for ci, tree in enumerate(trees):
        comp_of[tree.arrays().order] = ci
    return comp_of.tolist()


# ----------------------------------------------------------------------
# Fault-tolerant router (distance scheme + packed routing plane)
# ----------------------------------------------------------------------
def _router_state(router) -> tuple[dict, dict]:
    dmeta, arrays = _distance_state(router.scheme)
    meta = {
        "f": router.f,
        "k": router.k,
        "table_mode": router.table_mode,
        "reuse_copy": router.reuse_copy,
        "engine": router.engine,
        "partition_cache_capacity": router.partition_cache_capacity,
        "distance": dmeta,
    }
    return meta, arrays


def _restore_router(meta: dict, arrays: dict):
    from repro.routing.fault_tolerant import FaultTolerantRouter

    scheme = _restore_distance(meta["distance"], arrays)
    router = FaultTolerantRouter.__new__(FaultTolerantRouter)
    router.graph = scheme.graph
    router.f = meta["f"]
    router.k = meta["k"]
    router.table_mode = meta["table_mode"]
    router.reuse_copy = meta["reuse_copy"]
    router.engine = meta["engine"]
    router.partition_cache_capacity = meta["partition_cache_capacity"]
    router.scheme = scheme
    router._tables = None  # the seed tables rebuild lazily, as always
    router._packed = None
    return router


# ----------------------------------------------------------------------
# core.api facades
# ----------------------------------------------------------------------
def _connectivity_facade_state(facade) -> tuple[dict, dict]:
    kind, meta, arrays = _state_of(facade.impl)
    return {"f": facade.f, "impl_kind": kind, "impl": meta}, arrays


def _restore_connectivity_facade(meta: dict, arrays: dict):
    from repro.core.api import FaultTolerantConnectivity

    impl = _RESTORERS[meta["impl_kind"]](meta["impl"], arrays)
    facade = FaultTolerantConnectivity.__new__(FaultTolerantConnectivity)
    facade.scheme_name = (
        "sketch" if meta["impl_kind"] == "sketch" else "cycle_space"
    )
    facade.graph = impl.graph
    facade.f = meta["f"]
    facade._impl = impl
    return facade


def _distance_facade_state(facade) -> tuple[dict, dict]:
    meta, arrays = _distance_state(facade.impl)
    return {"f": facade.f, "k": facade.k, "impl": meta}, arrays


def _restore_distance_facade(meta: dict, arrays: dict):
    from repro.core.api import FaultTolerantDistance

    impl = _restore_distance(meta["impl"], arrays)
    facade = FaultTolerantDistance.__new__(FaultTolerantDistance)
    facade.graph = impl.graph
    facade.f = meta["f"]
    facade.k = meta["k"]
    facade._impl = impl
    return facade


def _routing_facade_state(facade) -> tuple[dict, dict]:
    meta, arrays = _router_state(facade.impl)
    return {"f": facade.f, "k": facade.k, "impl": meta}, arrays


def _restore_routing_facade(meta: dict, arrays: dict):
    from repro.core.api import FaultTolerantRouting

    impl = _restore_router(meta["impl"], arrays)
    facade = FaultTolerantRouting.__new__(FaultTolerantRouting)
    facade.graph = impl.graph
    facade.f = meta["f"]
    facade.k = meta["k"]
    facade._impl = impl
    return facade


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
_RESTORERS = {
    "sketch": _restore_sketch,
    "forest": _restore_forest_scheme,
    "cycle_space": _restore_cycle,
    "distance": _restore_distance,
    "router": _restore_router,
    "connectivity-facade": _restore_connectivity_facade,
    "distance-facade": _restore_distance_facade,
    "routing-facade": _restore_routing_facade,
}


def _state_of(obj) -> tuple[str, dict, dict]:
    from repro.core.api import (
        FaultTolerantConnectivity,
        FaultTolerantDistance,
        FaultTolerantRouting,
    )
    from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
    from repro.core.distance_labels import DistanceLabelScheme
    from repro.core.forest_scheme import ForestConnectivityScheme
    from repro.core.sketch_scheme import SketchConnectivityScheme
    from repro.routing.fault_tolerant import FaultTolerantRouter

    handlers = (
        (SketchConnectivityScheme, "sketch", _sketch_state),
        (CycleSpaceConnectivityScheme, "cycle_space", _cycle_state),
        (ForestConnectivityScheme, "forest", _forest_state),
        (DistanceLabelScheme, "distance", _distance_state),
        (FaultTolerantRouter, "router", _router_state),
        (FaultTolerantConnectivity, "connectivity-facade", _connectivity_facade_state),
        (FaultTolerantDistance, "distance-facade", _distance_facade_state),
        (FaultTolerantRouting, "routing-facade", _routing_facade_state),
    )
    for cls, kind, extract in handlers:
        if type(obj) is cls:
            meta, arrays = extract(obj)
            return kind, meta, arrays
    raise SnapshotError(
        f"no snapshot handler for objects of type {type(obj).__name__}"
    )


def save_snapshot(path: Union[str, Path], obj) -> Path:
    """Persist one artifact (scheme / router / facade) to ``path``.

    The snapshot carries everything needed to serve queries again —
    graph arrays, packed stores, scheme parameters and seeds — and a
    restored object answers bit-identically to ``obj``.

    Artifacts exposing ``__digest_hints__()`` (schemes whose build
    workers already fingerprinted their output arrays) hand those
    digests to the writer, which then skips re-hashing the hinted
    segments while streaming them out.
    """
    kind, meta, arrays = _state_of(obj)
    collect = getattr(obj, "__digest_hints__", None)
    hints = collect() if collect is not None else None
    return write_snapshot(path, kind, meta, arrays, digest_hints=hints)


def load_snapshot(
    path: Union[str, Path], mmap: bool = True, verify=None
):
    """Open a snapshot and rebuild the artifact it holds.

    ``mmap=True`` (default) keeps the packed stores as read-only views
    into one shared file mapping — concurrent loaders share pages.
    Header and manifest digests are always checked; per-segment payload
    digests follow :func:`repro.store.format.read_snapshot` semantics
    (eager on non-mmap loads, on demand otherwise — force with
    ``verify=True`` or :func:`repro.store.verify_snapshot`).
    """
    snap = read_snapshot(path, mmap_arrays=mmap, verify=verify)
    restorer = _RESTORERS.get(snap.kind)
    if restorer is None:
        raise SnapshotError(
            f"{snap.path}: unknown artifact kind {snap.kind!r}"
        )
    return restorer(snap.meta, snap.arrays)


def snapshot_info(path: Union[str, Path]) -> dict:
    """Header summary of a snapshot without rebuilding the artifact."""
    snap = read_snapshot(path, mmap_arrays=True, verify=False)
    return {
        "kind": snap.kind,
        "meta": snap.meta,
        "segments": len(snap.arrays),
        "payload_bytes": snap.nbytes(),
        "file_bytes": Path(path).stat().st_size,
    }


__all__ = [
    "RawSnapshot",
    "SnapshotError",
    "load_snapshot",
    "read_snapshot",
    "save_snapshot",
    "snapshot_info",
    "write_snapshot",
]
