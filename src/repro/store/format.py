"""The versioned binary snapshot container (header + manifest + segments).

A snapshot file holds one *artifact* — a labeled scheme, a routing
plane, a facade — as a JSON manifest plus raw, 64-byte-aligned array
segments::

    offset 0   magic   b"FTLSNP01"                      (8 bytes)
               version u32 little-endian                 (4 bytes)
               mlen    u64 little-endian manifest bytes  (8 bytes)
               mdigest BLAKE2b-128 of the manifest      (16 bytes)
               padding to 64 bytes
    offset 64  manifest: UTF-8 JSON
               {"format_version", "kind", "meta", "segments": [
                   {"name", "dtype", "shape", "offset", "nbytes",
                    "blake2b"}, ...]}
               padding to the next 64-byte boundary
    ...        one raw little-endian C-contiguous array per segment,
               each starting on a 64-byte boundary

Design points:

* **zero-copy loads** — :func:`read_snapshot` maps the file once
  (``mmap.ACCESS_READ``) and exposes every segment as a read-only
  ``numpy`` view into that single mapping, so N serving processes
  opening the same snapshot share one page-cache copy of the packed
  stores;
* **integrity** — the header carries a BLAKE2b digest of the manifest
  and the manifest carries a BLAKE2b digest per segment; loads verify
  the manifest digest always and the segment digests unless
  ``verify=False`` (the digests also make version/feature skew an
  explicit :class:`SnapshotError` instead of garbage answers);
* **self-description** — ``kind`` names the artifact type (dispatched
  by :mod:`repro.store.artifacts`) and ``meta`` holds every scalar the
  restore path needs (scheme parameters, RNG seeds, graph sizes), so a
  snapshot is a complete build artifact, not a cache.

The object-level API (``save_snapshot`` / ``load_snapshot``) lives in
:mod:`repro.store.artifacts`; this module only knows bytes and arrays.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

MAGIC = b"FTLSNP01"
# Version 2: sketch stores may carry ragged prefix segments
# (``prefix{c}_keys`` / ``prefix{c}_vals`` instead of one dense
# ``prefix{c}`` tensor) plus the ``hash_family`` / ``prefix_layout`` /
# ``id_space`` meta fields of the m61 wide-id-space schemes.  Version-1
# readers cannot interpret those segments, so the version is bumped
# rather than extended in place.
FORMAT_VERSION = 2
_ALIGN = 64
_HEADER = struct.Struct("<8sIQ16s")  # magic, version, manifest len, digest


class SnapshotError(ValueError):
    """Raised on any malformed, corrupted or incompatible snapshot."""


def _digest(data) -> bytes:
    return hashlib.blake2b(data, digest_size=16).digest()


def _pad(n: int) -> int:
    return (-n) % _ALIGN


@dataclass
class RawSnapshot:
    """One opened snapshot: manifest fields plus the segment arrays.

    ``arrays`` maps segment names to numpy arrays — read-only views
    into one shared ``mmap`` when opened with ``mmap=True``, private
    copies otherwise.  Keep the object alive while the arrays are in
    use (the views hold a reference to the mapping through ``.base``,
    so dropping it early is safe but keeps the file mapped).
    """

    path: Path
    kind: str
    meta: dict
    arrays: dict
    mmapped: bool
    _mm: Optional[mmap.mmap] = field(default=None, repr=False)

    def array(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise SnapshotError(
                f"snapshot {self.path} has no segment {name!r}"
            ) from None

    def nbytes(self) -> int:
        """Total payload bytes across all segments."""
        return sum(a.nbytes for a in self.arrays.values())


#: streaming hash+write chunk; large enough that syscall overhead is
#: negligible, small enough to stay cache-warm between hash and write.
_CHUNK = 1 << 24

#: manifest digest placeholder — same length as a real BLAKE2b-128 hex
#: digest, so patching digests in after the segment pass never changes
#: the manifest's length (and therefore never shifts the offsets the
#: manifest itself records).
_DIGEST_PLACEHOLDER = "0" * 32


def write_snapshot(
    path: Union[str, Path],
    kind: str,
    meta: Mapping,
    arrays: Mapping[str, np.ndarray],
    digest_hints: Optional[Mapping[int, str]] = None,
) -> Path:
    """Write one artifact snapshot; returns the path.

    ``meta`` must be JSON-serializable; ``arrays`` values are converted
    to little-endian C-contiguous layout before writing (the on-disk
    byte order is fixed so snapshots are portable).

    Segment digests stream: each segment is hashed in chunks *while its
    bytes are written*, instead of a separate whole-array read pass
    before the write.  The manifest is first written with fixed-length
    placeholder digests and patched in place afterwards — identical
    final bytes, one pass over the data.  ``digest_hints`` optionally
    maps ``id(array)`` (of the caller's original array objects) to
    digests already computed at build time (e.g. by parallel build
    workers); a hint is trusted only when the array needed no
    contiguity/byte-order conversion, and skips even the streamed hash.

    The write is atomic: bytes go to a temporary sibling file that is
    ``os.replace``d over ``path`` at the end, so a crash mid-write
    never leaves a truncated snapshot at the destination — and saving
    an artifact *onto the very snapshot it was mmap-loaded from* is
    safe (truncating the backing file of live mappings in place would
    SIGBUS the process on the next page fault).
    """
    path = Path(path)
    hints = digest_hints or {}
    prepared: list[tuple[str, np.ndarray, Optional[str]]] = []
    for name, arr in arrays.items():
        orig = arr
        arr = np.ascontiguousarray(arr)
        if arr.dtype.byteorder == ">":  # pragma: no cover - BE hosts only
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        # A hint fingerprints the original object's bytes; it transfers
        # to the written segment only when no conversion copied them.
        hint = hints.get(id(orig)) if arr is orig else None
        prepared.append((name, arr, hint))

    segments = []
    offset = 0  # relative to the start of the segment area; fixed below
    for name, arr, _hint in prepared:
        offset += _pad(offset)
        segments.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": arr.nbytes,
                "blake2b": _DIGEST_PLACEHOLDER,
            }
        )
        offset += arr.nbytes

    # The manifest length shifts the segment base; iterate once more
    # with the real base (the manifest stores absolute file offsets).
    def render(base: int) -> bytes:
        doc = {
            "format_version": FORMAT_VERSION,
            "kind": kind,
            "meta": dict(meta),
            "segments": [
                {**seg, "offset": seg["offset"] + base} for seg in segments
            ],
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    # Writing absolute offsets into the manifest changes its length,
    # which changes the offsets.  Grow the manifest area monotonically
    # until it fits its own render, then pad the manifest (JSON ignores
    # trailing whitespace) to exactly that size.
    base = 0
    while True:
        manifest = render(base)
        need = _ALIGN + len(manifest) + _pad(_ALIGN + len(manifest))
        if need <= base:
            break
        base = need

    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            # Header and manifest go down with placeholder digests to
            # reserve their exact byte ranges; both are patched after
            # the single hash-while-write pass over the segments.
            fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, len(manifest), b"\x00" * 16))
            fh.write(b"\x00" * _pad(_HEADER.size))
            fh.write(manifest)
            fh.write(b"\x00" * _pad(_ALIGN + len(manifest)))
            pos = base
            for seg, (_name, arr, hint) in zip(segments, prepared):
                # seg["offset"] is segment-area-relative; base shifts it
                # to the absolute file offset the manifest recorded.
                abs_off = base + seg["offset"]
                fh.write(b"\x00" * (abs_off - pos))
                if not arr.nbytes:
                    seg["blake2b"] = _digest(b"").hex()
                elif hint is not None:
                    fh.write(arr.data)  # zero-copy: C-contiguous by now
                    seg["blake2b"] = hint
                else:
                    h = hashlib.blake2b(digest_size=16)
                    view = memoryview(arr.data).cast("B")
                    for i in range(0, arr.nbytes, _CHUNK):
                        chunk = view[i : i + _CHUNK]
                        h.update(chunk)
                        fh.write(chunk)
                    seg["blake2b"] = h.hexdigest()
                pos = abs_off + arr.nbytes
            # Patch the real digests in: same digest length, so the
            # re-render is byte-for-byte the placeholder manifest with
            # only the digest fields (and the header digest) changed.
            manifest = render(base)
            manifest += b" " * (base - _ALIGN - len(manifest))
            fh.seek(0)
            fh.write(
                _HEADER.pack(MAGIC, FORMAT_VERSION, len(manifest), _digest(manifest))
            )
            fh.write(b"\x00" * _pad(_HEADER.size))
            fh.write(manifest)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def read_snapshot(
    path: Union[str, Path],
    mmap_arrays: bool = True,
    verify: Optional[bool] = None,
) -> RawSnapshot:
    """Open and validate a snapshot; returns a :class:`RawSnapshot`.

    ``mmap_arrays=True`` (default) returns read-only zero-copy views
    into one shared file mapping; ``False`` reads private copies.

    The header structure and the manifest digest are always checked.
    ``verify`` controls the *per-segment* payload digests: ``None``
    (default) verifies them eagerly only on non-mmap loads — a mapped
    load is lazy by design, and eagerly hashing every segment would
    fault in the whole file a cold serving process was trying not to
    read.  Pass ``verify=True`` to force a full integrity check (or use
    :func:`verify_snapshot`), ``verify=False`` to skip it outright.
    """
    if verify is None:
        verify = not mmap_arrays
    path = Path(path)
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"cannot open snapshot {path}: {exc}") from exc
    with fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SnapshotError(f"{path} is too short to be a snapshot")
        magic, version, mlen, mdigest = _HEADER.unpack(header)
        if magic != MAGIC:
            raise SnapshotError(
                f"{path} is not a snapshot file (bad magic {magic!r})"
            )
        if version != FORMAT_VERSION:
            raise SnapshotError(
                f"{path} uses snapshot format version {version}; this build "
                f"reads version {FORMAT_VERSION}"
            )
        fh.seek(_HEADER.size + _pad(_HEADER.size))
        manifest = fh.read(mlen)
        if len(manifest) != mlen or _digest(manifest) != mdigest:
            raise SnapshotError(f"{path}: manifest checksum mismatch")
        try:
            doc = json.loads(manifest.decode("utf-8"))
        except ValueError as exc:  # pragma: no cover - digest catches this
            raise SnapshotError(f"{path}: manifest is not valid JSON") from exc
        if doc.get("format_version") != FORMAT_VERSION:
            raise SnapshotError(
                f"{path}: manifest format_version "
                f"{doc.get('format_version')} != {FORMAT_VERSION}"
            )
        fh.seek(0, 2)
        fsize = fh.tell()
        mm: Optional[mmap.mmap] = None
        if mmap_arrays and fsize:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        arrays: dict = {}
        for seg in doc.get("segments", []):
            off, nbytes = int(seg["offset"]), int(seg["nbytes"])
            if off + nbytes > fsize:
                raise SnapshotError(
                    f"{path}: segment {seg['name']!r} extends past the file"
                )
            dtype = np.dtype(seg["dtype"])
            shape = tuple(seg["shape"])
            if mm is not None:
                if nbytes:
                    arr = np.frombuffer(
                        mm, dtype=dtype, count=nbytes // dtype.itemsize,
                        offset=off,
                    )
                else:
                    arr = np.zeros(0, dtype=dtype)
                arr = arr.reshape(shape)
                raw = memoryview(mm)[off : off + nbytes]
            else:
                fh.seek(off)
                raw = fh.read(nbytes)
                arr = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
            if verify:
                # Hash the backing bytes directly (zero-copy on the
                # mmap path) — segments are written C-contiguous.
                if _digest(raw if nbytes else b"").hex() != seg["blake2b"]:
                    raise SnapshotError(
                        f"{path}: segment {seg['name']!r} checksum mismatch"
                    )
            arrays[seg["name"]] = arr
    return RawSnapshot(
        path=path,
        kind=doc.get("kind", ""),
        meta=doc.get("meta", {}),
        arrays=arrays,
        mmapped=mm is not None,
        _mm=mm,
    )


def verify_snapshot(path: Union[str, Path]) -> RawSnapshot:
    """Full integrity check: header, manifest and every segment digest.

    Returns the opened :class:`RawSnapshot` on success; raises
    :class:`SnapshotError` on the first mismatch.  ``build`` runs this
    right after writing, and operators can run it any time a file's
    provenance is in doubt — regular loads stay lazy.
    """
    return read_snapshot(path, mmap_arrays=True, verify=True)
