"""repro.traffic — workload generation and traffic simulation.

The routing plane's production shape is *streams*: many concurrent
messages routed under a fault state that churns as links fail and
recover.  This package generates those workloads and drives them
through the batched ``route_many`` engine:

* :mod:`repro.traffic.workloads` — message mixes (uniform pairs,
  hotspot-skewed destinations), fault-set pools, and fail/repair churn
  timelines that respect the labels' fault budget;
* :mod:`repro.traffic.simulator` — :class:`TrafficSimulator` routes
  each epoch's batch under its live fault set, aggregates per-message
  telemetry into flat numpy arrays (:class:`TrafficReport`), and can
  validate every delivered route against the exact connectivity
  oracle;
* :mod:`repro.traffic.loadgen` — closed-loop socket load generator
  for the network serving tier (:func:`run_load` →
  :class:`LoadReport` with p50/p90/p99 latency and achieved qps).

See ``src/repro/traffic/README.md`` for the data flow.
"""

from repro.traffic.loadgen import LoadReport, percentile, run_load
from repro.traffic.simulator import TrafficReport, TrafficSimulator
from repro.traffic.workloads import (
    TrafficEpoch,
    churn_timeline,
    fault_set_pool,
    hotspot_pairs,
    uniform_pairs,
)

__all__ = [
    "LoadReport",
    "TrafficEpoch",
    "TrafficReport",
    "TrafficSimulator",
    "churn_timeline",
    "fault_set_pool",
    "hotspot_pairs",
    "percentile",
    "run_load",
    "uniform_pairs",
]
