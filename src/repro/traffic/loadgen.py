"""Closed-loop load generator for the network serving tier.

Drives a :class:`~repro.server.server.LabelServer` through real
sockets: ``workers`` concurrent :class:`~repro.server.client.
AsyncQueryClient` connections each issue back-to-back requests (a
closed loop — a worker sends its next request the moment the previous
answer lands), for a fixed duration or request count.  Per-request
latencies land in a :mod:`repro.obs` log-bucketed histogram and are
summarized into a :class:`LoadReport` with p50/p90/p99/p99.9 and
achieved qps — the measurement half of ``benchmarks/bench_server.py``
and of the hot-reload blip test.  Because the buckets come from the
registry's fixed bucket family, per-worker reports merge exactly and
memory stays bounded no matter how long the run.

The pair/fault mix comes from :mod:`repro.traffic.workloads`
(:func:`~repro.traffic.workloads.uniform_pairs` by default), so the
load shape matches the rest of the traffic stack.  Requests cycle
through a small pool of fault sets: distinct enough to exercise the
shard fan-out, repetitive enough that the server's coalescer and
partition caches see realistic reuse.

Everything is stdlib + the repo's own client; the generator runs
in-process (``await run_load(...)``) or standalone via
``python -m repro.traffic.loadgen HOST PORT``.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs import Histogram
from repro.server.client import AsyncQueryClient, ServerError
from repro.traffic.workloads import fault_set_pool, uniform_pairs


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


@dataclass
class LoadReport:
    """What a load run measured: counts, errors, and the latency shape.

    Latencies live in a :class:`repro.obs.Histogram` (millisecond
    values) rather than a raw list, so memory is O(buckets) regardless
    of run length and :meth:`merge` is exact: two workers' reports
    merged give the same percentiles as one worker that saw all the
    samples, because every process buckets with the same fixed
    base-2^(1/4) edges.
    """

    requests: int = 0
    errors: int = 0
    error_codes: dict = field(default_factory=dict)
    duration_s: float = 0.0
    workers: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram("loadgen.latency_ms")
    )

    @property
    def qps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def record(self, latency_ms: float) -> None:
        """Record one request's latency (milliseconds)."""
        self.latency.observe(latency_ms)

    def summary(self) -> dict:
        """JSON-ready percentile summary (latencies in milliseconds)."""
        lat = self.latency
        return {
            "requests": self.requests,
            "errors": self.errors,
            "error_codes": dict(self.error_codes),
            "duration_s": round(self.duration_s, 4),
            "workers": self.workers,
            "qps": round(self.qps, 2),
            "p50_ms": round(lat.percentile(50), 4),
            "p90_ms": round(lat.percentile(90), 4),
            "p99_ms": round(lat.percentile(99), 4),
            "p99_9_ms": round(lat.percentile(99.9), 4),
            "max_ms": round(lat.vmax, 4) if lat.count else 0.0,
            "latency_buckets": {
                str(k): v for k, v in sorted(lat.buckets.items())
            },
        }

    def merge(self, other: "LoadReport") -> None:
        self.requests += other.requests
        self.errors += other.errors
        for code, count in other.error_codes.items():
            self.error_codes[code] = self.error_codes.get(code, 0) + count
        self.latency.merge(other.latency)


async def _worker_loop(
    host: str,
    port: int,
    *,
    pairs_pool: Sequence[tuple[int, int]],
    faults_pool: Sequence[list],
    query: str,
    batch: int,
    duration_s: Optional[float],
    max_requests: Optional[int],
    deadline: Optional[float],
    rng: random.Random,
    report: LoadReport,
    stop: asyncio.Event,
) -> None:
    client = await AsyncQueryClient.connect(host, port)
    try:
        sent = 0
        while not stop.is_set():
            if max_requests is not None and sent >= max_requests:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            start = rng.randrange(len(pairs_pool))
            pairs = [
                pairs_pool[(start + i) % len(pairs_pool)] for i in range(batch)
            ]
            faults = faults_pool[rng.randrange(len(faults_pool))]
            t0 = time.perf_counter()
            try:
                if query == "connectivity":
                    await client.connectivity(pairs, faults, want_path=True)
                elif query == "distance":
                    await client.distance(pairs, faults)
                elif query == "route":
                    await client.route(pairs, faults)
                elif query == "ping":
                    await client.ping()
                else:  # pragma: no cover - caller bug
                    raise ValueError(f"unknown query kind {query!r}")
            except ServerError as exc:
                report.errors += 1
                code = exc.code.name if hasattr(exc.code, "name") else str(exc.code)
                report.error_codes[code] = report.error_codes.get(code, 0) + 1
            except ConnectionError:
                report.errors += 1
                report.error_codes["DISCONNECT"] = (
                    report.error_codes.get("DISCONNECT", 0) + 1
                )
                break
            report.record((time.perf_counter() - t0) * 1e3)
            report.requests += 1
            sent += 1
    finally:
        await client.aclose()


async def run_load(
    host: str,
    port: int,
    *,
    n: int,
    m: int,
    query: str = "connectivity",
    workers: int = 4,
    batch: int = 1,
    duration_s: Optional[float] = 2.0,
    max_requests: Optional[int] = None,
    fault_size: int = 2,
    fault_sets: int = 8,
    seed: int = 0,
) -> LoadReport:
    """Drive the server at ``host:port`` and return a :class:`LoadReport`.

    ``workers`` closed-loop connections issue ``query`` requests of
    ``batch`` pairs each, until ``duration_s`` elapses or each worker
    has sent ``max_requests`` (whichever is given; both means either).
    ``n``/``m`` size the pair and fault pools — ask the server's
    :meth:`~repro.server.client.AsyncQueryClient.stats` for them.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    rng = random.Random(seed)
    pairs_pool = uniform_pairs(n, max(64, 4 * batch), rng)
    faults_pool = fault_set_pool(m, fault_sets, fault_size, rng) if m else [[]]
    report = LoadReport(workers=workers)
    stop = asyncio.Event()
    deadline = (
        time.monotonic() + duration_s if duration_s is not None else None
    )
    t0 = time.perf_counter()
    worker_reports = [LoadReport() for _ in range(workers)]
    tasks = [
        asyncio.ensure_future(
            _worker_loop(
                host,
                port,
                pairs_pool=pairs_pool,
                faults_pool=faults_pool,
                query=query,
                batch=batch,
                duration_s=duration_s,
                max_requests=max_requests,
                deadline=deadline,
                rng=random.Random(seed + 1 + i),
                report=worker_reports[i],
                stop=stop,
            )
        )
        for i in range(workers)
    ]
    try:
        await asyncio.gather(*tasks)
    finally:
        stop.set()
        for task in tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    report.duration_s = time.perf_counter() - t0
    for wr in worker_reports:
        report.merge(wr)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.traffic.loadgen HOST PORT`` — ad-hoc load."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("host")
    parser.add_argument("port", type=int)
    parser.add_argument("--query", default="connectivity",
                        choices=["connectivity", "distance", "route", "ping"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--fault-size", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    async def go():
        client = await AsyncQueryClient.connect(args.host, args.port)
        try:
            stats = await client.stats()
        finally:
            await client.aclose()
        n = stats.get("n") or 0
        m = stats.get("m") or 0
        report = await run_load(
            args.host,
            args.port,
            n=n,
            m=m,
            query=args.query,
            workers=args.workers,
            batch=args.batch,
            duration_s=args.duration,
            fault_size=args.fault_size,
            seed=args.seed,
        )
        print(json.dumps(report.summary(), indent=2, sort_keys=True))

    asyncio.run(go())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
