"""Drive workloads through ``route_many`` with array telemetry.

:class:`TrafficSimulator` is the serving loop of the routing plane:
each :class:`~repro.traffic.workloads.TrafficEpoch`'s message batch is
routed under the epoch's live fault set through the router's batched
``route_many`` (packed engine by default — the partition caches stay
warm across epochs, which is exactly the repeated-fault-state shape
churn produces), and every message's cost counters land in flat numpy
arrays (:class:`TrafficReport`) instead of per-object telemetry
spelunking.

``validate=True`` checks every result against ground truth as it
arrives: a delivered message must carry a valid fault-avoiding walk
from s to t and the endpoints must really be connected in ``G \\ F``;
an undelivered one must really be disconnected.  The churn property
tests (``tests/test_traffic.py``) run whole fail/repair timelines
through this — interleaving order must never change delivered-path
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.oracles.connectivity import ConnectivityOracle
from repro.routing.network import RouteResult
from repro.traffic.workloads import TrafficEpoch

#: telemetry counters mirrored into report columns, in column order.
_COUNTERS = (
    "hops",
    "weighted",
    "reversals",
    "reversal_hops",
    "gamma_queries",
    "decode_calls",
    "phases",
    "iterations",
)


@dataclass
class TrafficReport:
    """Flat per-message arrays over one simulation run.

    One row per routed message, in epoch order then batch order:
    ``epoch``/``s``/``t`` identify the message, ``delivered`` its
    outcome, ``length`` the weighted walk, and one column per telemetry
    counter (hops, reversals, reversal hops, Γ queries, decodes, ...).
    """

    epoch: np.ndarray
    s: np.ndarray
    t: np.ndarray
    delivered: np.ndarray
    length: np.ndarray
    hops: np.ndarray
    weighted: np.ndarray
    reversals: np.ndarray
    reversal_hops: np.ndarray
    gamma_queries: np.ndarray
    decode_calls: np.ndarray
    phases: np.ndarray
    iterations: np.ndarray

    @property
    def messages(self) -> int:
        return int(self.epoch.size)

    def summary(self) -> dict:
        """JSON-ready aggregate of the run (what ``cli traffic`` prints).

        Always carries the full key set — an empty run reports zeros,
        not a truncated dict.
        """
        n = self.messages
        if n == 0:
            return {
                "messages": 0,
                "epochs": 0,
                "delivered": 0,
                "delivery_rate": 0.0,
                "total_hops": 0,
                "mean_hops": 0.0,
                "p95_hops": 0,
                "total_weighted": 0.0,
                "reversals": 0,
                "reversal_hops": 0,
                "reversal_hop_share": 0.0,
                "gamma_queries": 0,
                "decode_calls": 0,
            }
        delivered = self.delivered
        dcount = int(delivered.sum())
        hops = self.hops
        total_hops = int(hops.sum())
        return {
            "messages": n,
            "epochs": int(self.epoch.max()) + 1 if n else 0,
            "delivered": dcount,
            "delivery_rate": round(dcount / n, 4),
            "total_hops": total_hops,
            "mean_hops": round(float(hops.mean()), 2),
            "p95_hops": int(np.percentile(hops, 95)) if n else 0,
            "total_weighted": round(float(self.weighted.sum()), 1),
            "reversals": int(self.reversals.sum()),
            "reversal_hops": int(self.reversal_hops.sum()),
            "reversal_hop_share": round(
                int(self.reversal_hops.sum()) / total_hops, 4
            ) if total_hops else 0.0,
            "gamma_queries": int(self.gamma_queries.sum()),
            "decode_calls": int(self.decode_calls.sum()),
        }

    def epoch_slice(self, e: int) -> np.ndarray:
        """Row indices of epoch ``e``."""
        return np.flatnonzero(self.epoch == e)


class RouteValidationError(AssertionError):
    """A routed result contradicts the exact connectivity ground truth."""


def validate_results(
    graph,
    pairs: Sequence[tuple[int, int]],
    faults: Sequence[int],
    results: Sequence[RouteResult],
    oracle: Optional[ConnectivityOracle] = None,
) -> None:
    """Check a batch of route results against ground truth.

    Delivered: the trace must be a real walk s -> t that never crosses
    a faulty edge, and s, t must be connected in ``G \\ F``.
    Undelivered: s, t must really be disconnected in ``G \\ F`` (the
    w.h.p. guarantee — deterministic for a fixed seed).  Raises
    :class:`RouteValidationError` on the first violation.
    """
    oracle = oracle or ConnectivityOracle(graph)
    fset = set(faults)
    truths = oracle.connected_many(list(pairs), list(faults))
    for (s, t), res, truth in zip(pairs, results, truths):
        if res.delivered:
            if not truth:
                raise RouteValidationError(
                    f"delivered {s}->{t} but G\\F disconnects them"
                )
            trace = res.trace
            if not trace or trace[0] != s or trace[-1] != t:
                raise RouteValidationError(
                    f"delivered {s}->{t} with endpoints {trace[:1]}..{trace[-1:]}"
                )
            for a, b in zip(trace, trace[1:]):
                ei = graph.edge_index_between(a, b)
                if ei is None:
                    raise RouteValidationError(
                        f"trace of {s}->{t} uses non-edge ({a}, {b})"
                    )
                if ei in fset:
                    raise RouteValidationError(
                        f"trace of {s}->{t} crosses faulty edge ({a}, {b})"
                    )
        elif truth:
            raise RouteValidationError(
                f"undelivered {s}->{t} although G\\F connects them"
            )


class TrafficSimulator:
    """Route epoch batches through a router; aggregate array telemetry.

    ``router`` is anything exposing ``route_many(pairs, faults)`` —
    the :class:`~repro.routing.fault_tolerant.FaultTolerantRouter`
    (either engine) or a Table-1 baseline.  ``validate=True`` runs
    :func:`validate_results` on every epoch (slow; for tests and
    drills).
    """

    def __init__(self, router, validate: bool = False, engine: Optional[str] = None):
        self.router = router
        self.validate = validate
        self.engine = engine
        self._oracle: Optional[ConnectivityOracle] = None

    def _route(self, pairs, faults) -> list[RouteResult]:
        if self.engine is not None:
            return self.router.route_many(pairs, faults, engine=self.engine)
        return self.router.route_many(pairs, faults)

    def run(self, epochs: Sequence[TrafficEpoch]) -> TrafficReport:
        """Route every epoch's batch under its fault set."""
        rows_epoch: list[int] = []
        rows_s: list[int] = []
        rows_t: list[int] = []
        delivered: list[bool] = []
        length: list[float] = []
        counters: dict[str, list] = {name: [] for name in _COUNTERS}
        graph = self.router.graph
        for epoch in epochs:
            if not epoch.pairs:
                continue
            results = self._route(epoch.pairs, list(epoch.faults))
            if self.validate:
                if self._oracle is None:
                    self._oracle = ConnectivityOracle(graph)
                validate_results(
                    graph, epoch.pairs, epoch.faults, results, self._oracle
                )
            for (s, t), res in zip(epoch.pairs, results):
                rows_epoch.append(epoch.index)
                rows_s.append(s)
                rows_t.append(t)
                delivered.append(res.delivered)
                length.append(res.length)
                tel = res.telemetry
                for name in _COUNTERS:
                    counters[name].append(getattr(tel, name))
        return TrafficReport(
            epoch=np.asarray(rows_epoch, dtype=np.int64),
            s=np.asarray(rows_s, dtype=np.int64),
            t=np.asarray(rows_t, dtype=np.int64),
            delivered=np.asarray(delivered, dtype=bool),
            length=np.asarray(length, dtype=np.float64),
            hops=np.asarray(counters["hops"], dtype=np.int64),
            weighted=np.asarray(counters["weighted"], dtype=np.float64),
            reversals=np.asarray(counters["reversals"], dtype=np.int64),
            reversal_hops=np.asarray(counters["reversal_hops"], dtype=np.int64),
            gamma_queries=np.asarray(counters["gamma_queries"], dtype=np.int64),
            decode_calls=np.asarray(counters["decode_calls"], dtype=np.int64),
            phases=np.asarray(counters["phases"], dtype=np.int64),
            iterations=np.asarray(counters["iterations"], dtype=np.int64),
        )
